#include "parser/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace tempest::parser {
namespace {

/// One node's samples, pre-arranged for the two attribution queries:
/// the time-sorted stream for the interval merge-join, and per-sensor
/// time-sorted streams for the nearest-sample fallback.
struct NodeSamples {
  std::vector<const trace::TempSample*> by_time;
  bool sorted = true;  ///< false only for hand-built unsorted traces
  /// Built lazily: the fallback runs only for insignificant functions.
  std::map<std::uint16_t, std::vector<const trace::TempSample*>> by_sensor;
  bool by_sensor_built = false;

  const std::map<std::uint16_t, std::vector<const trace::TempSample*>>&
  sensor_streams() {
    if (!by_sensor_built) {
      for (const trace::TempSample* s : by_time) {
        by_sensor[s->sensor_id].push_back(s);
      }
      by_sensor_built = true;
    }
    return by_sensor;
  }
};

/// Nearest sample to `at` within one sensor's time-sorted stream,
/// reproducing the legacy linear scan exactly: strictly smaller
/// distance wins, ties keep the earliest sample in trace order (the
/// first of an equal-timestamp run; the predecessor side on an exact
/// predecessor/successor distance tie).
const trace::TempSample* nearest_in_stream(
    const std::vector<const trace::TempSample*>& stream, std::uint64_t at) {
  if (stream.empty()) return nullptr;
  const auto lo = std::lower_bound(
      stream.begin(), stream.end(), at,
      [](const trace::TempSample* s, std::uint64_t t) { return s->tsc < t; });
  const trace::TempSample* succ = lo != stream.end() ? *lo : nullptr;
  const trace::TempSample* pred = nullptr;
  if (lo != stream.begin()) {
    auto p = std::prev(lo);
    // Step back to the first sample of this equal-timestamp run: the
    // legacy scan kept the earliest occurrence on distance ties.
    while (p != stream.begin() && (*std::prev(p))->tsc == (*p)->tsc) --p;
    pred = *p;
  }
  if (pred == nullptr) return succ;
  if (succ == nullptr) return pred;
  const std::uint64_t pred_dist = at - pred->tsc;
  const std::uint64_t succ_dist = succ->tsc - at;
  return pred_dist <= succ_dist ? pred : succ;
}

}  // namespace

const FunctionProfile* RunProfile::find(std::uint16_t node_id,
                                        const std::string& name) const {
  std::size_t total_functions = 0;
  for (const auto& node : nodes) total_functions += node.functions.size();
  if (indexed_nodes_ != nodes.size() || indexed_functions_ != total_functions) {
    find_index_.clear();
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      for (std::size_t fi = 0; fi < nodes[ni].functions.size(); ++fi) {
        // try_emplace keeps the first occurrence, matching the legacy
        // front-to-back scan when duplicates exist.
        find_index_.try_emplace({nodes[ni].node_id, nodes[ni].functions[fi].name},
                                std::make_pair(ni, fi));
      }
    }
    indexed_nodes_ = nodes.size();
    indexed_functions_ = total_functions;
  }
  const auto it = find_index_.find({node_id, name});
  if (it == find_index_.end()) return nullptr;
  const auto [ni, fi] = it->second;
  if (ni >= nodes.size() || fi >= nodes[ni].functions.size()) return nullptr;
  return &nodes[ni].functions[fi];
}

/// Shared assembly core: ProfileBuilder points it at the trace's own
/// vectors (zero-copy batch path), ProfileAssembler at its streamed
/// copies. Output is bit-identical either way.
static RunProfile assemble_profile(
    const std::vector<trace::NodeInfo>& meta_nodes,
    const std::vector<trace::SensorMeta>& meta_sensors, double tsc_rate,
    const std::vector<trace::TempSample>& temp_samples, std::uint64_t run_start,
    std::uint64_t run_end, const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics, const ProfileOptions& options) {
  RunProfile run;
  run.unit = options.unit;
  run.diagnostics = diagnostics;

  std::unordered_map<std::uint64_t, const std::string*> name_map;
  name_map.reserve(names.size());
  for (const auto& [addr, name] : names) name_map.try_emplace(addr, &name);

  // Sensor metadata by (node, sensor).
  std::map<std::pair<std::uint16_t, std::uint16_t>, const trace::SensorMeta*> sensor_meta;
  for (const auto& s : meta_sensors) sensor_meta[{s.node_id, s.sensor_id}] = &s;

  // Samples grouped per node, time-sorted (trace is pre-sorted; a
  // hand-built unsorted trace is detected and handled with the legacy
  // linear attribution so results never depend on sortedness).
  std::map<std::uint16_t, NodeSamples> node_samples;
  for (const auto& s : temp_samples) {
    NodeSamples& ns = node_samples[s.node_id];
    if (!ns.by_time.empty() && s.tsc < ns.by_time.back()->tsc) ns.sorted = false;
    ns.by_time.push_back(&s);
  }

  const double ticks_per_s = tsc_rate > 0.0 ? tsc_rate : 1.0;
  run.duration_s = static_cast<double>(run_end - run_start) / ticks_per_s;

  std::map<std::uint16_t, NodeProfile> nodes;
  for (const auto& n : meta_nodes) {
    nodes[n.node_id].node_id = n.node_id;
    nodes[n.node_id].hostname = n.hostname;
  }

  // Per-node timeline span, gathered once instead of per node below.
  std::map<std::uint16_t, std::pair<std::uint64_t, std::uint64_t>> node_span;
  for (const auto& [key, fi] : timeline) {
    if (fi.merged.empty()) continue;
    auto [it, inserted] = node_span.try_emplace(
        key.first, std::make_pair(fi.merged.front().begin, fi.merged.back().end));
    if (!inserted) {
      it->second.first = std::min(it->second.first, fi.merged.front().begin);
      it->second.second = std::max(it->second.second, fi.merged.back().end);
    }
  }

  for (const auto& [key, fn_intervals] : timeline) {
    const std::uint16_t node_id = key.first;
    NodeProfile& node = nodes[node_id];  // creates on demand for unlisted nodes
    node.node_id = node_id;

    FunctionProfile fn;
    fn.addr = fn_intervals.addr;
    const auto name_it = name_map.find(fn.addr);
    fn.name = name_it != name_map.end() ? *name_it->second : "<unknown>";
    fn.total_time_s = static_cast<double>(fn_intervals.total_ticks) / ticks_per_s;
    fn.calls = fn_intervals.calls;

    // Per-activation duration stats from the exact integer sums. The
    // sums are identical across sharded and serial folds, so these
    // doubles are too — the stream/batch and threads-N byte-identity
    // gates stay intact.
    fn.time.count = fn_intervals.activations;
    if (fn_intervals.activations > 0) {
      const double n_act = static_cast<double>(fn_intervals.activations);
      const double mean_ticks =
          static_cast<double>(fn_intervals.total_ticks) / n_act;
      const double sq_ticks = static_cast<double>(fn_intervals.ticks_sq) / n_act;
      const double var_ticks =
          std::max(0.0, sq_ticks - mean_ticks * mean_ticks);
      fn.time.mean_s = mean_ticks / ticks_per_s;
      fn.time.var_s2 = var_ticks / (ticks_per_s * ticks_per_s);
      fn.time.sdv_s = std::sqrt(fn.time.var_s2);
    }

    // Per-sensor attribution: samples landing inside the intervals.
    // Merge-join over the time-sorted samples and the function's sorted,
    // non-overlapping merged intervals, iterating whichever side is
    // smaller — O(min(I, S) log max(I, S) + matches) per function
    // instead of a scan over every node sample.
    std::map<std::uint16_t, SampleSet> per_sensor;
    const auto samples_it = node_samples.find(node_id);
    NodeSamples* samples = samples_it != node_samples.end() ? &samples_it->second
                                                           : nullptr;
    if (samples != nullptr) {
      if (samples->sorted && fn_intervals.merged.size() <= samples->by_time.size()) {
        // Both streams are time-ordered and the intervals are disjoint,
        // so the cursor only ever moves forward. Galloping (doubling
        // steps, then binary search inside the last window) finds the
        // next interval's first sample in O(1) when consecutive
        // intervals are close — the common case — while staying
        // O(log gap) when they are not.
        const auto& by_time = samples->by_time;
        const auto before = [](const trace::TempSample* s, std::uint64_t t) {
          return s->tsc < t;
        };
        auto it = by_time.begin();
        for (const Interval& iv : fn_intervals.merged) {
          if (it != by_time.end() && (*it)->tsc < iv.begin) {
            std::size_t step = 1;
            auto lo = it;
            auto hi = it;
            while (hi != by_time.end() && (*hi)->tsc < iv.begin) {
              lo = hi;
              const std::size_t left = static_cast<std::size_t>(by_time.end() - hi);
              hi += static_cast<std::ptrdiff_t>(std::min(step, left));
              step *= 2;
            }
            it = std::lower_bound(lo, hi, iv.begin, before);
          }
          for (; it != by_time.end() && (*it)->tsc < iv.end; ++it) {
            per_sensor[(*it)->sensor_id].add(to_unit((*it)->temp_c, options.unit));
          }
        }
      } else if (samples->sorted) {
        // More intervals than samples: walking the samples against the
        // interval list (binary search per sample) is the cheaper join.
        for (const trace::TempSample* s : samples->by_time) {
          if (fn_intervals.contains(s->tsc)) {
            per_sensor[s->sensor_id].add(to_unit(s->temp_c, options.unit));
          }
        }
      } else {
        for (const trace::TempSample* s : samples->by_time) {
          if (fn_intervals.contains(s->tsc)) {
            per_sensor[s->sensor_id].add(to_unit(s->temp_c, options.unit));
          }
        }
      }
    }

    // Significance: the paper flags functions whose execution is short
    // relative to the 4 Hz sampling interval. We require the configured
    // minimum sample count inside the intervals.
    std::size_t max_count = 0;
    for (const auto& [sid, set] : per_sensor) max_count = std::max(max_count, set.count());
    fn.significant = max_count >= options.min_samples_significant;

    if (!fn.significant && samples != nullptr && !samples->by_time.empty() &&
        !fn_intervals.merged.empty()) {
      // Nearest-sample snapshot: closest reading per sensor to the
      // function's first activation, via binary search on the sensor's
      // time-sorted stream (legacy tie-breaking preserved).
      per_sensor.clear();
      const std::uint64_t at = fn_intervals.merged.front().begin;
      if (samples->sorted) {
        for (const auto& [sid, stream] : samples->sensor_streams()) {
          const trace::TempSample* s = nearest_in_stream(stream, at);
          if (s != nullptr) per_sensor[sid].add(to_unit(s->temp_c, options.unit));
        }
      } else {
        std::map<std::uint16_t, std::pair<std::uint64_t, double>> best;
        for (const trace::TempSample* s : samples->by_time) {
          const std::uint64_t dist = s->tsc > at ? s->tsc - at : at - s->tsc;
          const auto it = best.find(s->sensor_id);
          if (it == best.end() || dist < it->second.first) {
            best[s->sensor_id] = {dist, to_unit(s->temp_c, options.unit)};
          }
        }
        for (const auto& [sid, dt] : best) per_sensor[sid].add(dt.second);
      }
    }

    for (const auto& [sid, set] : per_sensor) {
      SensorProfile sp;
      sp.sensor_id = sid;
      const auto meta_it = sensor_meta.find({node_id, sid});
      sp.name = meta_it != sensor_meta.end() ? meta_it->second->name
                                             : "sensor" + std::to_string(sid + 1);
      sp.sample_count = set.count();
      sp.stats = set.summarize();
      fn.sensors.push_back(std::move(sp));
    }
    node.functions.push_back(std::move(fn));
  }

  for (auto& [id, node] : nodes) {
    std::sort(node.functions.begin(), node.functions.end(),
              [](const FunctionProfile& a, const FunctionProfile& b) {
                return a.total_time_s > b.total_time_s;
              });
    // Node duration: span of this node's events and samples.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    const auto samples_it = node_samples.find(id);
    if (samples_it != node_samples.end()) {
      for (const trace::TempSample* s : samples_it->second.by_time) {
        lo = std::min(lo, s->tsc);
        hi = std::max(hi, s->tsc);
      }
    }
    const auto span_it = node_span.find(id);
    if (span_it != node_span.end()) {
      lo = std::min(lo, span_it->second.first);
      hi = std::max(hi, span_it->second.second);
    }
    node.duration_s = (hi > lo && lo != UINT64_MAX)
                          ? static_cast<double>(hi - lo) / ticks_per_s
                          : 0.0;
    run.nodes.push_back(std::move(node));
  }
  return run;
}

void ProfileAssembler::set_metadata(const trace::TraceHeader& header) {
  tsc_ticks_per_second_ = header.tsc_ticks_per_second;
  nodes_ = header.nodes;
  sensors_ = header.sensors;
}

void ProfileAssembler::add_samples(const trace::TempSample* samples, std::size_t n) {
  samples_.insert(samples_.end(), samples, samples + n);
}

RunProfile ProfileAssembler::assemble(
    std::uint64_t run_start, std::uint64_t run_end, const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics) const {
  return assemble_profile(nodes_, sensors_, tsc_ticks_per_second_, samples_,
                          run_start, run_end, timeline, names, diagnostics,
                          options_);
}

RunProfile ProfileBuilder::build(
    const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics) const {
  return assemble_profile(trace_.nodes, trace_.sensors,
                          trace_.tsc_ticks_per_second, trace_.temp_samples,
                          trace_.start_tsc(), trace_.end_tsc(), timeline, names,
                          diagnostics, options_);
}

}  // namespace tempest::parser
