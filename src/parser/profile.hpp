// Profile model: the parser's output.
//
// Mirrors the paper's standard output: per node, functions ordered by
// total inclusive time, each with per-sensor Min/Avg/Max/Sdv/Var/Med/Mod
// over the temperature samples that fell inside the function's
// execution intervals (inclusive attribution: a sample credits every
// function on the stack, which is why `main` summarises the whole run).
// Functions shorter than the sampling interval carry a nearest-sample
// snapshot flagged not significant, as discussed for foo2 in Fig 2a.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "parser/timeline.hpp"
#include "trace/trace.hpp"

namespace tempest::parser {

struct SensorProfile {
  std::uint16_t sensor_id = 0;
  std::string name;
  std::size_t sample_count = 0;
  StatsSummary stats;  ///< in the profile's display unit
};

struct FunctionProfile {
  std::uint64_t addr = 0;
  std::string name;
  double total_time_s = 0.0;  ///< inclusive
  std::uint64_t calls = 0;
  bool significant = true;  ///< enough samples for meaningful thermal stats
  std::vector<SensorProfile> sensors;  ///< ordered by sensor id
};

struct NodeProfile {
  std::uint16_t node_id = 0;
  std::string hostname;
  double duration_s = 0.0;  ///< first to last event/sample on this node
  std::vector<FunctionProfile> functions;  ///< sorted by total time, descending
};

struct RunProfile {
  TempUnit unit = TempUnit::kFahrenheit;
  double duration_s = 0.0;
  std::vector<NodeProfile> nodes;  ///< ordered by node id
  TimelineDiagnostics diagnostics;

  /// Find a function profile by (node, name); nullptr when absent.
  /// Backed by a lazily built index (first call O(F log F), then
  /// O(log F) per lookup instead of the old scan over nodes*functions).
  /// The index rebuilds itself when the profile's shape (node or
  /// function count) changes; renaming functions in place without
  /// changing counts requires going through the builder again. Not safe
  /// for concurrent first calls from multiple threads.
  const FunctionProfile* find(std::uint16_t node_id, const std::string& name) const;

 private:
  /// (node_id, name) -> (node index, function index). Indices, not
  /// pointers, so vector reallocation can never dangle.
  mutable std::map<std::pair<std::uint16_t, std::string>,
                   std::pair<std::size_t, std::size_t>>
      find_index_;
  mutable std::size_t indexed_nodes_ = static_cast<std::size_t>(-1);
  mutable std::size_t indexed_functions_ = static_cast<std::size_t>(-1);
};

struct ProfileOptions {
  TempUnit unit = TempUnit::kFahrenheit;
  std::size_t min_samples_significant = 2;
};

/// Attribute samples to the timeline and assemble the profile.
/// `names` must map every address appearing in the timeline.
class ProfileBuilder {
 public:
  ProfileBuilder(const trace::Trace& trace, ProfileOptions options)
      : trace_(trace), options_(options) {}

  RunProfile build(const TimelineMap& timeline,
                   const std::vector<std::pair<std::uint64_t, std::string>>& names,
                   TimelineDiagnostics diagnostics) const;

 private:
  const trace::Trace& trace_;
  ProfileOptions options_;
};

}  // namespace tempest::parser
