// Profile model: the parser's output.
//
// Mirrors the paper's standard output: per node, functions ordered by
// total inclusive time, each with per-sensor Min/Avg/Max/Sdv/Var/Med/Mod
// over the temperature samples that fell inside the function's
// execution intervals (inclusive attribution: a sample credits every
// function on the stack, which is why `main` summarises the whole run).
// Functions shorter than the sampling interval carry a nearest-sample
// snapshot flagged not significant, as discussed for foo2 in Fig 2a.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "parser/timeline.hpp"
#include "trace/trace.hpp"

namespace tempest::parser {

struct SensorProfile {
  std::uint16_t sensor_id = 0;
  std::string name;
  std::size_t sample_count = 0;
  StatsSummary stats;  ///< in the profile's display unit
};

/// Per-call (outermost-activation) inclusive duration statistics,
/// derived from the timeline's exact integer sums at assembly time.
/// `count` is the number of closed outermost activations — the sample
/// count behind mean/var, smaller than `calls` under recursion.
/// Variance is population variance (matching StatsSummary), so a
/// Welch-style comparison between two runs divides by count, not n-1.
struct TimeStats {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double sdv_s = 0.0;
  double var_s2 = 0.0;  ///< seconds²
};

struct FunctionProfile {
  std::uint64_t addr = 0;
  std::string name;
  double total_time_s = 0.0;  ///< inclusive
  std::uint64_t calls = 0;
  TimeStats time;  ///< per-activation duration stats (diff significance input)
  bool significant = true;  ///< enough samples for meaningful thermal stats
  std::vector<SensorProfile> sensors;  ///< ordered by sensor id
};

struct NodeProfile {
  std::uint16_t node_id = 0;
  std::string hostname;
  double duration_s = 0.0;  ///< first to last event/sample on this node
  std::vector<FunctionProfile> functions;  ///< sorted by total time, descending
};

struct RunProfile {
  TempUnit unit = TempUnit::kFahrenheit;
  double duration_s = 0.0;
  std::vector<NodeProfile> nodes;  ///< ordered by node id
  TimelineDiagnostics diagnostics;

  /// Find a function profile by (node, name); nullptr when absent.
  /// Backed by a lazily built index (first call O(F log F), then
  /// O(log F) per lookup instead of the old scan over nodes*functions).
  /// The index rebuilds itself when the profile's shape (node or
  /// function count) changes; renaming functions in place without
  /// changing counts requires going through the builder again. Not safe
  /// for concurrent first calls from multiple threads.
  const FunctionProfile* find(std::uint16_t node_id, const std::string& name) const;

 private:
  /// (node_id, name) -> (node index, function index). Indices, not
  /// pointers, so vector reallocation can never dangle.
  mutable std::map<std::pair<std::uint16_t, std::string>,
                   std::pair<std::size_t, std::size_t>>
      find_index_;
  mutable std::size_t indexed_nodes_ = static_cast<std::size_t>(-1);
  mutable std::size_t indexed_functions_ = static_cast<std::size_t>(-1);
};

struct ProfileOptions {
  TempUnit unit = TempUnit::kFahrenheit;
  std::size_t min_samples_significant = 2;
};

/// Incremental profile assembly: the streaming core behind
/// ProfileBuilder. Metadata arrives once (set_metadata), temperature
/// samples arrive in time-sorted batches (add_samples — owned copies,
/// batches are transient in the pipeline), and assemble() attributes
/// them to a finished timeline. Sample storage is the only O(samples)
/// state; samples are ~1% of events in practice, so the streaming
/// path's memory stays bounded by them plus the timeline.
class ProfileAssembler {
 public:
  explicit ProfileAssembler(ProfileOptions options) : options_(options) {}

  /// Record node/sensor inventory and the tick rate.
  void set_metadata(const trace::TraceHeader& header);

  /// Append a batch of temperature samples (global time order across
  /// calls, same as the event stream).
  void add_samples(const trace::TempSample* samples, std::size_t n);

  /// Attribute the collected samples to `timeline` and assemble the
  /// profile. `run_start`/`run_end` span every event and sample;
  /// `names` must map every address appearing in the timeline.
  RunProfile assemble(std::uint64_t run_start, std::uint64_t run_end,
                      const TimelineMap& timeline,
                      const std::vector<std::pair<std::uint64_t, std::string>>& names,
                      TimelineDiagnostics diagnostics) const;

  /// The collected samples, in arrival order (time-sorted by contract).
  /// The series extractors reuse them instead of keeping a second copy.
  const std::vector<trace::TempSample>& samples() const { return samples_; }

 private:
  ProfileOptions options_;
  double tsc_ticks_per_second_ = 0.0;
  std::vector<trace::NodeInfo> nodes_;
  std::vector<trace::SensorMeta> sensors_;
  std::vector<trace::TempSample> samples_;
};

/// Attribute samples to the timeline and assemble the profile.
/// `names` must map every address appearing in the timeline.
/// Batch wrapper: same output as ProfileAssembler without copying the
/// trace's sample vector.
class ProfileBuilder {
 public:
  ProfileBuilder(const trace::Trace& trace, ProfileOptions options)
      : trace_(trace), options_(options) {}

  RunProfile build(const TimelineMap& timeline,
                   const std::vector<std::pair<std::uint64_t, std::string>>& names,
                   TimelineDiagnostics diagnostics) const;

 private:
  const trace::Trace& trace_;
  ProfileOptions options_;
};

}  // namespace tempest::parser
