#include "parser/timeline_shard.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <thread>
#include <utility>

#include "common/thread_annotations.hpp"

namespace tempest::parser {
namespace {

/// Queued event buffers a shard may hold before the producer blocks;
/// bounds fold memory at shards * depth * batch regardless of how far
/// the decode side runs ahead.
constexpr std::size_t kMaxQueuedBuffers = 4;

void append_merged(std::vector<Interval>* dst, std::vector<Interval>&& src) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  // Both inputs are sorted non-overlapping unions; their union is the
  // begin-ordered merge followed by the same adjacency-coalescing sweep
  // the serial accumulator runs. Interval union is associative, so
  // pairwise merging shards reproduces the one-pass serial union.
  std::vector<Interval> merged(dst->size() + src.size());
  std::merge(dst->begin(), dst->end(), src.begin(), src.end(), merged.begin(),
             [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> out;
  out.reserve(merged.size());
  out.push_back(merged[0]);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const Interval& iv = merged[i];
    if (iv.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  *dst = std::move(out);
}

}  // namespace

TimelineMap merge_timeline_maps(std::vector<TimelineMap>* parts) {
  TimelineMap out;
  for (TimelineMap& part : *parts) {
    if (out.empty()) {
      out = std::move(part);
      continue;
    }
    for (auto& [key, fi] : part) {
      auto [it, inserted] = out.try_emplace(key, std::move(fi));
      if (inserted) continue;
      FunctionIntervals& dst = it->second;
      dst.total_ticks += fi.total_ticks;
      dst.calls += fi.calls;
      dst.activations += fi.activations;
      dst.ticks_sq += fi.ticks_sq;
      append_merged(&dst.merged, std::move(fi.merged));
    }
  }
  parts->clear();
  // The serial accumulator drops functions with no interval; shards
  // keep them (keep_empty) so sibling shards' intervals can rescue
  // their call counts — apply the drop to the combined map instead.
  for (auto it = out.begin(); it != out.end();) {
    if (it->second.merged.empty()) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

struct ShardedTimelineAccumulator::Impl {
  struct Shard {
    Shard(const std::vector<trace::ThreadInfo>& threads, std::size_t hint)
        : acc(threads, hint) {}

    TimelineAccumulator acc;  ///< touched only by the shard's worker
    TimelineMap result;
    TimelineDiagnostics diag;

    common::Mutex mu;
    std::condition_variable_any cv;
    std::deque<std::vector<trace::FnEvent>> queue GUARDED_BY(mu);
    std::vector<std::vector<trace::FnEvent>> spare GUARDED_BY(mu);
    bool closing GUARDED_BY(mu) = false;
    std::uint64_t end_tsc = 0;  ///< written before closing is published

    std::thread worker;
  };

  Impl(const std::vector<trace::ThreadInfo>& threads, std::size_t hint,
       unsigned n_shards) {
    shards.reserve(n_shards);
    const std::size_t shard_hint = hint / n_shards + 16;
    for (unsigned i = 0; i < n_shards; ++i) {
      shards.push_back(std::make_unique<Shard>(threads, shard_hint));
    }
    for (auto& s : shards) {
      Shard* shard = s.get();
      shard->worker = std::thread([shard] { run(shard); });
    }
    scratch.resize(n_shards);
  }

  static void run(Shard* s) {
    for (;;) {
      std::vector<trace::FnEvent> buf;
      bool close = false;
      {
        common::MutexLock lock(&s->mu);
        while (s->queue.empty() && !s->closing) s->cv.wait(s->mu);
        if (!s->queue.empty()) {
          buf = std::move(s->queue.front());
          s->queue.pop_front();
        } else {
          close = true;
        }
      }
      if (close) break;
      s->acc.add_events(buf.data(), buf.size());
      buf.clear();
      {
        common::MutexLock lock(&s->mu);
        if (s->spare.size() < kMaxQueuedBuffers) {
          s->spare.push_back(std::move(buf));
        }
      }
      s->cv.notify_all();  // producer may be waiting on queue space
    }
    // keep_empty: the combined-map merge owns the drop-empty rule.
    s->result = s->acc.finish(s->end_tsc, &s->diag, /*keep_empty=*/true);
  }

  void close_and_join(std::uint64_t end_tsc) {
    for (auto& s : shards) {
      common::MutexLock lock(&s->mu);
      s->end_tsc = end_tsc;
      s->closing = true;
      s->cv.notify_all();
    }
    for (auto& s : shards) {
      if (s->worker.joinable()) s->worker.join();
    }
  }

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::vector<trace::FnEvent>> scratch;  ///< per-shard split
  bool joined = false;
};

ShardedTimelineAccumulator::ShardedTimelineAccumulator(
    const std::vector<trace::ThreadInfo>& threads, std::size_t hint,
    unsigned shards) {
  if (shards > 1) {
    impl_ = std::make_unique<Impl>(threads, hint, shards);
  } else {
    serial_.emplace(threads, hint);
  }
}

ShardedTimelineAccumulator::~ShardedTimelineAccumulator() {
  if (impl_ && !impl_->joined) impl_->close_and_join(0);
}

unsigned ShardedTimelineAccumulator::shards() const {
  return impl_ ? static_cast<unsigned>(impl_->shards.size()) : 1;
}

void ShardedTimelineAccumulator::add_events(const trace::FnEvent* events,
                                            std::size_t n) {
  if (!impl_) {
    serial_->add_events(events, n);
    return;
  }
  Impl& im = *impl_;
  const std::size_t n_shards = im.shards.size();
  // Stable partition: each thread's events keep their relative order,
  // which is the only order TimelineAccumulator relies on.
  for (std::size_t i = 0; i < n; ++i) {
    im.scratch[events[i].thread_id % n_shards].push_back(events[i]);
  }
  for (std::size_t si = 0; si < n_shards; ++si) {
    std::vector<trace::FnEvent>& part = im.scratch[si];
    if (part.empty()) continue;
    Impl::Shard& s = *im.shards[si];
    std::vector<trace::FnEvent> refill;
    {
      common::MutexLock lock(&s.mu);
      while (s.queue.size() >= kMaxQueuedBuffers) s.cv.wait(s.mu);
      s.queue.push_back(std::move(part));
      if (!s.spare.empty()) {
        refill = std::move(s.spare.back());
        s.spare.pop_back();
      }
    }
    s.cv.notify_all();
    part = std::move(refill);
  }
}

TimelineMap ShardedTimelineAccumulator::finish(std::uint64_t end_tsc,
                                               TimelineDiagnostics* diag) {
  if (!impl_) return serial_->finish(end_tsc, diag);
  Impl& im = *impl_;
  im.close_and_join(end_tsc);
  im.joined = true;

  TimelineDiagnostics total;
  std::vector<TimelineMap> parts;
  parts.reserve(im.shards.size());
  for (auto& s : im.shards) {
    total.unmatched_exits += s->diag.unmatched_exits;
    total.force_closed += s->diag.force_closed;
    parts.push_back(std::move(s->result));
  }
  if (diag != nullptr) *diag = total;
  return merge_timeline_maps(&parts);
}

}  // namespace tempest::parser
