#include "parser/reference.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "trace/writer.hpp"

namespace tempest::parser::reference {
namespace {

constexpr std::uint32_t kSeedTraceVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

class Cursor {
 public:
  explicit Cursor(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    in_.read(reinterpret_cast<char*>(out), sizeof(T));
    return static_cast<bool>(in_);
  }

  bool get_string(std::string* out) {
    std::uint32_t len = 0;
    if (!get(&len)) return false;
    if (len > kMaxString) return false;
    out->resize(len);
    in_.read(out->data(), len);
    return static_cast<bool>(in_);
  }

 private:
  static constexpr std::uint32_t kMaxString = 1 << 20;
  std::istream& in_;
};

constexpr std::uint64_t kMaxRecords = 1ULL << 32;
constexpr std::uint64_t kReserveCap = 1ULL << 16;

}  // namespace

void sort_by_time_seed(trace::Trace* trace) {
  std::stable_sort(
      trace->fn_events.begin(), trace->fn_events.end(),
      [](const trace::FnEvent& a, const trace::FnEvent& b) { return a.tsc < b.tsc; });
  std::stable_sort(trace->temp_samples.begin(), trace->temp_samples.end(),
                   [](const trace::TempSample& a, const trace::TempSample& b) {
                     return a.tsc < b.tsc;
                   });
}

TimelineMap build_timeline_seed(const trace::Trace& trace,
                                TimelineDiagnostics* diag) {
  TimelineDiagnostics local_diag;

  struct OpenState {
    std::uint64_t depth = 0;
    std::uint64_t first_enter = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, OpenState> open;
  std::map<std::uint32_t, std::uint16_t> thread_node;
  for (const auto& t : trace.threads) thread_node[t.thread_id] = t.node_id;

  std::map<std::pair<std::uint16_t, std::uint64_t>, std::vector<Interval>> raw;
  TimelineMap result;

  auto node_of = [&](const trace::FnEvent& e) -> std::uint16_t {
    const auto it = thread_node.find(e.thread_id);
    return it != thread_node.end() ? it->second : e.node_id;
  };

  for (const auto& e : trace.fn_events) {
    const auto key = std::make_pair(e.thread_id, e.addr);
    const std::uint16_t node = node_of(e);
    auto& fn = result[{node, e.addr}];
    fn.addr = e.addr;
    fn.node_id = node;

    if (e.kind == trace::FnEventKind::kEnter) {
      OpenState& st = open[key];
      if (st.depth == 0) st.first_enter = e.tsc;
      ++st.depth;
      ++fn.calls;
    } else {
      const auto it = open.find(key);
      if (it == open.end() || it->second.depth == 0) {
        ++local_diag.unmatched_exits;
        continue;
      }
      --it->second.depth;
      if (it->second.depth == 0) {
        const Interval iv{it->second.first_enter, e.tsc};
        raw[{node, e.addr}].push_back(iv);
        fn.total_ticks += iv.length();
      }
    }
  }

  const std::uint64_t end = trace.end_tsc();
  for (const auto& [key, st] : open) {
    if (st.depth == 0) continue;
    ++local_diag.force_closed;
    const std::uint32_t tid = key.first;
    const std::uint64_t addr = key.second;
    const auto nit = thread_node.find(tid);
    const std::uint16_t node = nit != thread_node.end() ? nit->second : 0;
    const Interval iv{st.first_enter, end};
    raw[{node, addr}].push_back(iv);
    result[{node, addr}].total_ticks += iv.length();
  }

  for (auto& [key, intervals] : raw) {
    merge_intervals(&intervals);
    result[key].merged = std::move(intervals);
  }
  for (auto it = result.begin(); it != result.end();) {
    if (it->second.merged.empty()) {
      it = result.erase(it);
    } else {
      ++it;
    }
  }

  if (diag != nullptr) *diag = local_diag;
  return result;
}

RunProfile build_profile_seed(
    const trace::Trace& trace, const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics, const ProfileOptions& options) {
  RunProfile run;
  run.unit = options.unit;
  run.diagnostics = diagnostics;

  std::map<std::uint64_t, std::string> name_map(names.begin(), names.end());

  std::map<std::pair<std::uint16_t, std::uint16_t>, const trace::SensorMeta*> sensor_meta;
  for (const auto& s : trace.sensors) sensor_meta[{s.node_id, s.sensor_id}] = &s;

  std::map<std::uint16_t, std::vector<const trace::TempSample*>> node_samples;
  for (const auto& s : trace.temp_samples) node_samples[s.node_id].push_back(&s);

  const std::uint64_t run_start = trace.start_tsc();
  const std::uint64_t run_end = trace.end_tsc();
  const double ticks_per_s =
      trace.tsc_ticks_per_second > 0.0 ? trace.tsc_ticks_per_second : 1.0;
  run.duration_s = static_cast<double>(run_end - run_start) / ticks_per_s;

  std::map<std::uint16_t, NodeProfile> nodes;
  for (const auto& n : trace.nodes) {
    nodes[n.node_id].node_id = n.node_id;
    nodes[n.node_id].hostname = n.hostname;
  }

  for (const auto& [key, fn_intervals] : timeline) {
    const std::uint16_t node_id = key.first;
    NodeProfile& node = nodes[node_id];
    node.node_id = node_id;

    FunctionProfile fn;
    fn.addr = fn_intervals.addr;
    const auto name_it = name_map.find(fn.addr);
    fn.name = name_it != name_map.end() ? name_it->second : "<unknown>";
    fn.total_time_s = static_cast<double>(fn_intervals.total_ticks) / ticks_per_s;
    fn.calls = fn_intervals.calls;

    std::map<std::uint16_t, SampleSet> per_sensor;
    const auto samples_it = node_samples.find(node_id);
    if (samples_it != node_samples.end()) {
      for (const trace::TempSample* s : samples_it->second) {
        if (fn_intervals.contains(s->tsc)) {
          per_sensor[s->sensor_id].add(to_unit(s->temp_c, options.unit));
        }
      }
    }

    std::size_t max_count = 0;
    for (const auto& [sid, set] : per_sensor) max_count = std::max(max_count, set.count());
    fn.significant = max_count >= options.min_samples_significant;

    if (!fn.significant && samples_it != node_samples.end() &&
        !samples_it->second.empty() && !fn_intervals.merged.empty()) {
      per_sensor.clear();
      const std::uint64_t at = fn_intervals.merged.front().begin;
      std::map<std::uint16_t, std::pair<std::uint64_t, double>> best;
      for (const trace::TempSample* s : samples_it->second) {
        const std::uint64_t dist = s->tsc > at ? s->tsc - at : at - s->tsc;
        const auto it = best.find(s->sensor_id);
        if (it == best.end() || dist < it->second.first) {
          best[s->sensor_id] = {dist, to_unit(s->temp_c, options.unit)};
        }
      }
      for (const auto& [sid, dt] : best) per_sensor[sid].add(dt.second);
    }

    for (const auto& [sid, set] : per_sensor) {
      SensorProfile sp;
      sp.sensor_id = sid;
      const auto meta_it = sensor_meta.find({node_id, sid});
      sp.name = meta_it != sensor_meta.end() ? meta_it->second->name
                                             : "sensor" + std::to_string(sid + 1);
      sp.sample_count = set.count();
      sp.stats = set.summarize();
      fn.sensors.push_back(std::move(sp));
    }
    node.functions.push_back(std::move(fn));
  }

  for (auto& [id, node] : nodes) {
    std::sort(node.functions.begin(), node.functions.end(),
              [](const FunctionProfile& a, const FunctionProfile& b) {
                return a.total_time_s > b.total_time_s;
              });
    std::uint64_t lo = UINT64_MAX, hi = 0;
    const auto samples_it = node_samples.find(id);
    if (samples_it != node_samples.end()) {
      for (const trace::TempSample* s : samples_it->second) {
        lo = std::min(lo, s->tsc);
        hi = std::max(hi, s->tsc);
      }
    }
    for (const auto& [key, fi] : timeline) {
      if (key.first != id || fi.merged.empty()) continue;
      lo = std::min(lo, fi.merged.front().begin);
      hi = std::max(hi, fi.merged.back().end);
    }
    node.duration_s = (hi > lo && lo != UINT64_MAX)
                          ? static_cast<double>(hi - lo) / ticks_per_s
                          : 0.0;
    run.nodes.push_back(std::move(node));
  }
  return run;
}

Status write_trace_seed(std::ostream& out, const trace::Trace& trace) {
  put(out, trace::kTraceMagic);
  put(out, kSeedTraceVersion);
  put(out, trace.tsc_ticks_per_second);
  put_string(out, trace.executable);
  put(out, trace.load_bias);

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.nodes.size()));
  for (const auto& n : trace.nodes) {
    put(out, n.node_id);
    put_string(out, n.hostname);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.sensors.size()));
  for (const auto& s : trace.sensors) {
    put(out, s.node_id);
    put(out, s.sensor_id);
    put(out, s.quant_step_c);
    put_string(out, s.name);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.threads.size()));
  for (const auto& t : trace.threads) {
    put(out, t.thread_id);
    put(out, t.node_id);
    put(out, t.core);
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.synthetic_symbols.size()));
  for (const auto& s : trace.synthetic_symbols) {
    put(out, s.addr);
    put_string(out, s.name);
  }

  put<std::uint64_t>(out, trace.fn_events.size());
  for (const auto& e : trace.fn_events) {
    put(out, e.tsc);
    put(out, e.addr);
    put(out, e.thread_id);
    put(out, e.node_id);
    put(out, static_cast<std::uint8_t>(e.kind));
  }

  put<std::uint64_t>(out, trace.temp_samples.size());
  for (const auto& s : trace.temp_samples) {
    put(out, s.tsc);
    put(out, s.temp_c);
    put(out, s.node_id);
    put(out, s.sensor_id);
  }

  put<std::uint64_t>(out, trace.clock_syncs.size());
  for (const auto& c : trace.clock_syncs) {
    put(out, c.node_tsc);
    put(out, c.global_tsc);
    put(out, c.node_id);
  }

  if (!out) return Status::error("trace write failed (stream error)");
  return Status::ok();
}

Result<trace::Trace> read_trace_seed(std::istream& in) {
  using trace::Trace;
  Cursor cur(in);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  Trace trace;

  if (!cur.get(&magic) || magic != trace::kTraceMagic) {
    return Result<Trace>::error("not a Tempest trace (bad magic)");
  }
  if (!cur.get(&version) || version != kSeedTraceVersion) {
    return Result<Trace>::error("unsupported trace version");
  }
  if (!cur.get(&trace.tsc_ticks_per_second) || !cur.get_string(&trace.executable) ||
      !cur.get(&trace.load_bias)) {
    return Result<Trace>::error("truncated trace header");
  }

  std::uint32_t n32 = 0;
  if (!cur.get(&n32)) return Result<Trace>::error("truncated node section");
  trace.nodes.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    trace::NodeInfo n;
    if (!cur.get(&n.node_id) || !cur.get_string(&n.hostname)) {
      return Result<Trace>::error("truncated node record");
    }
    trace.nodes.push_back(std::move(n));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated sensor section");
  trace.sensors.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    trace::SensorMeta s;
    if (!cur.get(&s.node_id) || !cur.get(&s.sensor_id) || !cur.get(&s.quant_step_c) ||
        !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated sensor record");
    }
    trace.sensors.push_back(std::move(s));
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated thread section");
  trace.threads.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    trace::ThreadInfo t;
    if (!cur.get(&t.thread_id) || !cur.get(&t.node_id) || !cur.get(&t.core)) {
      return Result<Trace>::error("truncated thread record");
    }
    trace.threads.push_back(t);
  }

  if (!cur.get(&n32)) return Result<Trace>::error("truncated synthetic-symbol section");
  trace.synthetic_symbols.reserve(std::min<std::uint64_t>(n32, kReserveCap));
  for (std::uint32_t i = 0; i < n32; ++i) {
    trace::SyntheticSymbol s;
    if (!cur.get(&s.addr) || !cur.get_string(&s.name)) {
      return Result<Trace>::error("truncated synthetic symbol");
    }
    trace.synthetic_symbols.push_back(std::move(s));
  }

  std::uint64_t n64 = 0;
  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized event section");
  }
  trace.fn_events.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    trace::FnEvent e;
    std::uint8_t kind = 0;
    if (!cur.get(&e.tsc) || !cur.get(&e.addr) || !cur.get(&e.thread_id) ||
        !cur.get(&e.node_id) || !cur.get(&kind)) {
      return Result<Trace>::error("truncated fn event");
    }
    if (kind != 1 && kind != 2) return Result<Trace>::error("corrupt fn event kind");
    e.kind = static_cast<trace::FnEventKind>(kind);
    trace.fn_events.push_back(e);
  }

  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized sample section");
  }
  trace.temp_samples.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    trace::TempSample s;
    if (!cur.get(&s.tsc) || !cur.get(&s.temp_c) || !cur.get(&s.node_id) ||
        !cur.get(&s.sensor_id)) {
      return Result<Trace>::error("truncated temp sample");
    }
    trace.temp_samples.push_back(s);
  }

  if (!cur.get(&n64) || n64 > kMaxRecords) {
    return Result<Trace>::error("truncated or oversized clock-sync section");
  }
  trace.clock_syncs.reserve(std::min(n64, kReserveCap));
  for (std::uint64_t i = 0; i < n64; ++i) {
    trace::ClockSync c;
    if (!cur.get(&c.node_tsc) || !cur.get(&c.global_tsc) || !cur.get(&c.node_id)) {
      return Result<Trace>::error("truncated clock sync");
    }
    trace.clock_syncs.push_back(c);
  }

  return trace;
}

}  // namespace tempest::parser::reference
