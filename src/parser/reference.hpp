// Seed-pipeline reference implementations, kept verbatim from before
// the analysis fast path landed. They are the golden oracle: the
// equivalence tests assert the fast path (bulk trace I/O, k-way merge
// sort, flat-hash timeline build, merge-join attribution) produces
// byte-identical profiles, and bench_parser measures the speedup
// against them. Never "optimise" these — their value is that they stay
// the slow, obviously-correct originals.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "parser/profile.hpp"
#include "parser/timeline.hpp"
#include "trace/trace.hpp"

namespace tempest::parser::reference {

/// Seed Trace::sort_by_time: global stable_sort, ignoring run metadata.
void sort_by_time_seed(trace::Trace* trace);

/// Seed build_timeline: std::map pair-key lookups per event.
TimelineMap build_timeline_seed(const trace::Trace& trace,
                                TimelineDiagnostics* diag = nullptr);

/// Seed ProfileBuilder::build: per-function scan over all node samples.
RunProfile build_profile_seed(
    const trace::Trace& trace, const TimelineMap& timeline,
    const std::vector<std::pair<std::uint64_t, std::string>>& names,
    TimelineDiagnostics diagnostics, const ProfileOptions& options);

/// Seed trace writer/reader: per-field stream calls, format version 1.
/// (The v2 reader rejects these traces; the seed reader exists so the
/// old I/O path can still be measured and regression-tested against.)
Status write_trace_seed(std::ostream& out, const trace::Trace& trace);
Result<trace::Trace> read_trace_seed(std::istream& in);

}  // namespace tempest::parser::reference
