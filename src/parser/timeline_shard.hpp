// Sharded timeline fold: the multi-core core of the analysis fast path.
//
// TimelineAccumulator's state decomposes cleanly by thread: the open
// recursion stack is keyed (addr, thread), so every enter/exit pair of
// one thread resolves inside whichever accumulator sees that thread's
// events — and everything the accumulators produce (tick totals, call
// counts, interval unions, diagnostics) combines associatively. The
// sharded fold routes each trace thread to a fixed shard
// (thread_id % shards), feeds shards from bounded per-shard queues so
// the reader never races ahead of the fold by more than a few batches,
// and merges the per-shard maps deterministically. The result is
// bit-identical to the serial accumulator: same map, same stats, same
// diagnostics — which is what lets `--threads=N` guarantee byte-equal
// output against `--threads=1`.
//
// With `shards <= 1` no threads are spawned and events flow through a
// plain TimelineAccumulator inline — exactly the pre-sharding code
// path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "parser/timeline.hpp"
#include "trace/trace.hpp"

namespace tempest::parser {

/// Deterministically merge per-shard maps produced with
/// `finish(..., keep_empty = true)`: tick totals and call counts sum,
/// interval lists union, and entries whose combined interval set is
/// empty drop — the same rule the serial accumulator applies, now over
/// the union. Consumes the parts.
TimelineMap merge_timeline_maps(std::vector<TimelineMap>* parts);

class ShardedTimelineAccumulator {
 public:
  /// `threads`/`hint` as TimelineAccumulator; `shards` is the worker
  /// count (<= 1 means inline serial).
  ShardedTimelineAccumulator(const std::vector<trace::ThreadInfo>& threads,
                             std::size_t hint, unsigned shards);
  ~ShardedTimelineAccumulator();

  ShardedTimelineAccumulator(const ShardedTimelineAccumulator&) = delete;
  ShardedTimelineAccumulator& operator=(const ShardedTimelineAccumulator&) =
      delete;

  /// Same contract as TimelineAccumulator::add_events (per-thread time
  /// order); events are copied out before the call returns, so the
  /// caller may recycle the batch buffer immediately.
  void add_events(const trace::FnEvent* events, std::size_t n);

  /// Flush the shard queues, close activations at `end_tsc` and merge.
  /// The accumulator is spent afterwards.
  TimelineMap finish(std::uint64_t end_tsc, TimelineDiagnostics* diag = nullptr);

  /// Actual worker count (1 when running inline).
  unsigned shards() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< set when shards > 1
  std::optional<TimelineAccumulator> serial_;  ///< set when shards <= 1
};

}  // namespace tempest::parser
