// Top-level Tempest parser.
//
// "The Tempest parser acquires function timestamps and provides a
// mapping between timestamps and temperature ... then reads the symbol
// table of the executable to map addresses of functions to their
// names." parse_trace performs exactly that pipeline: clock alignment
// -> timeline -> symbolisation (ELF symtab + synthetic names) ->
// sample attribution -> RunProfile.
#pragma once

#include <string>

#include "common/status.hpp"
#include "parser/profile.hpp"
#include "symtab/resolver.hpp"
#include "trace/trace.hpp"

namespace tempest::parser {

struct ParseOptions {
  ProfileOptions profile;
  bool align_clocks = true;
};

/// Parse an in-memory trace. When `resolver` is null one is built from
/// the trace's recorded executable path and load bias (and symbolisation
/// degrades to hex addresses if that fails — the profile stays usable).
Result<RunProfile> parse_trace(trace::Trace trace, const ParseOptions& options = {},
                               const symtab::Resolver* resolver = nullptr);

/// Read a trace file and parse it.
Result<RunProfile> parse_trace_file(const std::string& path,
                                    const ParseOptions& options = {});

}  // namespace tempest::parser
