#include "parser/parse.hpp"

#include <optional>

#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::parser {

Result<RunProfile> parse_trace(trace::Trace trace, const ParseOptions& options,
                               const symtab::Resolver* resolver) {
  if (options.align_clocks) {
    const Status aligned = trace::align_clocks(&trace);
    if (!aligned) return Result<RunProfile>::error(aligned.message());
  } else {
    trace.sort_by_time();
  }

  TimelineDiagnostics diag;
  const TimelineMap timeline = build_timeline(trace, &diag);

  // Symbolise every distinct address: synthetic names win (they were
  // minted by the explicit API), then the ELF resolver.
  std::optional<symtab::Resolver> own_resolver;
  if (resolver == nullptr && !trace.executable.empty()) {
    auto built = symtab::Resolver::for_executable(trace.executable, trace.load_bias);
    if (built.is_ok()) {
      own_resolver.emplace(std::move(built).value());
      resolver = &*own_resolver;
    }
  }

  std::vector<std::pair<std::uint64_t, std::string>> names;
  names.reserve(timeline.size() + trace.synthetic_symbols.size());
  for (const auto& s : trace.synthetic_symbols) names.emplace_back(s.addr, s.name);
  for (const auto& [key, fi] : timeline) {
    if (fi.addr >= trace::kSyntheticAddrBase) continue;
    if (resolver != nullptr) {
      names.emplace_back(fi.addr, resolver->resolve(fi.addr));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(fi.addr));
      names.emplace_back(fi.addr, buf);
    }
  }

  ProfileBuilder builder(trace, options.profile);
  return builder.build(timeline, names, diag);
}

Result<RunProfile> parse_trace_file(const std::string& path,
                                    const ParseOptions& options) {
  auto loaded = trace::read_trace_file(path);
  if (!loaded.is_ok()) return Result<RunProfile>::error(loaded.message());
  return parse_trace(std::move(loaded).value(), options);
}

}  // namespace tempest::parser
