// Shared NPB support: problem classes, verification, DVFS stretching.
#pragma once

#include <string>

#include "minimpi/comm.hpp"

namespace npb {

/// Scaled-down analogues of the NAS classes. Sizes are chosen so a
/// full run takes on the order of seconds in this environment while
/// preserving each benchmark's compute/communication ratio.
enum class ProblemClass { S, W, A };

const char* class_name(ProblemClass c);

struct VerifyResult {
  bool passed = false;
  std::string detail;
};

/// Relative-error check used by the benchmark verifiers.
bool close_rel(double got, double want, double epsilon);

/// Honour DVFS throttling for real compute: when the rank's node is
/// throttled to speed factor s < 1, a phase that did `elapsed_s` of
/// work busy-spins an extra elapsed_s * (1/s - 1), exactly as the same
/// instructions would take longer at a lower clock. No-op unplaced or
/// at full speed.
void stretch_compute(minimpi::Comm& comm, double elapsed_s);

/// RAII phase stretcher: measures a scope and applies stretch_compute.
class StretchScope {
 public:
  explicit StretchScope(minimpi::Comm& comm);
  ~StretchScope();
  StretchScope(const StretchScope&) = delete;
  StretchScope& operator=(const StretchScope&) = delete;

 private:
  minimpi::Comm& comm_;
  double start_s_;
};

}  // namespace npb
