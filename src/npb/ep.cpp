#include "npb/ep.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "core/api.hpp"
#include "npb/nas_rng.hpp"

namespace npb {
namespace {

constexpr int kBatch = 1024;  ///< pairs generated per vranlc call

/// Process pairs [first, first+count) of the global stream.
void ep_segment(std::int64_t first, std::int64_t count, EpResult* out) {
  TEMPEST_FUNCTION();
  std::vector<double> uniforms(2 * kBatch);
  std::int64_t done = 0;
  while (done < count) {
    const int n = static_cast<int>(std::min<std::int64_t>(kBatch, count - done));
    // Jump the stream to pair index (first + done): 2 draws per pair.
    double seed = seed_after(kNasSeed, kNasMult,
                             static_cast<std::uint64_t>(2 * (first + done)));
    vranlc(2 * n, &seed, kNasMult, uniforms.data());
    for (int i = 0; i < n; ++i) {
      const double x = 2.0 * uniforms[static_cast<std::size_t>(2 * i)] - 1.0;
      const double y = 2.0 * uniforms[static_cast<std::size_t>(2 * i + 1)] - 1.0;
      const double t = x * x + y * y;
      if (t > 1.0) continue;
      const double f = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * f;
      const double gy = y * f;
      out->sx += gx;
      out->sy += gy;
      const int bin = static_cast<int>(std::max(std::fabs(gx), std::fabs(gy)));
      if (bin < 10) ++out->counts[static_cast<std::size_t>(bin)];
      ++out->accepted;
    }
    done += n;
  }
}

}  // namespace

EpConfig EpConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {16};
    case ProblemClass::W: return {18};
    case ProblemClass::A: return {20};
  }
  return {};
}

EpResult ep_run(minimpi::Comm& comm, const EpConfig& config) {
  TEMPEST_FUNCTION();
  const double t0 = comm.wtime();
  const std::int64_t total = 1LL << config.log2_pairs;
  const std::int64_t per_rank = (total + comm.size() - 1) / comm.size();
  const std::int64_t first = per_rank * comm.rank();
  const std::int64_t count = std::max<std::int64_t>(
      0, std::min<std::int64_t>(per_rank, total - first));

  EpResult local;
  {
    StretchScope stretch(comm);
    ep_segment(first, count, &local);
  }

  // Combine: sums + counts + acceptance in one reduction vector.
  std::vector<double> acc{local.sx, local.sy, static_cast<double>(local.accepted)};
  for (std::int64_t c : local.counts) acc.push_back(static_cast<double>(c));
  comm.allreduce_sum_inplace(acc.data(), acc.size());

  EpResult global;
  global.sx = acc[0];
  global.sy = acc[1];
  global.accepted = static_cast<std::int64_t>(acc[2]);
  for (std::size_t i = 0; i < global.counts.size(); ++i) {
    global.counts[i] = static_cast<std::int64_t>(acc[3 + i]);
  }
  global.elapsed_s = comm.wtime() - t0;
  return global;
}

EpResult ep_serial(const EpConfig& config) {
  EpResult out;
  ep_segment(0, 1LL << config.log2_pairs, &out);
  return out;
}

VerifyResult ep_verify(const EpResult& got, const EpConfig& config) {
  const EpResult want = ep_serial(config);
  VerifyResult v;
  std::ostringstream detail;
  v.passed = close_rel(got.sx, want.sx, 1e-10) && close_rel(got.sy, want.sy, 1e-10) &&
             got.accepted == want.accepted && got.counts == want.counts;
  detail << "sx " << got.sx << " vs " << want.sx << ", sy " << got.sy << " vs "
         << want.sy << ", accepted " << got.accepted << " vs " << want.accepted;
  v.detail = detail.str();
  return v;
}

}  // namespace npb
