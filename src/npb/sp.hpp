// SP: the NAS scalar-pentadiagonal ADI benchmark (scaled, faithful in
// structure).
//
// Like BT, SP advances an implicit ADI scheme over a 3-D 5-component
// grid — but its factored operators are *scalar* pentadiagonal systems
// (second-difference diffusion plus fourth-difference artificial
// dissipation) solved independently per component, not 5x5 block
// systems. x/y sweeps are rank-local; the z sweep redistributes lines
// with an all-to-all transpose (a documented simplification of the
// reference's multi-partition scheme: same work, alltoall in place of
// the skew-cyclic exchange). Verification: the solution converges to a
// manufactured exact solution and matches the serial reference.
#pragma once

#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct SpConfig {
  int nx = 16, ny = 16, nz = 16;  ///< np must divide nz and ny
  int niter = 8;
  double dt = 0.01;
  double dissipation = 0.05;  ///< 4th-difference implicit dissipation weight
  static SpConfig for_class(ProblemClass c);
};

struct SpResult {
  std::vector<double> rhs_norms;
  double final_error = 0.0;
  double elapsed_s = 0.0;
};

SpResult sp_run(minimpi::Comm& comm, const SpConfig& config);
SpResult sp_serial(const SpConfig& config);
VerifyResult sp_verify(const SpResult& got, const SpConfig& config);

/// Constant-coefficient pentadiagonal factorisation/solver used by the
/// sweeps (exposed for unit tests): solves (a2,a1,a0,a1,a2) banded
/// symmetric systems of size n.
class PentaSolver {
 public:
  PentaSolver(int n, double a0, double a1, double a2);
  /// Solve in place; x has n entries with stride `stride`.
  void solve(double* x, int stride) const;
  int size() const { return n_; }

 private:
  int n_;
  double a1_, a2_;
  // LU factors of the banded matrix (Crout, no pivoting — the systems
  // are strictly diagonally dominant by construction).
  std::vector<double> d_;   ///< pivots
  std::vector<double> l1_;  ///< first subdiagonal multipliers
  std::vector<double> l2_;  ///< second subdiagonal multipliers
  std::vector<double> u1_;  ///< first superdiagonal of U
  std::vector<double> u2_;  ///< second superdiagonal of U
};

}  // namespace npb
