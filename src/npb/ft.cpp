#include "npb/ft.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/nas_rng.hpp"

namespace npb {
namespace {

using Complex = std::complex<double>;

constexpr double kAlpha = 1e-6;

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

/// Frequency index shifted into [-n/2, n/2).
int shifted(int i, int n) { return i >= n / 2 ? i - n : i; }

struct Slabs {
  // z-slab: (k_local * ny + j) * nx + i
  std::vector<Complex> zs;
  // x-slab: (i_local * ny + j) * nz + k
  std::vector<Complex> xs;
  int nzl = 0, nxl = 0;
};

void compute_initial_conditions(minimpi::Comm& comm, const FtConfig& c, Slabs* s) {
  TEMPEST_FUNCTION();
  const int plane = c.nx * c.ny;
  const int z0 = comm.rank() * s->nzl;
  std::vector<double> line(static_cast<std::size_t>(2 * plane));
  for (int k = 0; k < s->nzl; ++k) {
    // Jump the global stream to this plane so the field is identical
    // for any rank count (NAS's per-plane seed computation).
    double seed = seed_after(kNasSeed, kNasMult,
                             static_cast<std::uint64_t>(2 * (z0 + k)) *
                                 static_cast<std::uint64_t>(plane));
    vranlc(2 * plane, &seed, kNasMult, line.data());
    for (int p = 0; p < plane; ++p) {
      s->zs[static_cast<std::size_t>(k * plane + p)] =
          Complex(line[static_cast<std::size_t>(2 * p)],
                  line[static_cast<std::size_t>(2 * p + 1)]);
    }
  }
}

/// FFT along x for every (k_local, j) row of the z-slab.
void cffts1(const FtConfig& c, Slabs* s, int sign) {
  TEMPEST_FUNCTION();
  for (int k = 0; k < s->nzl; ++k) {
    for (int j = 0; j < c.ny; ++j) {
      fft1d(&s->zs[static_cast<std::size_t>((k * c.ny + j) * c.nx)], c.nx, sign);
    }
  }
}

/// FFT along y for every (k_local, i) column of the z-slab.
void cffts2(const FtConfig& c, Slabs* s, int sign) {
  TEMPEST_FUNCTION();
  std::vector<Complex> line(static_cast<std::size_t>(c.ny));
  for (int k = 0; k < s->nzl; ++k) {
    for (int i = 0; i < c.nx; ++i) {
      for (int j = 0; j < c.ny; ++j) {
        line[static_cast<std::size_t>(j)] =
            s->zs[static_cast<std::size_t>((k * c.ny + j) * c.nx + i)];
      }
      fft1d(line.data(), c.ny, sign);
      for (int j = 0; j < c.ny; ++j) {
        s->zs[static_cast<std::size_t>((k * c.ny + j) * c.nx + i)] =
            line[static_cast<std::size_t>(j)];
      }
    }
  }
}

/// FFT along z for every (i_local, j) pencil of the x-slab.
void cffts3(const FtConfig& c, Slabs* s, int sign) {
  TEMPEST_FUNCTION();
  for (int i = 0; i < s->nxl; ++i) {
    for (int j = 0; j < c.ny; ++j) {
      fft1d(&s->xs[static_cast<std::size_t>((i * c.ny + j) * c.nz)], c.nz, sign);
    }
  }
}

/// Global transpose between slab orientations. Forward moves z-slab
/// data into the x-slab (each rank keeps its x-range of every plane);
/// reverse inverts it. This is FT's all-to-all.
void transpose(minimpi::Comm& comm, const FtConfig& c, Slabs* s, bool forward) {
  TEMPEST_FUNCTION();
  const int np = comm.size();
  const std::size_t block =
      static_cast<std::size_t>(s->nzl) * static_cast<std::size_t>(c.ny) *
      static_cast<std::size_t>(s->nxl);
  std::vector<Complex> sendbuf(block * static_cast<std::size_t>(np));
  std::vector<Complex> recvbuf(block * static_cast<std::size_t>(np));

  if (forward) {
    for (int r = 0; r < np; ++r) {
      Complex* dst = &sendbuf[block * static_cast<std::size_t>(r)];
      const int i0 = r * s->nxl;
      std::size_t p = 0;
      for (int k = 0; k < s->nzl; ++k) {
        for (int j = 0; j < c.ny; ++j) {
          for (int i = 0; i < s->nxl; ++i) {
            dst[p++] = s->zs[static_cast<std::size_t>((k * c.ny + j) * c.nx + i0 + i)];
          }
        }
      }
    }
    comm.alltoall(sendbuf.data(), recvbuf.data(), block);
    for (int r = 0; r < np; ++r) {
      const Complex* src = &recvbuf[block * static_cast<std::size_t>(r)];
      const int k0 = r * s->nzl;
      std::size_t p = 0;
      for (int k = 0; k < s->nzl; ++k) {
        for (int j = 0; j < c.ny; ++j) {
          for (int i = 0; i < s->nxl; ++i) {
            s->xs[static_cast<std::size_t>((i * c.ny + j) * c.nz + k0 + k)] = src[p++];
          }
        }
      }
    }
  } else {
    for (int r = 0; r < np; ++r) {
      Complex* dst = &sendbuf[block * static_cast<std::size_t>(r)];
      const int k0 = r * s->nzl;
      std::size_t p = 0;
      for (int k = 0; k < s->nzl; ++k) {
        for (int j = 0; j < c.ny; ++j) {
          for (int i = 0; i < s->nxl; ++i) {
            dst[p++] = s->xs[static_cast<std::size_t>((i * c.ny + j) * c.nz + k0 + k)];
          }
        }
      }
    }
    comm.alltoall(sendbuf.data(), recvbuf.data(), block);
    for (int r = 0; r < np; ++r) {
      const Complex* src = &recvbuf[block * static_cast<std::size_t>(r)];
      const int i0 = r * s->nxl;
      std::size_t p = 0;
      for (int k = 0; k < s->nzl; ++k) {
        for (int j = 0; j < c.ny; ++j) {
          for (int i = 0; i < s->nxl; ++i) {
            s->zs[static_cast<std::size_t>((k * c.ny + j) * c.nx + i0 + i)] = src[p++];
          }
        }
      }
    }
  }
}

/// One step of spectral decay: u *= exp(-4 a pi^2 |kbar|^2).
void evolve(minimpi::Comm& comm, const FtConfig& c, Slabs* s) {
  TEMPEST_FUNCTION();
  const int i0 = comm.rank() * s->nxl;
  const double coeff = -4.0 * kAlpha * std::numbers::pi * std::numbers::pi;
  for (int i = 0; i < s->nxl; ++i) {
    const double ii = shifted(i0 + i, c.nx);
    for (int j = 0; j < c.ny; ++j) {
      const double jj = shifted(j, c.ny);
      for (int k = 0; k < c.nz; ++k) {
        const double kk = shifted(k, c.nz);
        const double decay = std::exp(coeff * (ii * ii + jj * jj + kk * kk));
        s->xs[static_cast<std::size_t>((i * c.ny + j) * c.nz + k)] *= decay;
      }
    }
  }
}

Complex checksum(minimpi::Comm& comm, const FtConfig& c, const Slabs& s) {
  TEMPEST_FUNCTION();
  const int z0 = comm.rank() * s.nzl;
  Complex local(0.0, 0.0);
  for (int j = 1; j <= 1024; ++j) {
    const int q = (5 * j) % c.nx;
    const int r = (3 * j) % c.ny;
    const int sidx = j % c.nz;
    if (sidx < z0 || sidx >= z0 + s.nzl) continue;
    local += s.zs[static_cast<std::size_t>(((sidx - z0) * c.ny + r) * c.nx + q)];
  }
  double parts[2] = {local.real(), local.imag()};
  comm.allreduce_sum_inplace(parts, 2);
  return Complex(parts[0], parts[1]);
}

}  // namespace

void fft1d(Complex* data, int n, int sign) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / len;
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (int i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (int j = 0; j < len / 2; ++j) {
        const Complex u = data[i + j];
        const Complex v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

FtConfig FtConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {32, 32, 32, 6};
    case ProblemClass::W: return {64, 64, 32, 6};
    case ProblemClass::A: return {64, 64, 64, 8};
  }
  return {};
}

FtResult ft_run(minimpi::Comm& comm, const FtConfig& config) {
  TEMPEST_FUNCTION();
  if (!is_pow2(config.nx) || !is_pow2(config.ny) || !is_pow2(config.nz)) {
    throw std::invalid_argument("FT: grid dimensions must be powers of two");
  }
  if (config.nx % comm.size() != 0 || config.nz % comm.size() != 0) {
    throw std::invalid_argument("FT: rank count must divide nx and nz");
  }
  const double t0 = comm.wtime();
  Slabs s;
  s.nzl = config.nz / comm.size();
  s.nxl = config.nx / comm.size();
  s.zs.resize(static_cast<std::size_t>(s.nzl) * config.ny * config.nx);
  s.xs.resize(static_cast<std::size_t>(s.nxl) * config.ny * config.nz);

  compute_initial_conditions(comm, config, &s);

  // Forward 3-D FFT into the frequency domain (x-slab layout).
  {
    StretchScope stretch(comm);
    cffts1(config, &s, -1);
    cffts2(config, &s, -1);
  }
  transpose(comm, config, &s, true);
  {
    StretchScope stretch(comm);
    cffts3(config, &s, -1);
  }

  FtResult result;
  const double norm = 1.0 / (static_cast<double>(config.nx) * config.ny * config.nz);
  for (int iter = 0; iter < config.niter; ++iter) {
    {
      StretchScope stretch(comm);
      evolve(comm, config, &s);
    }
    // Inverse FFT into physical space on a working copy of the slabs.
    Slabs w = s;
    {
      StretchScope stretch(comm);
      cffts3(config, &w, +1);
    }
    transpose(comm, config, &w, false);
    {
      StretchScope stretch(comm);
      cffts2(config, &w, +1);
      cffts1(config, &w, +1);
      for (auto& v : w.zs) v *= norm;
    }
    result.checksums.push_back(checksum(comm, config, w));
  }
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

FtResult ft_serial(const FtConfig& config) {
  FtResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = ft_run(comm, config); });
  return result;
}

VerifyResult ft_verify(const FtResult& got, const FtConfig& config) {
  const FtResult want = ft_serial(config);
  VerifyResult v;
  v.passed = got.checksums.size() == want.checksums.size();
  std::ostringstream detail;
  for (std::size_t i = 0; v.passed && i < got.checksums.size(); ++i) {
    v.passed = close_rel(got.checksums[i].real(), want.checksums[i].real(), 1e-9) &&
               close_rel(got.checksums[i].imag(), want.checksums[i].imag(), 1e-9);
  }
  if (!got.checksums.empty()) {
    detail << "final checksum " << got.checksums.back().real() << "+"
           << got.checksums.back().imag() << "i";
    if (!v.passed && !want.checksums.empty()) {
      detail << " (serial " << want.checksums.back().real() << "+"
             << want.checksums.back().imag() << "i)";
    }
  }
  v.detail = detail.str();
  return v;
}

}  // namespace npb
