#include "npb/sp.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"

namespace npb {

PentaSolver::PentaSolver(int n, double a0, double a1, double a2)
    : n_(n), a1_(a1), a2_(a2) {
  if (n < 3) throw std::invalid_argument("pentadiagonal system needs n >= 3");
  std::vector<double> sub2(static_cast<std::size_t>(n), a2);
  std::vector<double> sub1(static_cast<std::size_t>(n), a1);
  d_.assign(static_cast<std::size_t>(n), a0);
  u1_.assign(static_cast<std::size_t>(n), a1);
  u2_.assign(static_cast<std::size_t>(n), a2);
  l1_.assign(static_cast<std::size_t>(n), 0.0);
  l2_.assign(static_cast<std::size_t>(n), 0.0);
  sub2[0] = sub2[1] = sub1[0] = 0.0;
  u1_[static_cast<std::size_t>(n - 1)] = 0.0;
  u2_[static_cast<std::size_t>(n - 1)] = 0.0;
  if (n >= 2) u2_[static_cast<std::size_t>(n - 2)] = 0.0;

  // Banded Doolittle elimination, bandwidth 2, no pivoting (the ADI
  // factors are strictly diagonally dominant).
  for (int i = 0; i < n; ++i) {
    const double piv = d_[static_cast<std::size_t>(i)];
    if (i + 1 < n) {
      const double f = sub1[static_cast<std::size_t>(i + 1)] / piv;
      l1_[static_cast<std::size_t>(i + 1)] = f;
      d_[static_cast<std::size_t>(i + 1)] -= f * u1_[static_cast<std::size_t>(i)];
      u1_[static_cast<std::size_t>(i + 1)] -= f * u2_[static_cast<std::size_t>(i)];
    }
    if (i + 2 < n) {
      const double f2 = sub2[static_cast<std::size_t>(i + 2)] / piv;
      l2_[static_cast<std::size_t>(i + 2)] = f2;
      sub1[static_cast<std::size_t>(i + 2)] -= f2 * u1_[static_cast<std::size_t>(i)];
      d_[static_cast<std::size_t>(i + 2)] -= f2 * u2_[static_cast<std::size_t>(i)];
    }
  }
}

void PentaSolver::solve(double* x, int stride) const {
  auto at = [&](int i) -> double& { return x[i * stride]; };
  // Forward: y = L^-1 b.
  for (int i = 1; i < n_; ++i) {
    double v = at(i) - l1_[static_cast<std::size_t>(i)] * at(i - 1);
    if (i >= 2) v -= l2_[static_cast<std::size_t>(i)] * at(i - 2);
    at(i) = v;
  }
  // Back: x = U^-1 y.
  at(n_ - 1) /= d_[static_cast<std::size_t>(n_ - 1)];
  if (n_ >= 2) {
    at(n_ - 2) = (at(n_ - 2) - u1_[static_cast<std::size_t>(n_ - 2)] * at(n_ - 1)) /
                 d_[static_cast<std::size_t>(n_ - 2)];
  }
  for (int i = n_ - 3; i >= 0; --i) {
    at(i) = (at(i) - u1_[static_cast<std::size_t>(i)] * at(i + 1) -
             u2_[static_cast<std::size_t>(i)] * at(i + 2)) /
            d_[static_cast<std::size_t>(i)];
  }
}

namespace {

constexpr int kGhostUp = 301;
constexpr int kGhostDown = 302;

/// Per-component diffusivities: scalar systems, slightly different per
/// component (the "5 independent scalar solves" character of SP).
double kappa(int m) { return 1.0 + 0.1 * m; }

struct SpGrid {
  SpConfig c;
  int np = 1, rank = 0, nzl = 0, z0 = 0, nyl = 0;
  std::vector<double> u;        ///< ghosts in z: k in [-1, nzl]
  std::vector<double> forcing;  ///< interior
  std::vector<double> rhs;

  std::size_t u_index(int i, int j, int k, int m) const {
    return ((static_cast<std::size_t>(k + 1) * c.ny + j) * c.nx + i) * 5 +
           static_cast<std::size_t>(m);
  }
  std::size_t cell(int i, int j, int k) const {
    return ((static_cast<std::size_t>(k) * c.ny + j) * c.nx + i) * 5;
  }
  double& u_at(int i, int j, int k, int m) { return u[u_index(i, j, k, m)]; }
  double u_at(int i, int j, int k, int m) const { return u[u_index(i, j, k, m)]; }
};

double exact_sp(const SpConfig& c, int i, int j, int k, int m) {
  const double x = static_cast<double>(i) / (c.nx - 1);
  const double y = static_cast<double>(j) / (c.ny - 1);
  const double z = static_cast<double>(k) / (c.nz - 1);
  return 1.0 + 0.15 * (m + 1) * std::sin(std::numbers::pi * x) *
                   std::sin(std::numbers::pi * y) * std::sin(std::numbers::pi * z) +
         0.04 * (2.0 * x + y + z) * (m + 1);
}

double laplacian(const SpGrid& g, int i, int j, int k, int m) {
  const auto& c = g.c;
  const double dx2 = 1.0 / ((c.nx - 1) * (c.nx - 1));
  const double dy2 = 1.0 / ((c.ny - 1) * (c.ny - 1));
  const double dz2 = 1.0 / ((c.nz - 1) * (c.nz - 1));
  const double uc = g.u_at(i, j, k, m);
  return kappa(m) *
         ((g.u_at(i - 1, j, k, m) - 2 * uc + g.u_at(i + 1, j, k, m)) / dx2 +
          (g.u_at(i, j - 1, k, m) - 2 * uc + g.u_at(i, j + 1, k, m)) / dy2 +
          (g.u_at(i, j, k - 1, m) - 2 * uc + g.u_at(i, j, k + 1, m)) / dz2);
}

void exchange_ghosts(minimpi::Comm& comm, SpGrid* g) {
  const auto& c = g->c;
  const std::size_t plane = static_cast<std::size_t>(c.nx) * c.ny * 5;
  std::vector<double> buf(plane);
  if (g->rank + 1 < g->np) {
    comm.send(g->rank + 1, kGhostUp, &g->u[g->u_index(0, 0, g->nzl - 1, 0)],
              plane * sizeof(double));
  }
  if (g->rank > 0) {
    comm.recv(g->rank - 1, kGhostUp, buf.data(), plane * sizeof(double));
    std::copy(buf.begin(), buf.end(),
              g->u.begin() + static_cast<std::ptrdiff_t>(g->u_index(0, 0, -1, 0)));
  }
  if (g->rank > 0) {
    comm.send(g->rank - 1, kGhostDown, &g->u[g->u_index(0, 0, 0, 0)],
              plane * sizeof(double));
  }
  if (g->rank + 1 < g->np) {
    comm.recv(g->rank + 1, kGhostDown, buf.data(), plane * sizeof(double));
    std::copy(buf.begin(), buf.end(),
              g->u.begin() + static_cast<std::ptrdiff_t>(g->u_index(0, 0, g->nzl, 0)));
  }
}

void sp_initialize(SpGrid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  g->u.assign(static_cast<std::size_t>(g->nzl + 2) * c.ny * c.nx * 5, 0.0);
  for (int k = -1; k <= g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg < 0 || kg >= c.nz) continue;
    for (int j = 0; j < c.ny; ++j) {
      for (int i = 0; i < c.nx; ++i) {
        const bool boundary = (i == 0 || i == c.nx - 1 || j == 0 ||
                               j == c.ny - 1 || kg == 0 || kg == c.nz - 1);
        for (int m = 0; m < 5; ++m) {
          const double ue = exact_sp(c, i, j, kg, m);
          g->u_at(i, j, k, m) = boundary ? ue : 0.85 * ue + 0.15;
        }
      }
    }
  }
}

void sp_exact_rhs(SpGrid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  g->forcing.assign(static_cast<std::size_t>(g->nzl) * c.ny * c.nx * 5, 0.0);
  SpGrid exact = *g;
  for (int k = -1; k <= g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg < 0 || kg >= c.nz) continue;
    for (int j = 0; j < c.ny; ++j) {
      for (int i = 0; i < c.nx; ++i) {
        for (int m = 0; m < 5; ++m) {
          exact.u_at(i, j, k, m) = exact_sp(c, i, j, kg, m);
        }
      }
    }
  }
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        for (int m = 0; m < 5; ++m) {
          g->forcing[g->cell(i, j, k) + static_cast<std::size_t>(m)] =
              -laplacian(exact, i, j, k, m);
        }
      }
    }
  }
}

void sp_compute_rhs(minimpi::Comm& comm, SpGrid* g) {
  TEMPEST_FUNCTION();
  exchange_ghosts(comm, g);
  const auto& c = g->c;
  g->rhs.assign(static_cast<std::size_t>(g->nzl) * c.ny * c.nx * 5, 0.0);
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        for (int m = 0; m < 5; ++m) {
          g->rhs[g->cell(i, j, k) + static_cast<std::size_t>(m)] =
              c.dt * (laplacian(g[0], i, j, k, m) +
                      g->forcing[g->cell(i, j, k) + static_cast<std::size_t>(m)]);
        }
      }
    }
  }
}

/// Implicit factor along a direction of extent n: I + dt kappa c2 D2 +
/// dissipation (4th difference), pentadiagonal.
PentaSolver make_solver(const SpConfig& c, int extent, int m) {
  const double h2 = 1.0 / ((extent - 1.0) * (extent - 1.0));
  const double k2 = c.dt * kappa(m) / h2;
  const double k4 = c.dissipation * k2;
  return PentaSolver(extent - 2, 1.0 + 2.0 * k2 + 6.0 * k4, -k2 - 4.0 * k4, k4);
}

void sp_x_solve(SpGrid* g, const std::vector<PentaSolver>& solvers) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int m = 0; m < 5; ++m) {
        solvers[static_cast<std::size_t>(m)].solve(
            &g->rhs[g->cell(1, j, k) + static_cast<std::size_t>(m)], 5);
      }
    }
  }
}

void sp_y_solve(SpGrid* g, const std::vector<PentaSolver>& solvers) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int i = 1; i < c.nx - 1; ++i) {
      for (int m = 0; m < 5; ++m) {
        solvers[static_cast<std::size_t>(m)].solve(
            &g->rhs[g->cell(i, 1, k) + static_cast<std::size_t>(m)], 5 * c.nx);
      }
    }
  }
}

/// z sweep via transpose: redistribute so each rank owns full-z data
/// for a stripe of j, solve, transpose back.
void sp_z_solve(minimpi::Comm& comm, SpGrid* g,
                const std::vector<PentaSolver>& solvers) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  const int np = g->np;
  const int nyl = g->nyl;
  // block sent to rank r: all local k, r's j-stripe, all i, all m.
  const std::size_t block = static_cast<std::size_t>(g->nzl) * nyl * c.nx * 5;
  std::vector<double> sendbuf(block * static_cast<std::size_t>(np));
  std::vector<double> recvbuf(block * static_cast<std::size_t>(np));

  for (int r = 0; r < np; ++r) {
    double* dst = &sendbuf[block * static_cast<std::size_t>(r)];
    std::size_t p = 0;
    for (int k = 0; k < g->nzl; ++k) {
      for (int j = 0; j < nyl; ++j) {
        const double* src = &g->rhs[g->cell(0, r * nyl + j, k)];
        std::copy(src, src + static_cast<std::size_t>(c.nx) * 5, dst + p);
        p += static_cast<std::size_t>(c.nx) * 5;
      }
    }
  }
  comm.alltoall(sendbuf.data(), recvbuf.data(), block);

  // recvbuf from rank r holds its k-range for OUR j-stripe; assemble
  // zbuf[j_local][nz][nx][5] and solve along k (stride nx*5).
  std::vector<double> zbuf(static_cast<std::size_t>(nyl) * c.nz * c.nx * 5);
  auto z_index = [&](int j, int k, int i) {
    return ((static_cast<std::size_t>(j) * c.nz + k) * c.nx + i) * 5;
  };
  for (int r = 0; r < np; ++r) {
    const double* src = &recvbuf[block * static_cast<std::size_t>(r)];
    std::size_t p = 0;
    for (int k = 0; k < g->nzl; ++k) {
      for (int j = 0; j < nyl; ++j) {
        std::copy(src + p, src + p + static_cast<std::size_t>(c.nx) * 5,
                  &zbuf[z_index(j, r * g->nzl + k, 0)]);
        p += static_cast<std::size_t>(c.nx) * 5;
      }
    }
  }
  for (int j = 0; j < nyl; ++j) {
    const int jg = g->rank * nyl + j;
    if (jg == 0 || jg == c.ny - 1) continue;
    for (int i = 1; i < c.nx - 1; ++i) {
      for (int m = 0; m < 5; ++m) {
        solvers[static_cast<std::size_t>(m)].solve(
            &zbuf[z_index(j, 1, i) + static_cast<std::size_t>(m)], 5 * c.nx);
      }
    }
  }
  // Transpose back.
  for (int r = 0; r < np; ++r) {
    double* dst = &sendbuf[block * static_cast<std::size_t>(r)];
    std::size_t p = 0;
    for (int k = 0; k < g->nzl; ++k) {
      for (int j = 0; j < nyl; ++j) {
        std::copy(&zbuf[z_index(j, r * g->nzl + k, 0)],
                  &zbuf[z_index(j, r * g->nzl + k, 0)] +
                      static_cast<std::size_t>(c.nx) * 5,
                  dst + p);
        p += static_cast<std::size_t>(c.nx) * 5;
      }
    }
  }
  comm.alltoall(sendbuf.data(), recvbuf.data(), block);
  for (int r = 0; r < np; ++r) {
    const double* src = &recvbuf[block * static_cast<std::size_t>(r)];
    std::size_t p = 0;
    for (int k = 0; k < g->nzl; ++k) {
      for (int j = 0; j < nyl; ++j) {
        double* dst = &g->rhs[g->cell(0, r * nyl + j, k)];
        std::copy(src + p, src + p + static_cast<std::size_t>(c.nx) * 5, dst);
        p += static_cast<std::size_t>(c.nx) * 5;
      }
    }
  }
}

void sp_add(SpGrid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        for (int m = 0; m < 5; ++m) {
          g->u_at(i, j, k, m) +=
              g->rhs[g->cell(i, j, k) + static_cast<std::size_t>(m)];
        }
      }
    }
  }
}

}  // namespace

SpConfig SpConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {12, 12, 12, 6, 0.02, 0.05};
    case ProblemClass::W: return {16, 16, 16, 8, 0.012, 0.05};
    case ProblemClass::A: return {28, 28, 28, 10, 0.006, 0.05};
  }
  return {};
}

SpResult sp_run(minimpi::Comm& comm, const SpConfig& config) {
  TEMPEST_FUNCTION();
  if (config.nz % comm.size() != 0 || config.ny % comm.size() != 0) {
    throw std::invalid_argument("SP: rank count must divide ny and nz");
  }
  if (config.nz / comm.size() < 1) {
    throw std::invalid_argument("SP: need >= 1 z plane per rank");
  }
  const double t0 = comm.wtime();
  SpGrid g;
  g.c = config;
  g.np = comm.size();
  g.rank = comm.rank();
  g.nzl = config.nz / comm.size();
  g.z0 = g.rank * g.nzl;
  g.nyl = config.ny / comm.size();

  std::vector<PentaSolver> sx, sy, sz;
  for (int m = 0; m < 5; ++m) {
    sx.push_back(make_solver(config, config.nx, m));
    sy.push_back(make_solver(config, config.ny, m));
    sz.push_back(make_solver(config, config.nz, m));
  }

  sp_initialize(&g);
  sp_exact_rhs(&g);
  comm.barrier();

  SpResult result;
  for (int it = 0; it < config.niter; ++it) {
    StretchScope stretch(comm);
    sp_compute_rhs(comm, &g);
    sp_x_solve(&g, sx);
    sp_y_solve(&g, sy);
    sp_z_solve(comm, &g, sz);
    sp_add(&g);

    sp_compute_rhs(comm, &g);
    double norm = 0.0;
    for (double v : g.rhs) norm += v * v;
    comm.allreduce_sum_inplace(&norm, 1);
    result.rhs_norms.push_back(std::sqrt(norm));
  }

  double err = 0.0;
  for (int k = 0; k < g.nzl; ++k) {
    for (int j = 0; j < config.ny; ++j) {
      for (int i = 0; i < config.nx; ++i) {
        for (int m = 0; m < 5; ++m) {
          const double d =
              g.u_at(i, j, k, m) - exact_sp(config, i, j, g.z0 + k, m);
          err += d * d;
        }
      }
    }
  }
  comm.allreduce_sum_inplace(&err, 1);
  result.final_error = std::sqrt(err);
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

SpResult sp_serial(const SpConfig& config) {
  SpResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = sp_run(comm, config); });
  return result;
}

VerifyResult sp_verify(const SpResult& got, const SpConfig& config) {
  const SpResult want = sp_serial(config);
  VerifyResult v;
  v.passed = got.rhs_norms.size() == want.rhs_norms.size();
  for (std::size_t i = 0; v.passed && i < got.rhs_norms.size(); ++i) {
    v.passed = close_rel(got.rhs_norms[i], want.rhs_norms[i], 1e-8);
  }
  if (v.passed && !got.rhs_norms.empty()) {
    v.passed = got.rhs_norms.back() < got.rhs_norms.front() &&
               close_rel(got.final_error, want.final_error, 1e-8);
  }
  std::ostringstream detail;
  if (!got.rhs_norms.empty()) {
    detail << "rhs " << got.rhs_norms.front() << " -> " << got.rhs_norms.back()
           << ", error " << got.final_error;
  }
  v.detail = detail.str();
  return v;
}

}  // namespace npb
