// 5x5 block kernels of the BT solver.
//
// These are the per-cell operations of the NAS BT ADI sweep:
// matvec_sub (b -= A x), matmul_sub (C -= A B), binvcrhs (eliminate a
// diagonal block against its super-diagonal block and right-hand side)
// and binvrhs (last cell of a line). They are the hot path — BT calls
// them per grid cell — so they are plain free functions; the
// Tempest-visible wrappers in bt.cpp batch them per line.
#pragma once

#include <array>

namespace npb {

using Mat5 = std::array<double, 25>;  ///< row-major 5x5
using Vec5 = std::array<double, 5>;

inline double& at(Mat5& m, int r, int c) { return m[static_cast<std::size_t>(r * 5 + c)]; }
inline double at(const Mat5& m, int r, int c) { return m[static_cast<std::size_t>(r * 5 + c)]; }

/// b -= A * x
void matvec_sub5(const Mat5& a, const Vec5& x, Vec5& b);

/// C -= A * B
void matmul_sub5(const Mat5& a, const Mat5& b, Mat5& c);

/// Gaussian elimination with partial pivoting on `lhs`, applied to the
/// super-diagonal block `c` and rhs `r`: c <- lhs^-1 c, r <- lhs^-1 r.
/// (NAS omits pivoting; we pivot for robustness on synthetic blocks.)
void binvcrhs5(Mat5& lhs, Mat5& c, Vec5& r);

/// As binvcrhs5 for the last cell of a line (no super-diagonal block).
void binvrhs5(Mat5& lhs, Vec5& r);

inline Mat5 identity5() {
  Mat5 m{};
  for (int i = 0; i < 5; ++i) at(m, i, i) = 1.0;
  return m;
}

}  // namespace npb
