#include "npb/bt.hpp"

#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/blocks5.hpp"

namespace npb {
namespace {

constexpr int kGhostTagUp = 101;
constexpr int kGhostTagDown = 102;
constexpr int kPipeForward = 103;
constexpr int kPipeBackward = 104;

// -- instrumented per-cell kernels (the paper's Table 3 functions) -------

void matvec_sub(const Mat5& a, const Vec5& x, Vec5& b) {
  TEMPEST_FUNCTION();
  matvec_sub5(a, x, b);
}

void matmul_sub(const Mat5& a, const Mat5& b, Mat5& c) {
  TEMPEST_FUNCTION();
  matmul_sub5(a, b, c);
}

void binvcrhs(Mat5& lhs, Mat5& c, Vec5& r) {
  TEMPEST_FUNCTION();
  binvcrhs5(lhs, c, r);
}

void binvrhs(Mat5& lhs, Vec5& r) {
  TEMPEST_FUNCTION();
  binvrhs5(lhs, r);
}

// Dispatch between the instrumented kernels (Table 3 runs) and the raw
// blocks5 versions (long figure runs; see BtConfig::kernel_events).
void kv_matvec(bool ev, const Mat5& a, const Vec5& x, Vec5& b) {
  if (ev) {
    matvec_sub(a, x, b);
  } else {
    matvec_sub5(a, x, b);
  }
}
void kv_matmul(bool ev, const Mat5& a, const Mat5& b, Mat5& c) {
  if (ev) {
    matmul_sub(a, b, c);
  } else {
    matmul_sub5(a, b, c);
  }
}
void kv_binvcrhs(bool ev, Mat5& lhs, Mat5& c, Vec5& r) {
  if (ev) {
    binvcrhs(lhs, c, r);
  } else {
    binvcrhs5(lhs, c, r);
  }
}
void kv_binvrhs(bool ev, Mat5& lhs, Vec5& r) {
  if (ev) {
    binvrhs(lhs, r);
  } else {
    binvrhs5(lhs, r);
  }
}

// -- grid state ----------------------------------------------------------

struct Grid {
  BtConfig c;
  int np = 1, rank = 0;
  int nzl = 0;  ///< owned z planes
  int z0 = 0;   ///< first owned global z
  // u with one ghost plane on each z side: index(k in [-1, nzl]).
  std::vector<double> u;
  std::vector<double> forcing;  ///< interior, no ghosts
  std::vector<double> rhs;      ///< interior, no ghosts

  std::size_t u_index(int i, int j, int k, int m) const {
    return ((static_cast<std::size_t>(k + 1) * c.ny + j) * c.nx + i) * 5 +
           static_cast<std::size_t>(m);
  }
  std::size_t cell_index(int i, int j, int k) const {
    return ((static_cast<std::size_t>(k) * c.ny + j) * c.nx + i) * 5;
  }
  double& u_at(int i, int j, int k, int m) { return u[u_index(i, j, k, m)]; }
  double u_at(int i, int j, int k, int m) const { return u[u_index(i, j, k, m)]; }
};

/// Manufactured exact solution: smooth, component-coupled, Dirichlet
/// values taken directly from it at the domain boundary.
Vec5 exact_solution(const BtConfig& c, int i, int j, int k) {
  const double x = static_cast<double>(i) / (c.nx - 1);
  const double y = static_cast<double>(j) / (c.ny - 1);
  const double z = static_cast<double>(k) / (c.nz - 1);
  Vec5 u;
  for (int m = 0; m < 5; ++m) {
    u[static_cast<std::size_t>(m)] =
        1.0 + 0.2 * (m + 1) * std::sin(std::numbers::pi * x) *
                  std::sin(std::numbers::pi * y) * std::sin(std::numbers::pi * z) +
        0.05 * (x + 2.0 * y + 3.0 * z) * (m + 1);
  }
  return u;
}

/// Cell-dependent 5x5 coupling block: symmetric, bounded, u-dependent
/// (the stand-in for BT's flux Jacobians).
Mat5 coupling(const Vec5& u) {
  Mat5 m{};
  double norm2 = 0.0;
  for (double v : u) norm2 += v * v;
  const double scale = 0.4 / (1.0 + norm2);
  for (int r = 0; r < 5; ++r) {
    for (int col = 0; col < 5; ++col) {
      at(m, r, col) = scale * u[static_cast<std::size_t>(r)] *
                      u[static_cast<std::size_t>(col)];
    }
    at(m, r, r) += 0.1;
  }
  return m;
}

/// Discrete operator L(u) at an interior cell: 3-D Laplacian per
/// component plus the coupling block applied to u. Reads z neighbours
/// from ghost planes.
Vec5 apply_operator(const Grid& g, int i, int j, int k_local) {
  const auto& c = g.c;
  const double dx2 = 1.0 / ((c.nx - 1) * (c.nx - 1));
  const double dy2 = 1.0 / ((c.ny - 1) * (c.ny - 1));
  const double dz2 = 1.0 / ((c.nz - 1) * (c.nz - 1));
  Vec5 center, out{};
  for (int m = 0; m < 5; ++m) {
    center[static_cast<std::size_t>(m)] = g.u_at(i, j, k_local, m);
  }
  for (int m = 0; m < 5; ++m) {
    const double uc = center[static_cast<std::size_t>(m)];
    const double lap =
        (g.u_at(i - 1, j, k_local, m) - 2.0 * uc + g.u_at(i + 1, j, k_local, m)) / dx2 +
        (g.u_at(i, j - 1, k_local, m) - 2.0 * uc + g.u_at(i, j + 1, k_local, m)) / dy2 +
        (g.u_at(i, j, k_local - 1, m) - 2.0 * uc + g.u_at(i, j, k_local + 1, m)) / dz2;
    out[static_cast<std::size_t>(m)] = lap;
  }
  const Mat5 cpl = coupling(center);
  // out -= coupling * u (the operator is Laplacian minus coupling).
  matvec_sub5(cpl, center, out);
  return out;
}

/// Exchange z ghost planes with neighbouring ranks; domain-boundary
/// ghosts hold the exact (Dirichlet) solution already set at init.
void exchange_ghosts(minimpi::Comm& comm, Grid* g) {
  const auto& c = g->c;
  const std::size_t plane = static_cast<std::size_t>(c.nx) * c.ny * 5;
  std::vector<double> buf(plane);
  // Send up (to rank+1), receive from below (rank-1); then the reverse.
  if (g->rank + 1 < g->np) {
    comm.send(g->rank + 1, kGhostTagUp, &g->u[g->u_index(0, 0, g->nzl - 1, 0)],
              plane * sizeof(double));
  }
  if (g->rank > 0) {
    comm.recv(g->rank - 1, kGhostTagUp, buf.data(), plane * sizeof(double));
    std::copy(buf.begin(), buf.end(), g->u.begin() + static_cast<std::ptrdiff_t>(g->u_index(0, 0, -1, 0)));
  }
  if (g->rank > 0) {
    comm.send(g->rank - 1, kGhostTagDown, &g->u[g->u_index(0, 0, 0, 0)],
              plane * sizeof(double));
  }
  if (g->rank + 1 < g->np) {
    comm.recv(g->rank + 1, kGhostTagDown, buf.data(), plane * sizeof(double));
    std::copy(buf.begin(), buf.end(), g->u.begin() + static_cast<std::ptrdiff_t>(g->u_index(0, 0, g->nzl, 0)));
  }
}

void initialize(Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  g->u.assign(static_cast<std::size_t>(g->nzl + 2) * c.ny * c.nx * 5, 0.0);
  for (int k = -1; k <= g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg < 0 || kg >= c.nz) continue;
    for (int j = 0; j < c.ny; ++j) {
      for (int i = 0; i < c.nx; ++i) {
        const Vec5 ue = exact_solution(c, i, j, kg);
        const bool boundary = (i == 0 || i == c.nx - 1 || j == 0 || j == c.ny - 1 ||
                               kg == 0 || kg == c.nz - 1);
        for (int m = 0; m < 5; ++m) {
          // Boundary cells hold the Dirichlet data; interior starts
          // perturbed away from the solution (NAS-style crude init).
          g->u_at(i, j, k, m) = boundary ? ue[static_cast<std::size_t>(m)]
                                         : 0.8 * ue[static_cast<std::size_t>(m)] + 0.2;
        }
      }
    }
  }
}

/// Forcing chosen so the manufactured solution is the steady state of
/// the discrete operator: F = -L_h(u_exact).
void exact_rhs(Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  g->forcing.assign(static_cast<std::size_t>(g->nzl) * c.ny * c.nx * 5, 0.0);

  // Evaluate L_h on the exact solution directly (no communication: the
  // exact solution is analytic at any index).
  Grid exact = *g;
  for (int k = -1; k <= g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg < 0 || kg >= c.nz) continue;
    for (int j = 0; j < c.ny; ++j) {
      for (int i = 0; i < c.nx; ++i) {
        const Vec5 ue = exact_solution(c, i, j, kg);
        for (int m = 0; m < 5; ++m) {
          exact.u_at(i, j, k, m) = ue[static_cast<std::size_t>(m)];
        }
      }
    }
  }
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        const Vec5 lu = apply_operator(exact, i, j, k);
        for (int m = 0; m < 5; ++m) {
          g->forcing[g->cell_index(i, j, k) + static_cast<std::size_t>(m)] =
              -lu[static_cast<std::size_t>(m)];
        }
      }
    }
  }
}

/// rhs = dt * (L_h(u) + F) over interior cells.
void compute_rhs(minimpi::Comm& comm, Grid* g) {
  TEMPEST_FUNCTION();
  exchange_ghosts(comm, g);
  const auto& c = g->c;
  g->rhs.assign(static_cast<std::size_t>(g->nzl) * c.ny * c.nx * 5, 0.0);
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        const Vec5 lu = apply_operator(*g, i, j, k);
        for (int m = 0; m < 5; ++m) {
          g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)] =
              g->c.dt * (lu[static_cast<std::size_t>(m)] +
                         g->forcing[g->cell_index(i, j, k) + static_cast<std::size_t>(m)]);
        }
      }
    }
  }
}

/// Build the line blocks for a cell in direction `dim` (0=x,1=y,2=z):
/// B = I + dt*(2/dh^2) I + dt*coupling(u)/3, A = C = -dt/dh^2 I.
void line_blocks(const Grid& g, int i, int j, int k_local, int dim, Mat5* a, Mat5* b,
                 Mat5* cmat) {
  const auto& c = g.c;
  const int n = dim == 0 ? c.nx : dim == 1 ? c.ny : c.nz;
  const double dh2 = 1.0 / ((n - 1) * (n - 1));
  const double off = -c.dt / dh2;
  *a = Mat5{};
  *cmat = Mat5{};
  for (int m = 0; m < 5; ++m) {
    at(*a, m, m) = off;
    at(*cmat, m, m) = off;
  }
  Vec5 center;
  for (int m = 0; m < 5; ++m) {
    center[static_cast<std::size_t>(m)] = g.u_at(i, j, k_local, m);
  }
  const Mat5 cpl = coupling(center);
  *b = Mat5{};
  for (int m = 0; m < 5; ++m) at(*b, m, m) = 1.0 + 2.0 * c.dt / dh2;
  for (int r = 0; r < 5; ++r) {
    for (int col = 0; col < 5; ++col) {
      at(*b, r, col) += c.dt * at(cpl, r, col) / 3.0;
    }
  }
}

/// Local block-Thomas solve along x for every interior (j, k) line.
void x_solve(Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  const bool ev = c.kernel_events;
  const int n = c.nx - 2;  // interior cells per line
  std::vector<Mat5> cs(static_cast<std::size_t>(n));
  std::vector<Vec5> rs(static_cast<std::size_t>(n));
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      // Forward elimination.
      for (int i = 1; i <= n; ++i) {
        Mat5 a, b, cm;
        line_blocks(*g, i, j, k, 0, &a, &b, &cm);
        Vec5 r;
        for (int m = 0; m < 5; ++m) {
          r[static_cast<std::size_t>(m)] =
              g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)];
        }
        if (i > 1) {
          kv_matvec(ev, a, rs[static_cast<std::size_t>(i - 2)], r);
          kv_matmul(ev, a, cs[static_cast<std::size_t>(i - 2)], b);
        }
        if (i < n) {
          kv_binvcrhs(ev, b, cm, r);
        } else {
          kv_binvrhs(ev, b, r);
        }
        cs[static_cast<std::size_t>(i - 1)] = cm;
        rs[static_cast<std::size_t>(i - 1)] = r;
      }
      // Back substitution.
      for (int i = n - 1; i >= 1; --i) {
        kv_matvec(ev, cs[static_cast<std::size_t>(i - 1)], rs[static_cast<std::size_t>(i)],
                   rs[static_cast<std::size_t>(i - 1)]);
      }
      for (int i = 1; i <= n; ++i) {
        for (int m = 0; m < 5; ++m) {
          g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)] =
              rs[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(m)];
        }
      }
    }
  }
}

/// Local block-Thomas solve along y for every interior (i, k) line.
void y_solve(Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  const bool ev = c.kernel_events;
  const int n = c.ny - 2;
  std::vector<Mat5> cs(static_cast<std::size_t>(n));
  std::vector<Vec5> rs(static_cast<std::size_t>(n));
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int i = 1; i < c.nx - 1; ++i) {
      for (int j = 1; j <= n; ++j) {
        Mat5 a, b, cm;
        line_blocks(*g, i, j, k, 1, &a, &b, &cm);
        Vec5 r;
        for (int m = 0; m < 5; ++m) {
          r[static_cast<std::size_t>(m)] =
              g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)];
        }
        if (j > 1) {
          kv_matvec(ev, a, rs[static_cast<std::size_t>(j - 2)], r);
          kv_matmul(ev, a, cs[static_cast<std::size_t>(j - 2)], b);
        }
        if (j < n) {
          kv_binvcrhs(ev, b, cm, r);
        } else {
          kv_binvrhs(ev, b, r);
        }
        cs[static_cast<std::size_t>(j - 1)] = cm;
        rs[static_cast<std::size_t>(j - 1)] = r;
      }
      for (int j = n - 1; j >= 1; --j) {
        kv_matvec(ev, cs[static_cast<std::size_t>(j - 1)], rs[static_cast<std::size_t>(j)],
                   rs[static_cast<std::size_t>(j - 1)]);
      }
      for (int j = 1; j <= n; ++j) {
        for (int m = 0; m < 5; ++m) {
          g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)] =
              rs[static_cast<std::size_t>(j - 1)][static_cast<std::size_t>(m)];
        }
      }
    }
  }
}

/// Pipelined cross-rank block-Thomas solve along z: forward elimination
/// sweeps rank 0 -> np-1, back substitution returns np-1 -> 0. This is
/// the synchronising communication phase of BT.
void z_solve(minimpi::Comm& comm, Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  const bool ev = c.kernel_events;
  const int nlines = (c.nx - 2) * (c.ny - 2);
  // Local interior k range (global interior is 1 .. nz-2).
  const int k_lo = std::max(g->z0, 1) - g->z0;
  const int k_hi = std::min(g->z0 + g->nzl, c.nz - 1) - g->z0;  // exclusive
  const int local_cells = std::max(0, k_hi - k_lo);
  const bool last_rank = (g->z0 + g->nzl) >= (c.nz - 1);

  // Per line, per local cell: retained C blocks and rhs for back-subst.
  std::vector<Mat5> cs(static_cast<std::size_t>(nlines) * static_cast<std::size_t>(local_cells));
  std::vector<Vec5> rs(cs.size());

  auto line_of = [&](int i, int j) { return (j - 1) * (c.nx - 2) + (i - 1); };

  // Incoming pipeline state: previous cell's C and rhs per line.
  std::vector<Mat5> c_prev(static_cast<std::size_t>(nlines), Mat5{});
  std::vector<Vec5> r_prev(static_cast<std::size_t>(nlines), Vec5{});
  bool have_prev = false;

  if (g->rank > 0) {
    std::vector<double> buf(static_cast<std::size_t>(nlines) * 30);
    comm.recv(g->rank - 1, kPipeForward, buf.data(), buf.size() * sizeof(double));
    for (int l = 0; l < nlines; ++l) {
      for (int e = 0; e < 25; ++e) {
        c_prev[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] =
            buf[static_cast<std::size_t>(l) * 30 + static_cast<std::size_t>(e)];
      }
      for (int e = 0; e < 5; ++e) {
        r_prev[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] =
            buf[static_cast<std::size_t>(l) * 30 + 25 + static_cast<std::size_t>(e)];
      }
    }
    have_prev = true;
  }

  // Forward elimination through local cells.
  for (int kc = 0; kc < local_cells; ++kc) {
    const int k = k_lo + kc;
    const bool global_last = last_rank && (kc == local_cells - 1);
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        const int l = line_of(i, j);
        Mat5 a, b, cm;
        line_blocks(*g, i, j, k, 2, &a, &b, &cm);
        Vec5 r;
        for (int m = 0; m < 5; ++m) {
          r[static_cast<std::size_t>(m)] =
              g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)];
        }
        if (have_prev || kc > 0) {
          kv_matvec(ev, a, r_prev[static_cast<std::size_t>(l)], r);
          kv_matmul(ev, a, c_prev[static_cast<std::size_t>(l)], b);
        }
        if (global_last) {
          kv_binvrhs(ev, b, r);
          cm = Mat5{};
        } else {
          kv_binvcrhs(ev, b, cm, r);
        }
        const std::size_t idx =
            static_cast<std::size_t>(l) * static_cast<std::size_t>(local_cells) +
            static_cast<std::size_t>(kc);
        cs[idx] = cm;
        rs[idx] = r;
        c_prev[static_cast<std::size_t>(l)] = cm;
        r_prev[static_cast<std::size_t>(l)] = r;
      }
    }
  }

  if (!last_rank) {
    std::vector<double> buf(static_cast<std::size_t>(nlines) * 30);
    for (int l = 0; l < nlines; ++l) {
      for (int e = 0; e < 25; ++e) {
        buf[static_cast<std::size_t>(l) * 30 + static_cast<std::size_t>(e)] =
            c_prev[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)];
      }
      for (int e = 0; e < 5; ++e) {
        buf[static_cast<std::size_t>(l) * 30 + 25 + static_cast<std::size_t>(e)] =
            r_prev[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)];
      }
    }
    comm.send(g->rank + 1, kPipeForward, buf.data(), buf.size() * sizeof(double));
  }

  // Back substitution: x_k = r_k - C_k x_{k+1}.
  std::vector<Vec5> x_next(static_cast<std::size_t>(nlines), Vec5{});
  bool have_next = false;
  if (!last_rank) {
    std::vector<double> buf(static_cast<std::size_t>(nlines) * 5);
    comm.recv(g->rank + 1, kPipeBackward, buf.data(), buf.size() * sizeof(double));
    for (int l = 0; l < nlines; ++l) {
      for (int e = 0; e < 5; ++e) {
        x_next[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] =
            buf[static_cast<std::size_t>(l) * 5 + static_cast<std::size_t>(e)];
      }
    }
    have_next = true;
  }

  for (int kc = local_cells - 1; kc >= 0; --kc) {
    const int k = k_lo + kc;
    const bool global_last = last_rank && (kc == local_cells - 1);
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        const int l = line_of(i, j);
        const std::size_t idx =
            static_cast<std::size_t>(l) * static_cast<std::size_t>(local_cells) +
            static_cast<std::size_t>(kc);
        Vec5 x = rs[idx];
        if (!global_last && (kc < local_cells - 1 || have_next)) {
          const Vec5& next = (kc < local_cells - 1)
                                 ? rs[idx + 1]
                                 : x_next[static_cast<std::size_t>(l)];
          kv_matvec(ev, cs[idx], next, x);
        }
        rs[idx] = x;
        for (int m = 0; m < 5; ++m) {
          g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)] =
              x[static_cast<std::size_t>(m)];
        }
      }
    }
  }

  if (g->rank > 0 && local_cells > 0) {
    std::vector<double> buf(static_cast<std::size_t>(nlines) * 5);
    for (int l = 0; l < nlines; ++l) {
      const std::size_t idx =
          static_cast<std::size_t>(l) * static_cast<std::size_t>(local_cells);
      for (int e = 0; e < 5; ++e) {
        buf[static_cast<std::size_t>(l) * 5 + static_cast<std::size_t>(e)] =
            rs[idx][static_cast<std::size_t>(e)];
      }
    }
    comm.send(g->rank - 1, kPipeBackward, buf.data(), buf.size() * sizeof(double));
  }
}

/// u += delta (the solved update now sitting in rhs).
void add(Grid* g) {
  TEMPEST_FUNCTION();
  const auto& c = g->c;
  for (int k = 0; k < g->nzl; ++k) {
    const int kg = g->z0 + k;
    if (kg == 0 || kg == c.nz - 1) continue;
    for (int j = 1; j < c.ny - 1; ++j) {
      for (int i = 1; i < c.nx - 1; ++i) {
        for (int m = 0; m < 5; ++m) {
          g->u_at(i, j, k, m) +=
              g->rhs[g->cell_index(i, j, k) + static_cast<std::size_t>(m)];
        }
      }
    }
  }
}

double rhs_norm(minimpi::Comm& comm, const Grid& g) {
  double acc = 0.0;
  for (double v : g.rhs) acc += v * v;
  comm.allreduce_sum_inplace(&acc, 1);
  return std::sqrt(acc);
}

double error_norm(minimpi::Comm& comm, const Grid& g) {
  TEMPEST_FUNCTION();
  const auto& c = g.c;
  double acc = 0.0;
  for (int k = 0; k < g.nzl; ++k) {
    const int kg = g.z0 + k;
    for (int j = 0; j < c.ny; ++j) {
      for (int i = 0; i < c.nx; ++i) {
        const Vec5 ue = exact_solution(c, i, j, kg);
        for (int m = 0; m < 5; ++m) {
          const double d = g.u_at(i, j, k, m) - ue[static_cast<std::size_t>(m)];
          acc += d * d;
        }
      }
    }
  }
  comm.allreduce_sum_inplace(&acc, 1);
  return std::sqrt(acc);
}

/// One ADI step: rhs assembly then the three directional sweeps.
void adi(minimpi::Comm& comm, Grid* g) {
  TEMPEST_FUNCTION();
  StretchScope stretch(comm);
  compute_rhs(comm, g);
  x_solve(g);
  y_solve(g);
  z_solve(comm, g);
  add(g);
}

}  // namespace

BtConfig BtConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {12, 12, 12, 6, 0.02};
    case ProblemClass::W: return {16, 16, 16, 8, 0.01};
    case ProblemClass::A: return {24, 24, 24, 10, 0.005};
  }
  return {};
}

BtResult bt_run(minimpi::Comm& comm, const BtConfig& config) {
  TEMPEST_FUNCTION();
  if (config.nz % comm.size() != 0) {
    throw std::invalid_argument("BT: rank count must divide nz");
  }
  if (config.nz / comm.size() < 2) {
    throw std::invalid_argument("BT: need >= 2 z planes per rank");
  }
  const double t0 = comm.wtime();

  Grid g;
  g.c = config;
  g.np = comm.size();
  g.rank = comm.rank();
  g.nzl = config.nz / comm.size();
  g.z0 = g.rank * g.nzl;

  initialize(&g);
  exact_rhs(&g);

  // The synchronisation event the paper observes in Fig 4: all ranks
  // meet here after the (cheaper) setup phase, then start the
  // compute-heavy ADI iterations together.
  comm.barrier();

  BtResult result;
  for (int it = 0; it < config.niter; ++it) {
    adi(comm, &g);
    compute_rhs(comm, &g);  // fresh residual for the norm
    result.rhs_norms.push_back(rhs_norm(comm, g));
  }
  result.final_error = error_norm(comm, g);
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

BtResult bt_serial(const BtConfig& config) {
  BtResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = bt_run(comm, config); });
  return result;
}

VerifyResult bt_verify(const BtResult& got, const BtConfig& config) {
  const BtResult want = bt_serial(config);
  VerifyResult v;
  std::ostringstream detail;
  v.passed = got.rhs_norms.size() == want.rhs_norms.size();
  for (std::size_t i = 0; v.passed && i < got.rhs_norms.size(); ++i) {
    v.passed = close_rel(got.rhs_norms[i], want.rhs_norms[i], 1e-8);
  }
  if (v.passed) {
    // Convergence: residual decreased and the error is closer to the
    // manufactured solution than the initial perturbation.
    v.passed = !got.rhs_norms.empty() &&
               got.rhs_norms.back() < got.rhs_norms.front() &&
               close_rel(got.final_error, want.final_error, 1e-8);
  }
  detail << "rhs norm " << (got.rhs_norms.empty() ? 0.0 : got.rhs_norms.front())
         << " -> " << (got.rhs_norms.empty() ? 0.0 : got.rhs_norms.back())
         << ", final error " << got.final_error;
  v.detail = detail.str();
  return v;
}

}  // namespace npb
