#include "npb/is.hpp"

#include <algorithm>
#include <stdexcept>
#include <sstream>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/nas_rng.hpp"

namespace npb {
namespace {

/// NAS IS key generation: each key averages four LCG draws, giving the
/// reference code's centre-heavy distribution. Rank-independent: key k
/// of the global sequence uses draws 4k..4k+3.
std::vector<int> create_keys(std::int64_t first, std::int64_t count, int max_key) {
  TEMPEST_FUNCTION();
  std::vector<int> keys;
  keys.reserve(static_cast<std::size_t>(count));
  double seed = seed_after(kNasSeed, kNasMult, static_cast<std::uint64_t>(4 * first));
  for (std::int64_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (int d = 0; d < 4; ++d) acc += randlc(&seed, kNasMult);
    keys.push_back(static_cast<int>(acc * 0.25 * max_key));
  }
  return keys;
}

/// Histogram keys into `np` contiguous key-range buckets.
std::vector<std::size_t> bucket_counts(const std::vector<int>& keys, int max_key,
                                       int np) {
  TEMPEST_FUNCTION();
  std::vector<std::size_t> counts(static_cast<std::size_t>(np), 0);
  const int per_bucket = (max_key + np - 1) / np;
  for (int k : keys) {
    ++counts[static_cast<std::size_t>(std::min(k / per_bucket, np - 1))];
  }
  return counts;
}

/// Counting sort of the received keys (the rank's key sub-range).
void local_sort(std::vector<int>* keys, int max_key) {
  TEMPEST_FUNCTION();
  std::vector<std::uint32_t> histogram(static_cast<std::size_t>(max_key), 0);
  for (int k : *keys) ++histogram[static_cast<std::size_t>(k)];
  std::size_t out = 0;
  for (int value = 0; value < max_key; ++value) {
    for (std::uint32_t c = 0; c < histogram[static_cast<std::size_t>(value)]; ++c) {
      (*keys)[out++] = value;
    }
  }
}

}  // namespace

IsConfig IsConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {14, 13, 8};
    case ProblemClass::W: return {16, 16, 10};
    case ProblemClass::A: return {19, 19, 10};
  }
  return {};
}

IsResult is_run(minimpi::Comm& comm, const IsConfig& config) {
  TEMPEST_FUNCTION();
  const double t0 = comm.wtime();
  const int np = comm.size();
  const std::int64_t total = 1LL << config.log2_keys;
  if (total % np != 0) throw std::invalid_argument("IS: ranks must divide key count");
  const std::int64_t per_rank = total / np;
  const int max_key = 1 << config.log2_max_key;
  const int per_bucket = (max_key + np - 1) / np;

  IsResult result;
  std::vector<int> final_keys;

  for (int iter = 0; iter < config.iterations; ++iter) {
    StretchScope stretch(comm);
    // NAS perturbs the sequence each iteration; we shift the stream.
    const std::int64_t first =
        per_rank * comm.rank() + static_cast<std::int64_t>(iter) * total;
    std::vector<int> keys = create_keys(first, per_rank, max_key);

    // Rank-local bucketing, then the redistribution counts exchange.
    const std::vector<std::size_t> send_counts = bucket_counts(keys, max_key, np);
    std::vector<std::size_t> recv_counts(static_cast<std::size_t>(np));
    comm.alltoall(send_counts.data(), recv_counts.data(), 1);

    // Pack keys in destination order.
    std::vector<int> packed(keys.size());
    std::vector<std::size_t> offsets(static_cast<std::size_t>(np), 0);
    for (int r = 1; r < np; ++r) {
      offsets[static_cast<std::size_t>(r)] =
          offsets[static_cast<std::size_t>(r - 1)] +
          send_counts[static_cast<std::size_t>(r - 1)];
    }
    for (int k : keys) {
      const auto dest = static_cast<std::size_t>(std::min(k / per_bucket, np - 1));
      packed[offsets[dest]++] = k;
    }

    std::size_t total_recv = 0;
    for (std::size_t c : recv_counts) total_recv += c;
    std::vector<int> mine(total_recv);
    comm.alltoallv(packed.data(), send_counts.data(), mine.data(), recv_counts.data());

    local_sort(&mine, max_key);
    result.globally_sorted &= std::is_sorted(mine.begin(), mine.end());
    if (iter == config.iterations - 1) final_keys = std::move(mine);
  }

  // Global sortedness: each rank's range must sit entirely below the
  // next rank's (exchange per-rank min/max).
  double bounds[2] = {final_keys.empty() ? 1e300 : final_keys.front(),
                      final_keys.empty() ? -1e300 : final_keys.back()};
  std::vector<double> all_bounds(static_cast<std::size_t>(2 * np));
  comm.allgather(bounds, all_bounds.data(), 2);
  for (int r = 1; r < np; ++r) {
    const double prev_max = all_bounds[static_cast<std::size_t>(2 * (r - 1) + 1)];
    const double next_min = all_bounds[static_cast<std::size_t>(2 * r)];
    if (prev_max > next_min) result.globally_sorted = false;
  }

  // Partition-independent content checks: key population is preserved
  // bit-for-bit regardless of rank count.
  double sums[3] = {0.0, 0.0, static_cast<double>(final_keys.size())};
  for (int k : final_keys) {
    sums[0] += k;
    sums[1] += static_cast<double>(k) * k;
  }
  comm.allreduce_sum_inplace(sums, 3);
  result.key_sum = sums[0];
  result.key_sq_sum = sums[1];
  result.total_keys = static_cast<std::int64_t>(sums[2]);
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

IsResult is_serial(const IsConfig& config) {
  IsResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = is_run(comm, config); });
  return result;
}

VerifyResult is_verify(const IsResult& got, const IsConfig& config) {
  const IsResult want = is_serial(config);
  VerifyResult v;
  std::ostringstream detail;
  v.passed = got.globally_sorted && got.total_keys == want.total_keys &&
             got.key_sum == want.key_sum && got.key_sq_sum == want.key_sq_sum;
  detail << "total " << got.total_keys << " (want " << want.total_keys
         << "), sum " << got.key_sum << " (want " << want.key_sum
         << "), sorted " << got.globally_sorted;
  v.detail = detail.str();
  return v;
}

}  // namespace npb
