#include "npb/cg.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/nas_rng.hpp"

namespace npb {
namespace {

/// Partition [0, n) across ranks; returns [begin, end) of `rank`.
std::pair<int, int> row_range(int n, int size, int rank) {
  const int base = n / size;
  const int extra = n % size;
  const int begin = rank * base + std::min(rank, extra);
  const int end = begin + base + (rank < extra ? 1 : 0);
  return {begin, end};
}

/// Local rows of q = A p (p is the full vector).
void sparse_matvec(const SparseMatrix& a, int row_begin, int row_end,
                   const std::vector<double>& p, std::vector<double>* q) {
  TEMPEST_FUNCTION();
  for (int i = row_begin; i < row_end; ++i) {
    double acc = 0.0;
    for (int k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++k) {
      acc += a.val[static_cast<std::size_t>(k)] *
             p[static_cast<std::size_t>(a.col[static_cast<std::size_t>(k)])];
    }
    (*q)[static_cast<std::size_t>(i - row_begin)] = acc;
  }
}

double dot_local(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// One inner CG solve: z ~= A^-1 x, returns ||x - A z||.
double conj_grad(minimpi::Comm& comm, const SparseMatrix& a, int row_begin,
                 int row_end, const std::vector<double>& x_full,
                 std::vector<double>* z_local, int inner_iters,
                 std::vector<double>* scratch_full) {
  TEMPEST_FUNCTION();
  const std::size_t local_n = static_cast<std::size_t>(row_end - row_begin);
  std::vector<double> r(x_full.begin() + row_begin, x_full.begin() + row_end);
  std::vector<double> p_local(r);
  std::vector<double> q(local_n);
  z_local->assign(local_n, 0.0);

  // Full-length gather buffer; ranks may own unequal counts, so gather
  // via allreduce of a zero-padded vector (simple and adequate at this n).
  auto gather_full = [&](const std::vector<double>& local, std::vector<double>* full) {
    std::fill(full->begin(), full->end(), 0.0);
    std::copy(local.begin(), local.end(), full->begin() + row_begin);
    comm.allreduce_sum_inplace(full->data(), full->size());
  };

  double rho = dot_local(r, r);
  comm.allreduce_sum_inplace(&rho, 1);

  for (int it = 0; it < inner_iters; ++it) {
    gather_full(p_local, scratch_full);
    sparse_matvec(a, row_begin, row_end, *scratch_full, &q);
    double pq = dot_local(p_local, q);
    comm.allreduce_sum_inplace(&pq, 1);
    const double alpha = rho / pq;
    for (std::size_t i = 0; i < local_n; ++i) {
      (*z_local)[i] += alpha * p_local[i];
      r[i] -= alpha * q[i];
    }
    double rho_next = dot_local(r, r);
    comm.allreduce_sum_inplace(&rho_next, 1);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < local_n; ++i) p_local[i] = r[i] + beta * p_local[i];
  }

  // Residual ||x - A z||.
  gather_full(*z_local, scratch_full);
  sparse_matvec(a, row_begin, row_end, *scratch_full, &q);
  double res = 0.0;
  for (std::size_t i = 0; i < local_n; ++i) {
    const double d = x_full[static_cast<std::size_t>(row_begin) + i] - q[i];
    res += d * d;
  }
  comm.allreduce_sum_inplace(&res, 1);
  return std::sqrt(res);
}

}  // namespace

CgConfig CgConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {400, 7, 10, 15, 10.0};
    case ProblemClass::W: return {1400, 8, 15, 25, 12.0};
    case ProblemClass::A: return {3000, 11, 15, 25, 20.0};
  }
  return {};
}

SparseMatrix cg_makea(const CgConfig& config) {
  TEMPEST_FUNCTION();
  const int n = config.n;
  // Symmetric pattern via map of (i,j) -> value, j > i.
  std::map<std::pair<int, int>, double> upper;
  double seed = kNasSeed;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < config.row_nonzeros; ++k) {
      const int j = static_cast<int>(randlc(&seed, kNasMult) * n);
      const double v = randlc(&seed, kNasMult) - 0.5;
      if (j == i || j >= n) continue;
      const auto key = std::minmax(i, j);
      upper[{key.first, key.second}] += v;
    }
  }
  // Assemble CSR with a dominant diagonal (SPD by Gershgorin).
  std::vector<std::vector<std::pair<int, double>>> rows(static_cast<std::size_t>(n));
  std::vector<double> offdiag_sum(static_cast<std::size_t>(n), 0.0);
  for (const auto& [key, v] : upper) {
    rows[static_cast<std::size_t>(key.first)].push_back({key.second, v});
    rows[static_cast<std::size_t>(key.second)].push_back({key.first, v});
    offdiag_sum[static_cast<std::size_t>(key.first)] += std::fabs(v);
    offdiag_sum[static_cast<std::size_t>(key.second)] += std::fabs(v);
  }
  SparseMatrix a;
  a.n = n;
  a.row_ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    row.push_back({i, offdiag_sum[static_cast<std::size_t>(i)] + config.shift});
    std::sort(row.begin(), row.end());
    for (const auto& [j, v] : row) {
      a.col.push_back(j);
      a.val.push_back(v);
    }
    a.row_ptr.push_back(static_cast<int>(a.col.size()));
  }
  return a;
}

CgResult cg_run(minimpi::Comm& comm, const CgConfig& config) {
  TEMPEST_FUNCTION();
  const double t0 = comm.wtime();
  const SparseMatrix a = cg_makea(config);
  const auto [row_begin, row_end] = row_range(config.n, comm.size(), comm.rank());

  std::vector<double> x_full(static_cast<std::size_t>(config.n), 1.0);
  std::vector<double> z_local;
  std::vector<double> scratch(static_cast<std::size_t>(config.n));

  CgResult result;
  for (int it = 0; it < config.outer_iters; ++it) {
    StretchScope stretch(comm);
    result.final_rnorm = conj_grad(comm, a, row_begin, row_end, x_full, &z_local,
                                   config.inner_iters, &scratch);
    // zeta = shift + 1 / (x . z); then x = z / ||z||.
    double xz = 0.0, zz = 0.0;
    for (std::size_t i = 0; i < z_local.size(); ++i) {
      xz += x_full[static_cast<std::size_t>(row_begin) + i] * z_local[i];
      zz += z_local[i] * z_local[i];
    }
    double sums[2] = {xz, zz};
    comm.allreduce_sum_inplace(sums, 2);
    result.zeta = config.shift + 1.0 / sums[0];
    const double inv_norm = 1.0 / std::sqrt(sums[1]);
    std::fill(scratch.begin(), scratch.end(), 0.0);
    for (std::size_t i = 0; i < z_local.size(); ++i) {
      scratch[static_cast<std::size_t>(row_begin) + i] = z_local[i] * inv_norm;
    }
    comm.allreduce_sum_inplace(scratch.data(), scratch.size());
    x_full = scratch;
  }
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

CgResult cg_serial(const CgConfig& config) {
  CgResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = cg_run(comm, config); });
  return result;
}

VerifyResult cg_verify(const CgResult& got, const CgConfig& config) {
  const CgResult want = cg_serial(config);
  VerifyResult v;
  std::ostringstream detail;
  v.passed = close_rel(got.zeta, want.zeta, 1e-8);
  detail << "zeta " << got.zeta << " vs serial " << want.zeta << " (rnorm "
         << got.final_rnorm << ")";
  v.detail = detail.str();
  return v;
}

}  // namespace npb
