// MG: the NAS multigrid benchmark (scaled).
//
// V-cycle multigrid on the 3-D Poisson problem with periodic
// boundaries, using the reference code's 27-point operator classes:
// resid (r = v - A u), psinv (the smoother), rprj3 (full-weighting
// restriction), interp (trilinear prolongation), norm2u3 (global
// norms), comm3 (ghost exchange — periodic in x/y locally, across
// ranks in the z decomposition). The nearest-neighbour z exchanges at
// every level give MG its characteristic mixed compute/communication
// phase pattern.
#pragma once

#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct MgConfig {
  int n = 32;       ///< finest grid edge (power of two; np must divide n)
  int niter = 4;
  int nlevels = 3;  ///< grid levels (coarsest keeps >= 1 plane per rank)
  static MgConfig for_class(ProblemClass c);
};

struct MgResult {
  std::vector<double> rnorms;  ///< residual L2 norm per iteration
  double elapsed_s = 0.0;
};

MgResult mg_run(minimpi::Comm& comm, const MgConfig& config);
MgResult mg_serial(const MgConfig& config);
VerifyResult mg_verify(const MgResult& got, const MgConfig& config);

}  // namespace npb
