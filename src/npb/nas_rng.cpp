#include "npb/nas_rng.hpp"

namespace npb {
namespace {

constexpr double r23 = 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 *
                       0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5;
constexpr double t23 = 1.0 / r23;
constexpr double r46 = r23 * r23;
constexpr double t46 = t23 * t23;

}  // namespace

double randlc(double* x, double a) {
  // Split a and x into high/low 23-bit halves; form the 46-bit product
  // modulo 2^46 without ever losing precision.
  const double t1a = r23 * a;
  const double a1 = static_cast<double>(static_cast<long long>(t1a));
  const double a2 = a - t23 * a1;

  const double t1x = r23 * (*x);
  const double x1 = static_cast<double>(static_cast<long long>(t1x));
  const double x2 = *x - t23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<long long>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<long long>(r46 * t3));
  *x = t3 - t46 * t4;
  return r46 * (*x);
}

void vranlc(int n, double* x, double a, double* y) {
  for (int i = 0; i < n; ++i) y[i] = randlc(x, a);
}

double randlc_jump(double a, std::uint64_t exponent) {
  // Repeated squaring in the same 46-bit arithmetic: randlc(&t, t)
  // squares t (mod 2^46); randlc(&result, t) multiplies result by t.
  double result = 1.0;
  double t = a;
  while (exponent > 0) {
    if (exponent & 1) (void)randlc(&result, t);
    double sq = t;
    (void)randlc(&sq, t);
    t = sq;
    exponent >>= 1;
  }
  return result;
}

double seed_after(double seed, double a, std::uint64_t steps) {
  const double jump = randlc_jump(a, steps);
  double x = seed;
  (void)randlc(&x, jump);
  return x;
}

}  // namespace npb
