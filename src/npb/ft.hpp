// FT: the NAS 3-D FFT benchmark (scaled).
//
// Solves the model PDE spectrally: random initial state, one forward
// 3-D FFT, then per iteration an evolve (multiply by Gaussian decay
// factors in frequency space), an inverse 3-D FFT, and a checksum over
// a fixed index stride. The grid is slab-decomposed: x/y line FFTs are
// local to a z-slab; the z-direction FFT requires the global transpose
// — the all-to-all that makes FT the paper's example of a
// communication-bound (and therefore cool-running) code.
#pragma once

#include <complex>
#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct FtConfig {
  int nx = 32, ny = 32, nz = 32;  ///< powers of two; np must divide nx and nz
  int niter = 6;
  static FtConfig for_class(ProblemClass c);
};

struct FtResult {
  std::vector<std::complex<double>> checksums;  ///< one per iteration
  double elapsed_s = 0.0;
};

FtResult ft_run(minimpi::Comm& comm, const FtConfig& config);
FtResult ft_serial(const FtConfig& config);
VerifyResult ft_verify(const FtResult& got, const FtConfig& config);

/// In-place radix-2 complex FFT; `sign` -1 forward / +1 inverse (no
/// normalisation; FT's evolve/checksum account for scale as NAS does).
void fft1d(std::complex<double>* data, int n, int sign);

}  // namespace npb
