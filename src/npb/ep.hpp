// EP: the embarrassingly-parallel NAS benchmark.
//
// Generates 2^M pairs of uniform deviates with the NAS LCG, converts
// accepted pairs to Gaussian deviates (Marsaglia polar method as in the
// reference code), accumulates the sums and the square-annulus counts,
// and combines with one allreduce at the end. Each rank jumps the
// random stream directly to its segment, so the parallel result is
// bit-identical to the serial reference — EP's exact verification.
#pragma once

#include <array>
#include <cstdint>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct EpConfig {
  int log2_pairs = 18;  ///< 2^log2_pairs Gaussian pair attempts
  static EpConfig for_class(ProblemClass c);
};

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::array<std::int64_t, 10> counts{};
  std::int64_t accepted = 0;
  double elapsed_s = 0.0;
};

/// Parallel run across the communicator's ranks.
EpResult ep_run(minimpi::Comm& comm, const EpConfig& config);

/// Single-threaded reference (same stream, one segment).
EpResult ep_serial(const EpConfig& config);

/// Exactness check of a parallel result against the serial reference.
VerifyResult ep_verify(const EpResult& got, const EpConfig& config);

}  // namespace npb
