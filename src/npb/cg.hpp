// CG: conjugate-gradient NAS benchmark (scaled).
//
// Estimates the largest eigenvalue of a sparse symmetric positive-
// definite matrix by inverse power iteration, each outer step solving
// (A - shift I)-free system A z = x with `inner_iters` CG iterations.
// The matrix is generated deterministically from the NAS LCG (a
// simplified makea: banded random pattern symmetrised, with a dominant
// diagonal — same irregular-access character, far less code than the
// reference's sparse assembly). Rows are block-partitioned; the matvec
// allgathers the full vector; dot products allreduce — CG's
// characteristic latency-bound communication.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct CgConfig {
  int n = 1400;          ///< matrix order
  int row_nonzeros = 7;  ///< off-diagonal nonzeros per row (pre-symmetry)
  int outer_iters = 15;
  int inner_iters = 25;
  double shift = 10.0;   ///< NAS lambda shift in the zeta estimate
  static CgConfig for_class(ProblemClass c);
};

struct CgResult {
  double zeta = 0.0;
  double final_rnorm = 0.0;  ///< ||r|| of the last inner solve
  double elapsed_s = 0.0;
};

/// Deterministic sparse SPD matrix in CSR (shared by all ranks; order
/// is small enough that replication matches NAS's replicated makea
/// metadata while rows are still computed in parallel).
struct SparseMatrix {
  int n = 0;
  std::vector<int> row_ptr;
  std::vector<int> col;
  std::vector<double> val;
};

SparseMatrix cg_makea(const CgConfig& config);

CgResult cg_run(minimpi::Comm& comm, const CgConfig& config);
CgResult cg_serial(const CgConfig& config);
VerifyResult cg_verify(const CgResult& got, const CgConfig& config);

}  // namespace npb
