#include "npb/mg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/nas_rng.hpp"

namespace npb {
namespace {

constexpr int kZTagDown = 201;
constexpr int kZTagUp = 202;

// NAS MG stencil coefficients by neighbour class (centre, face, edge,
// corner): A is the Poisson-like operator, S the smoother.
constexpr double kA[4] = {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
constexpr double kS[4] = {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};

/// One grid level, z-decomposed, with one ghost shell on every side
/// (x/y ghosts are periodic wraps handled locally; z ghosts cross
/// ranks).
struct Level {
  int n = 0;    ///< global edge length
  int nzl = 0;  ///< owned z planes
  std::vector<double> u, v, r;

  std::size_t idx(int i, int j, int k) const {
    return ((static_cast<std::size_t>(k + 1) * (n + 2)) + (j + 1)) *
               static_cast<std::size_t>(n + 2) +
           static_cast<std::size_t>(i + 1);
  }
  std::size_t cells() const {
    return static_cast<std::size_t>(nzl + 2) * (n + 2) * (n + 2);
  }
};

struct MgState {
  MgConfig c;
  int np = 1, rank = 0;
  std::vector<Level> levels;  ///< [0] finest
};

/// Ghost exchange on one field of a level: periodic x/y locally,
/// periodic z via neighbour ranks (self-wrap when np == 1).
void comm3(minimpi::Comm& comm, Level* lv, std::vector<double>* field) {
  TEMPEST_FUNCTION();
  const int n = lv->n;
  auto& f = *field;
  // x wrap (local: x is not decomposed).
  for (int k = 0; k < lv->nzl; ++k) {
    for (int j = 0; j < n; ++j) {
      f[lv->idx(-1, j, k)] = f[lv->idx(n - 1, j, k)];
      f[lv->idx(n, j, k)] = f[lv->idx(0, j, k)];
    }
  }
  // y wrap, including x ghosts just filled.
  for (int k = 0; k < lv->nzl; ++k) {
    for (int i = -1; i <= n; ++i) {
      f[lv->idx(i, -1, k)] = f[lv->idx(i, n - 1, k)];
      f[lv->idx(i, n, k)] = f[lv->idx(i, 0, k)];
    }
  }
  // z exchange across ranks (periodic ring).
  const int np = comm.size();
  const std::size_t plane = static_cast<std::size_t>(n + 2) * (n + 2);
  const int up = (comm.rank() + 1) % np;
  const int down = (comm.rank() + np - 1) % np;
  if (np == 1) {
    std::copy_n(&f[lv->idx(-1, -1, lv->nzl - 1)], plane, &f[lv->idx(-1, -1, -1)]);
    std::copy_n(&f[lv->idx(-1, -1, 0)], plane, &f[lv->idx(-1, -1, lv->nzl)]);
    return;
  }
  std::vector<double> buf(plane);
  comm.send(up, kZTagUp, &f[lv->idx(-1, -1, lv->nzl - 1)], plane * sizeof(double));
  comm.recv(down, kZTagUp, buf.data(), plane * sizeof(double));
  std::copy(buf.begin(), buf.end(), f.begin() + static_cast<std::ptrdiff_t>(lv->idx(-1, -1, -1)));
  comm.send(down, kZTagDown, &f[lv->idx(-1, -1, 0)], plane * sizeof(double));
  comm.recv(up, kZTagDown, buf.data(), plane * sizeof(double));
  std::copy(buf.begin(), buf.end(), f.begin() + static_cast<std::ptrdiff_t>(lv->idx(-1, -1, lv->nzl)));
}

/// Apply a 27-point class stencil: out = in2 - stencil(in1) when
/// `residual`, else out += stencil(in1) (smoother update).
template <bool kResidual>
void apply_stencil(const double coeff[4], Level* lv, const std::vector<double>& in1,
                   const std::vector<double>* in2, std::vector<double>* out) {
  const int n = lv->n;
  for (int k = 0; k < lv->nzl; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double face = 0.0, edge = 0.0, corner = 0.0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              const int cls = std::abs(di) + std::abs(dj) + std::abs(dk);
              if (cls == 0) continue;
              const double val = in1[lv->idx(i + di, j + dj, k + dk)];
              if (cls == 1) {
                face += val;
              } else if (cls == 2) {
                edge += val;
              } else {
                corner += val;
              }
            }
          }
        }
        const double stencil = coeff[0] * in1[lv->idx(i, j, k)] + coeff[1] * face +
                               coeff[2] * edge + coeff[3] * corner;
        if constexpr (kResidual) {
          (*out)[lv->idx(i, j, k)] = (*in2)[lv->idx(i, j, k)] - stencil;
        } else {
          (*out)[lv->idx(i, j, k)] += stencil;
        }
      }
    }
  }
}

/// r = v - A u
void resid(minimpi::Comm& comm, Level* lv) {
  TEMPEST_FUNCTION();
  comm3(comm, lv, &lv->u);
  apply_stencil<true>(kA, lv, lv->u, &lv->v, &lv->r);
  comm3(comm, lv, &lv->r);
}

/// u += S r  (one smoothing application)
void psinv(minimpi::Comm& comm, Level* lv) {
  TEMPEST_FUNCTION();
  comm3(comm, lv, &lv->r);
  apply_stencil<false>(kS, lv, lv->r, nullptr, &lv->u);
  comm3(comm, lv, &lv->u);
}

/// Full-weighting restriction of the fine residual to the coarse v.
void rprj3(minimpi::Comm& comm, Level* fine, Level* coarse) {
  TEMPEST_FUNCTION();
  comm3(comm, fine, &fine->r);
  const int nc = coarse->n;
  // Weights by distance class from the coarse point (NAS full weighting).
  const double w[4] = {1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0, 1.0 / 16.0};
  for (int k = 0; k < coarse->nzl; ++k) {
    for (int j = 0; j < nc; ++j) {
      for (int i = 0; i < nc; ++i) {
        double acc = 0.0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              const int cls = std::abs(di) + std::abs(dj) + std::abs(dk);
              acc += w[cls] * fine->r[fine->idx(2 * i + di, 2 * j + dj, 2 * k + dk)];
            }
          }
        }
        coarse->v[coarse->idx(i, j, k)] = acc;
      }
    }
  }
}

/// Trilinear prolongation: u_fine += P(u_coarse).
void interp(minimpi::Comm& comm, Level* coarse, Level* fine) {
  TEMPEST_FUNCTION();
  comm3(comm, coarse, &coarse->u);
  const int nc = coarse->n;
  for (int k = 0; k < coarse->nzl; ++k) {
    for (int j = 0; j < nc; ++j) {
      for (int i = 0; i < nc; ++i) {
        // Each coarse cell contributes to the 2x2x2 fine cells whose
        // trilinear weights reference it and its +1 neighbours.
        for (int dk = 0; dk <= 1; ++dk) {
          for (int dj = 0; dj <= 1; ++dj) {
            for (int di = 0; di <= 1; ++di) {
              double acc = 0.0;
              for (int ck = 0; ck <= dk; ++ck) {
                for (int cj = 0; cj <= dj; ++cj) {
                  for (int ci = 0; ci <= di; ++ci) {
                    acc += coarse->u[coarse->idx(i + ci, j + cj, k + ck)];
                  }
                }
              }
              const double weight =
                  1.0 / ((di + 1.0) * (dj + 1.0) * (dk + 1.0));
              fine->u[fine->idx(2 * i + di, 2 * j + dj, 2 * k + dk)] += weight * acc;
            }
          }
        }
      }
    }
  }
}

/// Global L2 norm of the residual.
double norm2u3(minimpi::Comm& comm, const Level& lv) {
  TEMPEST_FUNCTION();
  double acc = 0.0;
  for (int k = 0; k < lv.nzl; ++k) {
    for (int j = 0; j < lv.n; ++j) {
      for (int i = 0; i < lv.n; ++i) {
        const double v = lv.r[lv.idx(i, j, k)];
        acc += v * v;
      }
    }
  }
  comm.allreduce_sum_inplace(&acc, 1);
  const double total = static_cast<double>(lv.n) * lv.n * lv.n;
  return std::sqrt(acc / total);
}

/// One V-cycle.
void mg3p(minimpi::Comm& comm, MgState* st) {
  TEMPEST_FUNCTION();
  auto& levels = st->levels;
  const std::size_t depth = levels.size();
  // Down: restrict residuals to the coarsest level.
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    rprj3(comm, &levels[l], &levels[l + 1]);
    if (l + 1 < depth - 1) {
      // Residual on the coarser level starts as v (zero initial guess).
      levels[l + 1].u.assign(levels[l + 1].cells(), 0.0);
      levels[l + 1].r = levels[l + 1].v;
    }
  }
  // Coarsest: smooth from a zero guess.
  Level& coarsest = levels[depth - 1];
  coarsest.u.assign(coarsest.cells(), 0.0);
  coarsest.r = coarsest.v;
  psinv(comm, &coarsest);
  // Up: interpolate the correction and post-smooth.
  for (std::size_t l = depth - 1; l-- > 0;) {
    if (l > 0) {
      levels[l].u.assign(levels[l].cells(), 0.0);
    }
    interp(comm, &levels[l + 1], &levels[l]);
    resid(comm, &levels[l]);
    psinv(comm, &levels[l]);
  }
}

/// NAS-style charge placement: 10 cells at +1 and 10 at -1, chosen from
/// the NAS LCG stream, identical for every rank count.
void zero3_and_zran3(MgState* st, minimpi::Comm& comm) {
  TEMPEST_FUNCTION();
  Level& top = st->levels[0];
  top.v.assign(top.cells(), 0.0);
  const int n = top.n;
  const int z0 = comm.rank() * top.nzl;
  double seed = kNasSeed;
  for (int q = 0; q < 20; ++q) {
    const int i = static_cast<int>(randlc(&seed, kNasMult) * n);
    const int j = static_cast<int>(randlc(&seed, kNasMult) * n);
    const int k = static_cast<int>(randlc(&seed, kNasMult) * n);
    if (k >= z0 && k < z0 + top.nzl) {
      top.v[top.idx(i, j, k - z0)] = (q < 10) ? -1.0 : 1.0;
    }
  }
}

}  // namespace

MgConfig MgConfig::for_class(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return {16, 4, 2};
    case ProblemClass::W: return {32, 4, 3};
    case ProblemClass::A: return {64, 4, 4};
  }
  return {};
}

MgResult mg_run(minimpi::Comm& comm, const MgConfig& config) {
  TEMPEST_FUNCTION();
  if (config.n % comm.size() != 0) {
    throw std::invalid_argument("MG: rank count must divide n");
  }
  const int coarsest_nzl = (config.n >> (config.nlevels - 1)) / comm.size();
  if (coarsest_nzl < 1) {
    throw std::invalid_argument("MG: too many levels for this rank count");
  }
  const double t0 = comm.wtime();

  MgState st;
  st.c = config;
  st.np = comm.size();
  st.rank = comm.rank();
  for (int l = 0; l < config.nlevels; ++l) {
    Level lv;
    lv.n = config.n >> l;
    lv.nzl = lv.n / comm.size();
    lv.u.assign(lv.cells(), 0.0);
    lv.v.assign(lv.cells(), 0.0);
    lv.r.assign(lv.cells(), 0.0);
    st.levels.push_back(std::move(lv));
  }

  zero3_and_zran3(&st, comm);
  resid(comm, &st.levels[0]);

  MgResult result;
  for (int it = 0; it < config.niter; ++it) {
    StretchScope stretch(comm);
    mg3p(comm, &st);
    resid(comm, &st.levels[0]);
    result.rnorms.push_back(norm2u3(comm, st.levels[0]));
  }
  result.elapsed_s = comm.wtime() - t0;
  return result;
}

MgResult mg_serial(const MgConfig& config) {
  MgResult result;
  minimpi::run(1, [&](minimpi::Comm& comm) { result = mg_run(comm, config); });
  return result;
}

VerifyResult mg_verify(const MgResult& got, const MgConfig& config) {
  const MgResult want = mg_serial(config);
  VerifyResult v;
  v.passed = got.rnorms.size() == want.rnorms.size();
  for (std::size_t i = 0; v.passed && i < got.rnorms.size(); ++i) {
    v.passed = close_rel(got.rnorms[i], want.rnorms[i], 1e-8);
  }
  if (v.passed && !got.rnorms.empty()) {
    v.passed = got.rnorms.back() < got.rnorms.front();
  }
  std::ostringstream detail;
  if (!got.rnorms.empty()) {
    detail << "rnorm " << got.rnorms.front() << " -> " << got.rnorms.back();
  }
  v.detail = detail.str();
  return v;
}

}  // namespace npb
