#include "npb/blocks5.hpp"

#include <cmath>
#include <utility>

namespace npb {

void matvec_sub5(const Mat5& a, const Vec5& x, Vec5& b) {
  for (int i = 0; i < 5; ++i) {
    double acc = 0.0;
    for (int j = 0; j < 5; ++j) acc += at(a, i, j) * x[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] -= acc;
  }
}

void matmul_sub5(const Mat5& a, const Mat5& b, Mat5& c) {
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 5; ++k) acc += at(a, i, k) * at(b, k, j);
      at(c, i, j) -= acc;
    }
  }
}

namespace {

/// Shared elimination: reduce lhs to identity, mirroring the row ops
/// into `c` (when non-null) and `r`.
void eliminate(Mat5& lhs, Mat5* c, Vec5& r) {
  for (int p = 0; p < 5; ++p) {
    int pivot = p;
    for (int i = p + 1; i < 5; ++i) {
      if (std::fabs(at(lhs, i, p)) > std::fabs(at(lhs, pivot, p))) pivot = i;
    }
    if (pivot != p) {
      for (int j = 0; j < 5; ++j) std::swap(at(lhs, p, j), at(lhs, pivot, j));
      if (c != nullptr) {
        for (int j = 0; j < 5; ++j) std::swap(at(*c, p, j), at(*c, pivot, j));
      }
      std::swap(r[static_cast<std::size_t>(p)], r[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / at(lhs, p, p);
    for (int j = p; j < 5; ++j) at(lhs, p, j) *= inv;
    if (c != nullptr) {
      for (int j = 0; j < 5; ++j) at(*c, p, j) *= inv;
    }
    r[static_cast<std::size_t>(p)] *= inv;

    for (int i = 0; i < 5; ++i) {
      if (i == p) continue;
      const double f = at(lhs, i, p);
      if (f == 0.0) continue;
      for (int j = p; j < 5; ++j) at(lhs, i, j) -= f * at(lhs, p, j);
      if (c != nullptr) {
        for (int j = 0; j < 5; ++j) at(*c, i, j) -= f * at(*c, p, j);
      }
      r[static_cast<std::size_t>(i)] -= f * r[static_cast<std::size_t>(p)];
    }
  }
}

}  // namespace

void binvcrhs5(Mat5& lhs, Mat5& c, Vec5& r) { eliminate(lhs, &c, r); }

void binvrhs5(Mat5& lhs, Vec5& r) { eliminate(lhs, nullptr, r); }

}  // namespace npb
