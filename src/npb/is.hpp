// IS: the NAS integer-sort benchmark (scaled).
//
// Sorts N uniformly-distributed integer keys per iteration with the
// reference algorithm: per-rank key generation from the NAS LCG
// (Gaussian-ish via averaged draws, as in the reference code), local
// bucketing by key range, an alltoall of bucket sizes followed by the
// alltoallv key redistribution, then a local counting sort. IS is the
// suite's memory- and communication-bound member — thermally the
// coolest of the codes Tempest profiles.
#pragma once

#include <cstdint>
#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct IsConfig {
  int log2_keys = 16;     ///< total keys per iteration (split across ranks)
  int log2_max_key = 16;  ///< keys uniform-ish in [0, 2^log2_max_key)
  int iterations = 10;    ///< rank count must divide 2^log2_keys
  static IsConfig for_class(ProblemClass c);
};

struct IsResult {
  double key_sum = 0.0;      ///< sum of all keys after the final sort
  double key_sq_sum = 0.0;   ///< sum of squared keys (partition-independent)
  std::int64_t total_keys = 0;
  bool globally_sorted = true;  ///< per-rank sorted + rank ranges ascending
  double elapsed_s = 0.0;
};

IsResult is_run(minimpi::Comm& comm, const IsConfig& config);
IsResult is_serial(const IsConfig& config);
VerifyResult is_verify(const IsResult& got, const IsConfig& config);

}  // namespace npb
