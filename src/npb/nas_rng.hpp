// The NAS Parallel Benchmarks pseudo-random number generator.
//
// Linear congruential x_{k+1} = a * x_k mod 2^46, evaluated in double
// precision exactly as the reference implementation does (splitting
// operands into 23-bit halves so no product exceeds 2^46). randlc
// advances one step; vranlc fills a vector; randlc_jump computes
// a^exponent mod 2^46 so each rank can leap directly to its segment of
// the stream — the mechanism EP uses to parallelise deterministically.
#pragma once

#include <cstdint>

namespace npb {

inline constexpr double kNasSeed = 314159265.0;
inline constexpr double kNasMult = 1220703125.0;

/// Advance *x one LCG step with multiplier a; returns x / 2^46 in (0,1).
double randlc(double* x, double a);

/// Fill y[0..n) with successive uniforms, advancing *x n steps.
void vranlc(int n, double* x, double a, double* y);

/// a^exponent mod 2^46 (as a double-coded 46-bit integer), by repeated
/// squaring through randlc. exponent >= 0.
double randlc_jump(double a, std::uint64_t exponent);

/// Seed after `steps` LCG steps from `seed` with multiplier `a`.
double seed_after(double seed, double a, std::uint64_t steps);

}  // namespace npb
