#include "npb/support.hpp"

#include <cmath>

#include "common/tsc.hpp"

namespace npb {

const char* class_name(ProblemClass c) {
  switch (c) {
    case ProblemClass::S: return "S";
    case ProblemClass::W: return "W";
    case ProblemClass::A: return "A";
  }
  return "?";
}

bool close_rel(double got, double want, double epsilon) {
  const double denom = std::fabs(want) > 1e-300 ? std::fabs(want) : 1.0;
  return std::fabs(got - want) / denom <= epsilon;
}

void stretch_compute(minimpi::Comm& comm, double elapsed_s) {
  auto& placement = comm.world().placement(comm.rank());
  if (placement.node == nullptr || elapsed_s <= 0.0) return;
  const double speed = placement.node->speed_factor();
  if (speed >= 0.999) return;
  const double extra = elapsed_s * (1.0 / speed - 1.0);
  const std::uint64_t until = tempest::rdtsc() + tempest::seconds_to_tsc(extra);
  volatile std::uint64_t sink = 0;
  while (tempest::rdtsc() < until) {
    sink = sink * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}

StretchScope::StretchScope(minimpi::Comm& comm)
    : comm_(comm), start_s_(comm.wtime()) {}

StretchScope::~StretchScope() { stretch_compute(comm_, comm_.wtime() - start_s_); }

}  // namespace npb
