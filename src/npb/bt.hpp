// BT: the NAS block-tridiagonal ADI benchmark (scaled, faithful in
// structure).
//
// Solves an implicit 3-D diffusion system with a 5-component state and
// cell-dependent 5x5 coupling blocks using Alternating Direction
// Implicit sweeps: per iteration compute_rhs (with ghost exchange),
// x_solve / y_solve (local block-Thomas line solves), z_solve (the
// cross-rank pipelined sweep — BT's characteristic synchronised
// communication), then add. The per-cell kernels carry the reference
// code's names (matvec_sub, matmul_sub, binvcrhs, binvrhs) and appear
// in Tempest profiles exactly as in the paper's Table 3.
//
// Simplification vs the reference: the physics is a diffusion model
// problem with a manufactured exact solution rather than Navier-Stokes;
// the computational structure (block construction, 5x5 elimination,
// ADI sweep order, z-pipeline) is preserved, which is what thermal
// profiling observes. Verification: the discrete solution converges to
// the manufactured solution and the residual norm decreases.
#pragma once

#include <vector>

#include "minimpi/comm.hpp"
#include "npb/support.hpp"

namespace npb {

struct BtConfig {
  int nx = 16, ny = 16, nz = 16;  ///< np must divide nz
  int niter = 8;
  double dt = 0.01;
  /// Trace the per-cell 5x5 kernels (matvec_sub & co.) as Tempest
  /// regions. Authentic to the reference code's call structure and
  /// needed for the Table 3 profile, but those functions have "very
  /// short life spans invoked repeatedly" (§3.3) — long figure-length
  /// runs disable this to keep the event volume bounded, and the
  /// ablation bench measures its cost.
  bool kernel_events = true;
  static BtConfig for_class(ProblemClass c);
};

struct BtResult {
  std::vector<double> rhs_norms;  ///< residual norm per iteration
  double final_error = 0.0;       ///< ||u - u_exact|| at the end
  double elapsed_s = 0.0;
};

BtResult bt_run(minimpi::Comm& comm, const BtConfig& config);
BtResult bt_serial(const BtConfig& config);
VerifyResult bt_verify(const BtResult& got, const BtConfig& config);

}  // namespace npb
