// Collector wire protocol: framing and payload codecs.
//
// A recording session streams to tempest-collectd as a sequence of
// length-prefixed frames over a byte stream (Unix-domain socket or
// TCP). Every frame is
//
//   magic    "TC"  (2 bytes — catches strangers connecting to the port)
//   type     u8    (FrameType below)
//   flags    u8    (reserved, 0)
//   length   u32   payload bytes, little-endian
//   payload  length bytes
//
// Payloads reuse the trace-v2 packed record layout (trace/codec.hpp),
// so the collector unpacks sections with the same SIMD converters the
// file reader uses. A session's frame order is
//
//   HELLO, HEARTBEAT*, META, SYNCS?, EVENTS*, SAMPLES*, BYE
//
// — heartbeats stream live during the run at the configured cadence;
// the bulk sections ship once the trace is sealed at session stop
// (buffers drain at stop, so that is when events exist to ship). META
// is a full metadata-only trace-v2 image including the RUNSTATS and
// FLTR trailers, sent BEFORE any bulk section: the collector's
// AnalysisPipeline needs final thread/synthetic-symbol metadata to
// start folding, and re-sending metadata would reset the fold.
//
// DESIGN.md §14 documents the protocol and the collector's shard/fold,
// backpressure and disconnect semantics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace tempest::collectd {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< protocol u32, pid u64, sender name (rest)
  kMeta = 2,       ///< metadata-only trace-v2 image (incl. trailers)
  kHeartbeat = 3,  ///< one heartbeat JSONL line, no trailing newline
  kSyncs = 4,      ///< packed ClockSync records
  kEvents = 5,     ///< packed FnEvent records
  kSamples = 6,    ///< packed TempSample records
  kBye = 7,        ///< events_sent u64, samples_sent u64
};

inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr char kFrameMagic0 = 'T';
inline constexpr char kFrameMagic1 = 'C';

/// Hard ceiling a collector will accept for one frame payload; senders
/// chunk bulk sections well below it (kEventsPerFrame).
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{8} << 20;

/// Bulk records per EVENTS/SAMPLES/SYNCS frame (~1.4 MiB of events —
/// the same granularity as the analysis pipeline's default batch).
inline constexpr std::size_t kRecordsPerFrame = std::size_t{1} << 16;

void encode_frame_header(char out[kFrameHeaderBytes], FrameType type,
                         std::uint32_t payload_len);

enum class HeaderParse { kOk, kBadMagic, kBadType };
HeaderParse decode_frame_header(const char* in, FrameType* type,
                                std::uint32_t* payload_len);

// -- payload codecs ----------------------------------------------------

struct Hello {
  std::uint32_t protocol = kProtocolVersion;
  std::uint64_t pid = 0;
  std::string name;
};
std::string pack_hello(const Hello& hello);
bool unpack_hello(std::string_view payload, Hello* out);

struct Bye {
  std::uint64_t events_sent = 0;
  std::uint64_t samples_sent = 0;
};
std::string pack_bye(const Bye& bye);
bool unpack_bye(std::string_view payload, Bye* out);

std::string pack_fn_events(const trace::FnEvent* events, std::size_t n);
std::string pack_temp_samples(const trace::TempSample* samples, std::size_t n);
std::string pack_clock_syncs(const trace::ClockSync* syncs, std::size_t n);

/// Append the payload's records to *out. False on a malformed payload
/// (length not a record multiple, or an invalid event kind byte).
bool unpack_fn_events(std::string_view payload, std::vector<trace::FnEvent>* out);
bool unpack_temp_samples(std::string_view payload,
                         std::vector<trace::TempSample>* out);
bool unpack_clock_syncs(std::string_view payload,
                        std::vector<trace::ClockSync>* out);

/// Serialise `header` as a metadata-only trace-v2 image (empty bulk
/// sections, RUNSTATS/FLTR trailers included when present).
std::string pack_meta(const trace::TraceHeader& header);
/// Parse a META payload back into a (bulk-empty) trace.
bool unpack_meta(std::string_view payload, trace::Trace* out);

/// Scan a flat heartbeat-schema JSON line for `"key":number`. Returns
/// `fallback` when the key is absent or malformed — absence-tolerant by
/// design (older senders lack "seq"/"schema_version").
double json_number(std::string_view line, std::string_view key, double fallback);

}  // namespace tempest::collectd
