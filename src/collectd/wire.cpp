#include "collectd/wire.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "trace/codec.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"

namespace tempest::collectd {
namespace {

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

template <typename Record>
std::string pack_records(const Record* src, std::size_t n, std::uint32_t record_size,
                         void (*pack)(const Record*, std::size_t, char*)) {
  std::string out;
  out.resize(n * record_size);
  if (n > 0) pack(src, n, out.data());
  return out;
}

}  // namespace

void encode_frame_header(char out[kFrameHeaderBytes], FrameType type,
                         std::uint32_t payload_len) {
  out[0] = kFrameMagic0;
  out[1] = kFrameMagic1;
  out[2] = static_cast<char>(type);
  out[3] = 0;  // flags
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<char>((payload_len >> (8 * i)) & 0xFF);
  }
}

HeaderParse decode_frame_header(const char* in, FrameType* type,
                                std::uint32_t* payload_len) {
  if (in[0] != kFrameMagic0 || in[1] != kFrameMagic1) return HeaderParse::kBadMagic;
  const auto t = static_cast<unsigned char>(in[2]);
  if (t < static_cast<unsigned char>(FrameType::kHello) ||
      t > static_cast<unsigned char>(FrameType::kBye)) {
    return HeaderParse::kBadType;
  }
  *type = static_cast<FrameType>(t);
  *payload_len = get_u32(in + 4);
  return HeaderParse::kOk;
}

std::string pack_hello(const Hello& hello) {
  std::string out;
  out.reserve(12 + hello.name.size());
  put_u32(&out, hello.protocol);
  put_u64(&out, hello.pid);
  out += hello.name;
  return out;
}

bool unpack_hello(std::string_view payload, Hello* out) {
  if (payload.size() < 12) return false;
  out->protocol = get_u32(payload.data());
  out->pid = get_u64(payload.data() + 4);
  out->name.assign(payload.data() + 12, payload.size() - 12);
  return true;
}

std::string pack_bye(const Bye& bye) {
  std::string out;
  out.reserve(16);
  put_u64(&out, bye.events_sent);
  put_u64(&out, bye.samples_sent);
  return out;
}

bool unpack_bye(std::string_view payload, Bye* out) {
  if (payload.size() != 16) return false;
  out->events_sent = get_u64(payload.data());
  out->samples_sent = get_u64(payload.data() + 8);
  return true;
}

std::string pack_fn_events(const trace::FnEvent* events, std::size_t n) {
  return pack_records(events, n, trace::kFnEventRecordSize,
                      &trace::codec::pack_fn_events);
}

std::string pack_temp_samples(const trace::TempSample* samples, std::size_t n) {
  return pack_records(samples, n, trace::kTempSampleRecordSize,
                      &trace::codec::pack_temp_samples);
}

std::string pack_clock_syncs(const trace::ClockSync* syncs, std::size_t n) {
  return pack_records(syncs, n, trace::kClockSyncRecordSize,
                      &trace::codec::pack_clock_syncs);
}

bool unpack_fn_events(std::string_view payload, std::vector<trace::FnEvent>* out) {
  if (payload.size() % trace::kFnEventRecordSize != 0) return false;
  const std::size_t n = payload.size() / trace::kFnEventRecordSize;
  const std::size_t base = out->size();
  out->resize(base + n);
  if (n == 0) return true;
  if (!trace::codec::unpack_fn_events(payload.data(), n, out->data() + base)) {
    out->resize(base);
    return false;
  }
  return true;
}

bool unpack_temp_samples(std::string_view payload,
                         std::vector<trace::TempSample>* out) {
  if (payload.size() % trace::kTempSampleRecordSize != 0) return false;
  const std::size_t n = payload.size() / trace::kTempSampleRecordSize;
  const std::size_t base = out->size();
  out->resize(base + n);
  if (n > 0) trace::codec::unpack_temp_samples(payload.data(), n, out->data() + base);
  return true;
}

bool unpack_clock_syncs(std::string_view payload,
                        std::vector<trace::ClockSync>* out) {
  if (payload.size() % trace::kClockSyncRecordSize != 0) return false;
  const std::size_t n = payload.size() / trace::kClockSyncRecordSize;
  const std::size_t base = out->size();
  out->resize(base + n);
  if (n > 0) trace::codec::unpack_clock_syncs(payload.data(), n, out->data() + base);
  return true;
}

std::string pack_meta(const trace::TraceHeader& header) {
  trace::Trace meta_only;
  static_cast<trace::TraceHeader&>(meta_only) = header;
  std::ostringstream out;
  if (!trace::write_trace(out, meta_only).is_ok()) return {};
  return std::move(out).str();
}

bool unpack_meta(std::string_view payload, trace::Trace* out) {
  std::istringstream in{std::string(payload)};
  auto parsed = trace::read_trace(in);
  if (!parsed.is_ok()) return false;
  *out = std::move(parsed).value();
  return true;
}

double json_number(std::string_view line, std::string_view key, double fallback) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return fallback;
  const std::size_t start = pos + needle.size();
  if (start >= line.size()) return fallback;
  // strtod needs a NUL-terminated buffer; numbers are short.
  char buf[64];
  std::size_t n = 0;
  while (start + n < line.size() && n < sizeof(buf) - 1) {
    const char c = line[start + n];
    if ((c < '0' || c > '9') && c != '-' && c != '+' && c != '.' && c != 'e' &&
        c != 'E') {
      break;
    }
    buf[n] = c;
    ++n;
  }
  buf[n] = '\0';
  if (n == 0) return fallback;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  return end == buf ? fallback : v;
}

}  // namespace tempest::collectd
