#include "collectd/client.hpp"

#include <unistd.h>

#include "collectd/net.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::collectd {

Status CollectClient::connect(const std::string& spec, double timeout_s) {
  Endpoint ep;
  if (!parse_endpoint(spec, &ep)) {
    return Status::error("malformed TEMPEST_COLLECT endpoint: " + spec);
  }
  auto fd = connect_endpoint(ep, timeout_s);
  if (!fd.is_ok()) return fd.status();
  const std::lock_guard<std::mutex> lock(mu_);
  fd_.store(fd.value(), std::memory_order_release);
  return Status::ok();
}

void CollectClient::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void CollectClient::send_frame(FrameType type, std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return;
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, static_cast<std::uint32_t>(payload.size()));
  Status sent = send_all(fd, header, sizeof(header));
  if (sent.is_ok() && !payload.empty()) {
    sent = send_all(fd, payload.data(), payload.size());
  }
  if (!sent.is_ok()) {
    // Dead collector: one warning, then every later send no-ops. The
    // session keeps recording to its local file.
    telemetry::count(telemetry::Counter::kStreamSendFailures);
    telemetry::log_warn("collect", "stream send failed (" + sent.message() +
                                       "); continuing file-only");
    fd_.store(-1, std::memory_order_release);
    ::close(fd);
    return;
  }
  telemetry::count(telemetry::Counter::kStreamFramesSent);
  telemetry::count(telemetry::Counter::kStreamBytesSent,
                   sizeof(header) + payload.size());
}

void CollectClient::send_hello(std::uint64_t pid, const std::string& name) {
  Hello hello;
  hello.pid = pid;
  hello.name = name;
  send_frame(FrameType::kHello, pack_hello(hello));
}

void CollectClient::send_heartbeat(const std::string& line) {
  send_frame(FrameType::kHeartbeat, line);
}

void CollectClient::send_meta(const trace::TraceHeader& header) {
  const std::string payload = pack_meta(header);
  if (payload.empty()) return;
  send_frame(FrameType::kMeta, payload);
}

void CollectClient::send_clock_syncs(const std::vector<trace::ClockSync>& syncs) {
  for (std::size_t i = 0; i < syncs.size(); i += kRecordsPerFrame) {
    if (!alive()) return;
    const std::size_t n = std::min(kRecordsPerFrame, syncs.size() - i);
    send_frame(FrameType::kSyncs, pack_clock_syncs(syncs.data() + i, n));
  }
}

void CollectClient::send_fn_events(const trace::FnEvent* events, std::size_t n) {
  for (std::size_t i = 0; i < n; i += kRecordsPerFrame) {
    if (!alive()) return;
    const std::size_t chunk = std::min(kRecordsPerFrame, n - i);
    send_frame(FrameType::kEvents, pack_fn_events(events + i, chunk));
  }
}

void CollectClient::send_temp_samples(const trace::TempSample* samples,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; i += kRecordsPerFrame) {
    if (!alive()) return;
    const std::size_t chunk = std::min(kRecordsPerFrame, n - i);
    send_frame(FrameType::kSamples, pack_temp_samples(samples + i, chunk));
  }
}

void CollectClient::send_bye(std::uint64_t events_sent, std::uint64_t samples_sent) {
  Bye bye;
  bye.events_sent = events_sent;
  bye.samples_sent = samples_sent;
  send_frame(FrameType::kBye, pack_bye(bye));
}

}  // namespace tempest::collectd
