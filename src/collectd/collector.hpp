// The tempest-collectd collector: sharded live ingestion of recording
// sessions plus an HTTP/1.0 JSON query plane.
//
// Architecture (DESIGN.md §14):
//
//   * One non-blocking poll() IO thread owns every socket: the ingest
//     and HTTP listeners, accepted connections, and a self-pipe the
//     fold shards use to wake it. It parses frames off ingest
//     connections and enqueues them — it never folds, so a slow fold
//     cannot stall accept/heartbeat traffic.
//   * K fold shards, each a worker thread with a bounded frame queue.
//     A session is pinned to shard (session_id % K), so all of a
//     session's frames fold on one thread with no fold-side locking.
//     Each session folds through its own AnalysisPipeline — the same
//     incremental TimelineAccumulator/ProfileAssembler core the offline
//     parser uses — so collector memory is O(timeline + samples) per
//     session, never O(events).
//   * Backpressure: when a session's shard queue is full, the IO
//     thread stops reading that connection (kernel socket buffers push
//     back to the sender) and resumes once the shard drains below half.
//   * Disconnect semantics: only a session that completed its BYE is
//     folded into the fleet rollup. A connection lost, timed out, or
//     protocol-errored before BYE aborts the session — its partial fold
//     is discarded and counted, never silently merged.
//   * Sessions fold in their own clock domain (the fleet shape is one
//     single-clock session per host). Sync records are accepted and
//     retained for skew diagnostics but timestamps are not rewritten:
//     re-sorting an aligned multi-node stream would need unbounded
//     buffering, and per-function totals are alignment-invariant (calls
//     exactly, times to the fitted-drift ppm). This mirrors the
//     offline `tempest_parse --no-align` fold.
//
// The query plane serves /healthz, /sessions, /profile?top=N,
// /runstats, /metrics (the PR-4 registry snapshot), and /top (a
// heartbeat-schema aggregate across live sessions for
// `tempest-top --connect`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "parser/profile.hpp"
#include "trace/trace.hpp"

namespace tempest::collectd {

struct CollectorOptions {
  /// Unix-domain ingest socket path ("" = disabled).
  std::string ingest_uds;
  /// TCP ingest endpoint "host:port" ("" = disabled). At least one
  /// ingest endpoint must be configured.
  std::string ingest_tcp;
  /// HTTP query plane endpoint; port 0 binds ephemerally (read it back
  /// with http_port()).
  std::string http_tcp = "127.0.0.1:0";
  /// Fold shards; 0 = auto (min(4, hardware_concurrency)).
  unsigned shards = 0;
  /// Reject any frame whose payload exceeds this.
  std::size_t max_frame_bytes = std::size_t{8} << 20;
  /// Bounded per-shard queue; a full queue pauses the feeding sockets.
  std::size_t max_queue_frames = 256;
  /// Byte bound on each shard's queued payloads. Frames can be large
  /// (up to max_frame_bytes), so the frame-count bound alone would let
  /// a queue hold hundreds of MiB; whichever limit hits first pauses.
  std::size_t max_queue_bytes = std::size_t{32} << 20;
  /// Reap connections idle this long (slow-loris guard; also applies
  /// to ingest sessions that stop sending without BYE). Connections
  /// paused for shard backpressure are exempt — they are waiting on
  /// us, not silent.
  double idle_timeout_s = 30.0;
  /// Retain at most this many folded/aborted sessions in the /sessions
  /// detail map; the oldest beyond the cap are reaped so a long-running
  /// daemon ingesting many short runs stays bounded. Fleet rollups
  /// (profile, runstats, folded/aborted counts) are kept separately and
  /// survive reaping.
  std::size_t max_terminal_sessions = 512;
  /// /top is a live fleet view: a finished (folded/aborted) session's
  /// final heartbeat keeps contributing to the aggregate for this long
  /// after it ends, then drops out — a fleet of short runs reads
  /// continuously, but dead sessions are never double-counted forever.
  /// 0 excludes finished sessions immediately.
  double top_freshness_s = 60.0;
  /// Profile options for the per-session folds (unit, significance).
  parser::ProfileOptions profile;
};

/// One function's fleet-wide rollup.
struct FleetFunction {
  std::uint64_t calls = 0;
  double total_time_s = 0.0;
  std::uint64_t sessions = 0;  ///< folded sessions that ran it
  /// Pooled per-activation duration moments across every folded
  /// session (Chan parallel combine of each run's mean/variance), so
  /// `tempest-diff --poll` can score fleet-level drift with the same
  /// Welch statistic the offline diff uses.
  std::uint64_t activations = 0;  ///< closed outermost intervals
  double time_mean_s = 0.0;       ///< pooled mean seconds per activation
  double time_m2 = 0.0;           ///< pooled sum of squared deviations

  /// Pooled population variance (seconds²); 0 with no activations.
  double time_var_s2() const {
    return activations == 0 ? 0.0 : time_m2 / static_cast<double>(activations);
  }
};

/// Roll one run's profile into a fleet function map — exactly the fold
/// the collector applies when a session completes, exposed so tests
/// can aggregate an offline RankFanIn result identically.
void fold_profile(const parser::RunProfile& profile,
                  std::map<std::string, FleetFunction>* out);

struct FleetSnapshot {
  std::map<std::string, FleetFunction> functions;
  trace::RunStats run_stats;  ///< count-weighted append-fold, conservation-safe
  std::uint64_t sessions_folded = 0;
  std::uint64_t sessions_aborted = 0;
};

class Collector {
 public:
  explicit Collector(CollectorOptions options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Bind listeners, spawn the IO thread and fold shards.
  Status start();
  /// Drain queues, join threads, close sockets. Idempotent.
  void stop();

  /// Bound TCP port of the query plane (after start()).
  std::uint16_t http_port() const;

  /// Current fleet rollup (folded sessions only).
  FleetSnapshot fleet() const;

  /// Serve one query-plane target (e.g. "/profile?top=5") without a
  /// socket. Returns the HTTP status code and fills *body.
  int handle_query(const std::string& target, std::string* body) const;

  /// As above with content negotiation: `accept` is the request's
  /// Accept header value ("" = any), and *content_type receives the
  /// media type of the response (/metrics serves Prometheus text when
  /// the query says format=prometheus or the Accept header prefers
  /// text/plain; everything else is application/json).
  int handle_query(const std::string& target, const std::string& accept,
                   std::string* body, std::string* content_type) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tempest::collectd
