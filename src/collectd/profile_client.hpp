// Client-side view of the collector's /profile endpoint.
//
// tempest-diff's --trend poll mode samples a live fleet rollup at an
// interval; rather than teach the diff layer HTTP and JSON, this small
// client owns both: fetch over the shared net plumbing, parse the
// /profile body into plain structs. The parser is tolerant of extra
// fields so older clients keep working as the endpoint grows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::collectd {

struct FleetProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double total_time_s = 0.0;
  std::uint64_t sessions = 0;
  double time_mean_s = 0.0;  ///< 0 when the daemon predates time stats
  double time_var_s2 = 0.0;
};

struct FleetProfileView {
  std::uint64_t sessions_folded = 0;
  std::vector<FleetProfileEntry> functions;  ///< server order (time desc)
};

/// Parse a /profile response body.
Result<FleetProfileView> parse_fleet_profile(const std::string& json);

/// GET /profile?top=N from `endpoint` ("uds:/path" | "tcp:host:port" |
/// "host:port") and parse it. `top` 0 uses the server default.
Result<FleetProfileView> fetch_fleet_profile(const std::string& endpoint,
                                             std::size_t top,
                                             double timeout_s);

}  // namespace tempest::collectd
