#include "collectd/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempest::collectd {
namespace {

Status errno_status(const std::string& what) {
  return Status::error(what + ": " + std::strerror(errno));
}

Result<int> finish_connect(int fd, double timeout_s, const std::string& what) {
  // Non-blocking connect + poll: a dead collector must not stall the
  // profiled application past its (sub-second) timeout.
  if (!set_nonblocking(fd).is_ok()) {
    ::close(fd);
    return Result<int>::error(what + ": cannot set O_NONBLOCK");
  }
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int timeout_ms = timeout_s <= 0 ? 0 : static_cast<int>(timeout_s * 1000.0);
  if (::poll(&pfd, 1, timeout_ms) <= 0) {
    ::close(fd);
    return Result<int>::error(what + ": connect timed out");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    return Result<int>::error(what + ": " + std::strerror(err != 0 ? err : errno));
  }
  // Back to blocking: senders want simple blocking writes with a send
  // timeout rather than their own poll loop.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  struct timeval tv {};
  tv.tv_sec = 5;
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

}  // namespace

bool parse_endpoint(const std::string& spec, Endpoint* out) {
  *out = Endpoint{};
  std::string rest = spec;
  if (rest.rfind("uds:", 0) == 0) {
    out->uds = true;
    out->path = rest.substr(4);
    return !out->path.empty();
  }
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    return false;
  }
  out->host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') return false;
    port = port * 10 + (c - '0');
    if (port > 65535) return false;
  }
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

Result<int> connect_endpoint(const Endpoint& ep, double timeout_s) {
  if (ep.uds) {
    struct sockaddr_un addr {};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      return Result<int>::error("uds path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Result<int>::error("socket: " + std::string(std::strerror(errno)));
    if (!set_nonblocking(fd).is_ok()) {
      ::close(fd);
      return Result<int>::error("uds connect: cannot set O_NONBLOCK");
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 &&
        errno != EINPROGRESS && errno != EAGAIN) {
      const Status s = errno_status("uds connect " + ep.path);
      ::close(fd);
      return Result<int>::error(s.message());
    }
    return finish_connect(fd, timeout_s, "uds connect " + ep.path);
  }

  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(ep.port);
  if (::getaddrinfo(ep.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Result<int>::error("cannot resolve " + ep.host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                          res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Result<int>::error("socket: " + std::string(std::strerror(errno)));
  }
  (void)set_nonblocking(fd);
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    const Status s = errno_status("tcp connect " + ep.host + ":" + port_str);
    ::close(fd);
    return Result<int>::error(s.message());
  }
  return finish_connect(fd, timeout_s, "tcp connect " + ep.host + ":" + port_str);
}

Result<int> listen_endpoint(const Endpoint& ep, int backlog) {
  if (ep.uds) {
    struct sockaddr_un addr {};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      return Result<int>::error("uds path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Result<int>::error("socket: " + std::string(std::strerror(errno)));
    (void)::unlink(ep.path.c_str());  // stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Status s = errno_status("bind " + ep.path);
      ::close(fd);
      return Result<int>::error(s.message());
    }
    if (::listen(fd, backlog) != 0) {
      const Status s = errno_status("listen " + ep.path);
      ::close(fd);
      return Result<int>::error(s.message());
    }
    return fd;
  }

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (ep.host.empty() || ep.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Result<int>::error("listen host must be a numeric IPv4 address: " +
                              ep.host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Result<int>::error("socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = errno_status("bind " + ep.host + ":" + std::to_string(ep.port));
    ::close(fd);
    return Result<int>::error(s.message());
  }
  if (::listen(fd, backlog) != 0) {
    const Status s = errno_status("listen");
    ::close(fd);
    return Result<int>::error(s.message());
  }
  return fd;
}

Result<std::uint16_t> local_port(int fd) {
  struct sockaddr_in addr {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return Result<std::uint16_t>::error("getsockname failed");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return errno_status("fcntl O_NONBLOCK");
  }
  return Status::ok();
}

Status send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return errno_status("send");
    }
    if (sent == 0) return Status::error("send: connection closed");
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return Status::ok();
}

Result<std::string> http_get(const std::string& spec, const std::string& target,
                             double timeout_s) {
  Endpoint ep;
  if (!parse_endpoint(spec, &ep)) {
    return Result<std::string>::error("malformed endpoint: " + spec);
  }
  auto conn = connect_endpoint(ep, timeout_s);
  if (!conn.is_ok()) return Result<std::string>::error(conn.message());
  const int fd = conn.value();
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nConnection: close\r\n\r\n";
  const Status sent = send_all(fd, request.data(), request.size());
  if (!sent.is_ok()) {
    ::close(fd);
    return Result<std::string>::error(sent.message());
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
    if (response.size() > (std::size_t{16} << 20)) break;  // runaway guard
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Result<std::string>::error("malformed HTTP response from " + spec);
  }
  const std::size_t line_end = response.find("\r\n");
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200") == std::string::npos) {
    return Result<std::string>::error("HTTP error from " + spec + ": " + status_line);
  }
  return response.substr(header_end + 4);
}

}  // namespace tempest::collectd
