#include "collectd/collector.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collectd/net.hpp"
#include "collectd/wire.hpp"
#include "pipeline/analysis.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::collectd {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;

constexpr int kPollTimeoutMs = 50;
constexpr std::size_t kHttpRequestCap = 8 * 1024;
constexpr std::size_t kMaxSessionSyncs = 1u << 20;

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out->push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_num(std::string* out, double v) {
  std::ostringstream os;
  os << v;
  *out += os.str();
}

/// Value of the first `name:` header in an HTTP header block (the
/// request line plus CRLF-separated headers), "" when absent. Header
/// names compare case-insensitively; the value is trimmed of spaces.
std::string header_value(const std::string& headers, const std::string& name) {
  std::size_t pos = headers.find("\r\n");
  while (pos != std::string::npos && pos + 2 < headers.size()) {
    pos += 2;
    const std::size_t eol = headers.find("\r\n", pos);
    const std::size_t colon = headers.find(':', pos);
    if (colon == std::string::npos || (eol != std::string::npos && colon > eol)) {
      pos = eol;
      continue;
    }
    bool match = colon - pos == name.size();
    for (std::size_t i = 0; match && i < name.size(); ++i) {
      match = std::tolower(static_cast<unsigned char>(headers[pos + i])) ==
              std::tolower(static_cast<unsigned char>(name[i]));
    }
    if (match) {
      std::size_t vb = colon + 1;
      std::size_t ve = eol == std::string::npos ? headers.size() : eol;
      while (vb < ve && headers[vb] == ' ') ++vb;
      while (ve > vb && headers[ve - 1] == ' ') --ve;
      return headers.substr(vb, ve - vb);
    }
    pos = eol;
  }
  return "";
}

/// Scan a flat heartbeat-schema JSON object for "key":number pairs.
void parse_flat_json(const std::string& line,
                     std::vector<std::pair<std::string, double>>* out) {
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t key_start = line.find('"', pos);
    if (key_start == std::string::npos) return;
    const std::size_t key_end = line.find('"', key_start + 1);
    if (key_end == std::string::npos) return;
    const std::size_t colon = line.find(':', key_end + 1);
    if (colon == std::string::npos) return;
    const std::string key = line.substr(key_start + 1, key_end - key_start - 1);
    char* end = nullptr;
    const double v = std::strtod(line.c_str() + colon + 1, &end);
    if (end != line.c_str() + colon + 1) out->emplace_back(key, v);
    pos = colon + 1;
  }
}

enum SessionState : int {
  kHandshake = 0,  ///< accepted, HELLO not folded yet
  kLive = 1,       ///< streaming
  kFolded = 2,     ///< BYE processed, merged into the fleet
  kAborted = 3,    ///< discarded (disconnect / protocol error / timeout)
};

const char* state_name(int s) {
  switch (s) {
    case kHandshake: return "handshake";
    case kLive: return "live";
    case kFolded: return "folded";
    case kAborted: return "aborted";
  }
  return "?";
}

/// Fold-side state; touched only by the owning shard thread.
struct SessionFold {
  bool have_meta = false;
  trace::Trace meta;  ///< bulk-empty META image (incl. RUNSTATS trailer)
  std::unique_ptr<pipeline::AnalysisPipeline> pipeline;
  std::vector<trace::ClockSync> syncs;
  std::vector<trace::FnEvent> scratch_events;
  std::vector<trace::TempSample> scratch_samples;
  std::uint64_t last_event_tsc = 0;
  std::uint64_t last_sample_tsc = 0;
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
};

struct SessionInfo {
  std::uint64_t id = 0;
  unsigned shard = 0;

  // Written by the shard thread, read by the query plane.
  std::atomic<int> state{kHandshake};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> heartbeats{0};
  std::atomic<std::uint64_t> hb_gaps{0};
  std::atomic<std::uint64_t> hb_restarts{0};
  std::atomic<std::uint64_t> last_seq{0};
  /// Collector-clock ms (since Impl::t0) when the session reached a
  /// terminal state; -1 while handshaking/live. Drives the /top
  /// freshness window.
  std::atomic<std::int64_t> finished_at_ms{-1};
  /// Shard thread asks the IO thread to close the connection.
  std::atomic<bool> kill{false};

  std::mutex mu;  ///< guards the strings below
  std::string name;
  std::uint64_t pid = 0;
  std::string last_heartbeat;
  double last_t = 0.0;

  SessionFold fold;  ///< shard thread only
};

struct Msg {
  std::shared_ptr<SessionInfo> sess;
  FrameType type = FrameType::kHello;
  std::string payload;
  bool disconnect = false;  ///< connection ended (clean EOF or error)
  /// IO-thread abort (bad magic / oversized frame): the session is
  /// already marked kAborted; this message just asks the owning shard
  /// thread to tear down the fold, which only it may touch.
  bool abort = false;
};

struct Shard {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Msg> queue;
  bool stop = false;
  std::atomic<std::size_t> depth{0};
  std::atomic<std::size_t> bytes{0};  ///< queued payload bytes
  std::thread thread;
};

struct Conn {
  int fd = -1;
  bool http = false;
  std::string in;
  std::string out;  ///< pending HTTP response bytes
  bool paused = false;
  bool close_after_write = false;
  /// Peer closed its write side. The connection is not torn down until
  /// every complete frame still buffered in `in` has been enqueued —
  /// a sender that sends BYE and immediately exits must still fold even
  /// if its shard queue was full at EOF time.
  bool read_closed = false;
  std::shared_ptr<SessionInfo> sess;
  std::chrono::steady_clock::time_point last_active;
};

}  // namespace

void fold_profile(const parser::RunProfile& profile,
                  std::map<std::string, FleetFunction>* out) {
  std::set<std::string> seen_this_run;
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      FleetFunction& f = (*out)[fn.name];
      f.calls += fn.calls;
      f.total_time_s += fn.total_time_s;
      if (seen_this_run.insert(fn.name).second) ++f.sessions;
      // Chan's parallel combine: pool this run's per-activation
      // duration moments into the fleet rollup so variance composes
      // exactly as if every interval had been folded in one pass.
      if (fn.time.count > 0) {
        const double nb = static_cast<double>(fn.time.count);
        const double na = static_cast<double>(f.activations);
        const double n = na + nb;
        const double delta = fn.time.mean_s - f.time_mean_s;
        const double m2_b = fn.time.var_s2 * nb;
        f.time_m2 += m2_b + delta * delta * na * nb / n;
        f.time_mean_s += delta * nb / n;
        f.activations += fn.time.count;
      }
    }
  }
}

struct Collector::Impl {
  explicit Impl(CollectorOptions opts) : options(std::move(opts)) {}

  CollectorOptions options;
  std::atomic<bool> running{false};

  int ingest_uds_fd = -1;
  int ingest_tcp_fd = -1;
  int http_fd = -1;
  std::uint16_t http_port = 0;
  int wake_rd = -1;
  int wake_wr = -1;

  std::thread io_thread;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<std::uint64_t> next_session_id{1};
  std::atomic<std::int64_t> active_conns{0};

  mutable std::mutex sessions_mu;
  std::map<std::uint64_t, std::shared_ptr<SessionInfo>> sessions;

  mutable std::mutex fleet_mu;
  std::map<std::string, FleetFunction> fleet_functions;
  trace::RunStats fleet_run_stats;
  std::uint64_t sessions_folded = 0;
  std::uint64_t sessions_aborted = 0;

  std::chrono::steady_clock::time_point t0;

  // -- shard side --------------------------------------------------------

  void wake_io() {
    if (wake_wr >= 0) {
      const char b = 1;
      ssize_t n;
      do {
        n = ::write(wake_wr, &b, 1);
      } while (n < 0 && errno == EINTR);
    }
  }

  void enqueue(unsigned shard_idx, Msg msg) {
    Shard& sh = *shards[shard_idx];
    {
      const std::lock_guard<std::mutex> lock(sh.mu);
      sh.bytes.fetch_add(msg.payload.size(), std::memory_order_relaxed);
      sh.queue.push_back(std::move(msg));
      sh.depth.store(sh.queue.size(), std::memory_order_release);
    }
    sh.cv.notify_one();
  }

  /// Backpressure watermarks: pause feeding sockets when either the
  /// frame-count or the byte bound is hit, resume only once BOTH have
  /// drained below half.
  bool shard_full(const Shard& sh) const {
    return sh.depth.load(std::memory_order_acquire) >=
               options.max_queue_frames ||
           sh.bytes.load(std::memory_order_acquire) >= options.max_queue_bytes;
  }
  bool shard_low(const Shard& sh) const {
    return sh.depth.load(std::memory_order_acquire) <
               std::max<std::size_t>(1, options.max_queue_frames / 2) &&
           sh.bytes.load(std::memory_order_acquire) <
               std::max<std::size_t>(1, options.max_queue_bytes / 2);
  }

  /// Transition to kAborted unless already terminal. Safe from any
  /// thread; returns true for the caller that won the transition (so
  /// counters are bumped exactly once even if the IO thread and a shard
  /// thread abort the same session concurrently).
  bool mark_aborted(SessionInfo* s, const std::string& reason) {
    int st = s->state.load(std::memory_order_acquire);
    do {
      if (st == kFolded || st == kAborted) return false;
    } while (!s->state.compare_exchange_weak(
        st, kAborted, std::memory_order_acq_rel, std::memory_order_acquire));
    s->finished_at_ms.store(now_ms(), std::memory_order_relaxed);
    telemetry::count(Counter::kCollectSessionsAborted);
    {
      const std::lock_guard<std::mutex> lock(fleet_mu);
      ++sessions_aborted;
    }
    telemetry::log_warn("collectd", "session " + std::to_string(s->id) +
                                        " aborted: " + reason);
    s->kill.store(true, std::memory_order_release);
    return true;
  }

  /// Shard-thread abort: marks the session and tears down its fold.
  /// Must only run on the session's owning shard thread — SessionFold
  /// is shard-thread-only state.
  void abort_session(SessionInfo* s, const std::string& reason) {
    if (mark_aborted(s, reason)) wake_io();
    s->fold = SessionFold{};  // discard the partial fold
  }

  void protocol_error(SessionInfo* s, const std::string& what) {
    telemetry::count(Counter::kCollectProtocolErrors);
    abort_session(s, "protocol error: " + what);
  }

  /// IO-thread abort (framing errors seen before the payload ever
  /// reaches a shard). Never touches s->fold: the shard thread may be
  /// folding already-queued frames for this session right now. Instead
  /// an abort message rides the same FIFO queue — by the time the shard
  /// processes it, every earlier frame has been dropped (state is
  /// already kAborted) and the fold can be torn down safely.
  void protocol_error_io(const std::shared_ptr<SessionInfo>& s,
                         const std::string& what) {
    telemetry::count(Counter::kCollectProtocolErrors);
    mark_aborted(s.get(), "protocol error: " + what);
    Msg msg;
    msg.sess = s;
    msg.abort = true;
    enqueue(s->shard, std::move(msg));
  }

  void fold_heartbeat(SessionInfo* s, const std::string& line) {
    const auto seq =
        static_cast<std::uint64_t>(json_number(line, "seq", 0.0));
    const double t = json_number(line, "t", 0.0);
    if (seq > 0) {
      const std::uint64_t last = s->last_seq.load(std::memory_order_relaxed);
      if (last > 0 && seq > last + 1) {
        const std::uint64_t lost = seq - last - 1;
        s->hb_gaps.fetch_add(lost, std::memory_order_relaxed);
        telemetry::count(Counter::kCollectHeartbeatGaps, lost);
      } else if (last > 0 && seq < last) {
        s->hb_restarts.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(Counter::kCollectRestarts);
      }
      s->last_seq.store(seq, std::memory_order_relaxed);
    }
    {
      const std::lock_guard<std::mutex> lock(s->mu);
      s->last_heartbeat = line;
      s->last_t = t;
    }
    s->heartbeats.fetch_add(1, std::memory_order_relaxed);
    telemetry::count(Counter::kCollectHeartbeats);
  }

  void fold_bye(SessionInfo* s, const Bye& bye) {
    SessionFold& f = s->fold;
    if (bye.events_sent != f.events || bye.samples_sent != f.samples) {
      protocol_error(s, "BYE counts disagree with the stream (events " +
                            std::to_string(bye.events_sent) + " vs " +
                            std::to_string(f.events) + ")");
      return;
    }
    pipeline::AnalysisResult result;
    if (f.pipeline != nullptr) {
      f.pipeline->set_run_stats(f.meta.run_stats);
      result = f.pipeline->finish();
    }
    {
      const std::lock_guard<std::mutex> lock(fleet_mu);
      fold_profile(result.profile, &fleet_functions);
      if (f.meta.run_stats.present) {
        if (fleet_run_stats.present) {
          fleet_run_stats.append(f.meta.run_stats);
        } else {
          fleet_run_stats = f.meta.run_stats;
        }
      }
      ++sessions_folded;
    }
    telemetry::count(Counter::kCollectSessionsFolded);
    s->state.store(kFolded, std::memory_order_release);
    s->finished_at_ms.store(now_ms(), std::memory_order_relaxed);
    s->fold = SessionFold{};  // free the pipeline; the rollup is merged
  }

  void fold_msg(Msg* msg) {
    SessionInfo* s = msg->sess.get();
    const int st = s->state.load(std::memory_order_acquire);
    if (msg->abort) {
      // Deferred teardown for an IO-thread abort: we are the owning
      // shard thread, and FIFO ordering guarantees no earlier frame of
      // this session is still queued ahead of us.
      s->fold = SessionFold{};
      return;
    }
    if (msg->disconnect) {
      if (st != kFolded && st != kAborted) {
        telemetry::count(Counter::kCollectDisconnects);
        abort_session(s, "connection lost before BYE");
      }
      return;
    }
    if (st == kAborted || st == kFolded) return;  // late frames: drop

    const auto fold_start = std::chrono::steady_clock::now();
    telemetry::count(Counter::kCollectFrames);
    telemetry::count(Counter::kCollectBytes, msg->payload.size());
    s->frames.fetch_add(1, std::memory_order_relaxed);
    SessionFold& f = s->fold;

    switch (msg->type) {
      case FrameType::kHello: {
        Hello hello;
        if (!unpack_hello(msg->payload, &hello)) {
          protocol_error(s, "malformed HELLO");
          return;
        }
        if (hello.protocol != kProtocolVersion) {
          protocol_error(s, "protocol version " + std::to_string(hello.protocol));
          return;
        }
        {
          const std::lock_guard<std::mutex> lock(s->mu);
          s->name = hello.name;
          s->pid = hello.pid;
        }
        s->state.store(kLive, std::memory_order_release);
        break;
      }
      case FrameType::kHeartbeat:
        fold_heartbeat(s, msg->payload);
        break;
      case FrameType::kMeta: {
        if (f.have_meta) {
          protocol_error(s, "duplicate META (would reset the fold)");
          return;
        }
        if (!unpack_meta(msg->payload, &f.meta)) {
          protocol_error(s, "malformed META");
          return;
        }
        pipeline::AnalysisOptions aopts;
        aopts.profile = options.profile;
        aopts.timeline_hint = 1u << 12;
        f.pipeline = std::make_unique<pipeline::AnalysisPipeline>(aopts);
        f.pipeline->set_metadata(f.meta);
        f.have_meta = true;
        break;
      }
      case FrameType::kSyncs: {
        if (!unpack_clock_syncs(msg->payload, &f.syncs) ||
            f.syncs.size() > kMaxSessionSyncs) {
          protocol_error(s, "malformed SYNCS");
          return;
        }
        break;
      }
      case FrameType::kEvents: {
        if (!f.have_meta) {
          protocol_error(s, "EVENTS before META");
          return;
        }
        f.scratch_events.clear();
        if (!unpack_fn_events(msg->payload, &f.scratch_events)) {
          protocol_error(s, "malformed EVENTS");
          return;
        }
        std::uint64_t last = f.last_event_tsc;
        for (const auto& e : f.scratch_events) {
          if (e.tsc < last) {
            protocol_error(s, "out-of-order events in stream");
            return;
          }
          last = e.tsc;
        }
        f.last_event_tsc = last;
        f.pipeline->add_fn_events(f.scratch_events.data(),
                                  f.scratch_events.size());
        f.events += f.scratch_events.size();
        s->events.store(f.events, std::memory_order_relaxed);
        telemetry::count(Counter::kCollectEvents, f.scratch_events.size());
        break;
      }
      case FrameType::kSamples: {
        if (!f.have_meta) {
          protocol_error(s, "SAMPLES before META");
          return;
        }
        f.scratch_samples.clear();
        if (!unpack_temp_samples(msg->payload, &f.scratch_samples)) {
          protocol_error(s, "malformed SAMPLES");
          return;
        }
        std::uint64_t last = f.last_sample_tsc;
        for (const auto& ts : f.scratch_samples) {
          if (ts.tsc < last) {
            protocol_error(s, "out-of-order samples in stream");
            return;
          }
          last = ts.tsc;
        }
        f.last_sample_tsc = last;
        f.pipeline->add_temp_samples(f.scratch_samples.data(),
                                     f.scratch_samples.size());
        f.samples += f.scratch_samples.size();
        s->samples.store(f.samples, std::memory_order_relaxed);
        telemetry::count(Counter::kCollectSamples, f.scratch_samples.size());
        break;
      }
      case FrameType::kBye: {
        Bye bye;
        if (!unpack_bye(msg->payload, &bye) || !f.have_meta) {
          protocol_error(s, "malformed BYE");
          return;
        }
        fold_bye(s, bye);
        break;
      }
    }
    telemetry::observe(
        Histogram::kCollectFoldUs,
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - fold_start)
            .count());
  }

  void shard_loop(Shard* sh) {
    for (;;) {
      Msg msg;
      bool was_high = false;
      {
        std::unique_lock<std::mutex> lock(sh->mu);
        sh->cv.wait(lock, [&] { return sh->stop || !sh->queue.empty(); });
        if (sh->queue.empty()) return;  // stop && drained
        was_high = !shard_low(*sh);
        msg = std::move(sh->queue.front());
        sh->queue.pop_front();
        sh->depth.store(sh->queue.size(), std::memory_order_release);
        sh->bytes.fetch_sub(msg.payload.size(), std::memory_order_relaxed);
      }
      fold_msg(&msg);
      // Dropping below the low-water mark may unblock paused sockets.
      if (was_high && shard_low(*sh)) wake_io();
    }
  }

  // -- IO side -----------------------------------------------------------

  std::shared_ptr<SessionInfo> new_session() {
    auto s = std::make_shared<SessionInfo>();
    s->id = next_session_id.fetch_add(1, std::memory_order_relaxed);
    s->shard = static_cast<unsigned>(s->id % shards.size());
    {
      const std::lock_guard<std::mutex> lock(sessions_mu);
      sessions.emplace(s->id, s);
    }
    return s;
  }

  /// Drop the oldest terminal (folded/aborted) sessions beyond the
  /// retention cap. Session ids are monotonic and the map is ordered,
  /// so a forward scan reaps oldest-first. Shard queues hold shared_ptr
  /// references, so erasing here never invalidates in-flight messages.
  void reap_sessions() {
    const std::lock_guard<std::mutex> lock(sessions_mu);
    std::size_t terminal = 0;
    for (const auto& [id, s] : sessions) {
      const int st = s->state.load(std::memory_order_acquire);
      if (st == kFolded || st == kAborted) ++terminal;
    }
    for (auto it = sessions.begin();
         it != sessions.end() && terminal > options.max_terminal_sessions;) {
      const int st = it->second->state.load(std::memory_order_acquire);
      if (st == kFolded || st == kAborted) {
        it = sessions.erase(it);
        --terminal;
      } else {
        ++it;
      }
    }
  }

  /// Parse complete frames off an ingest connection's buffer into its
  /// shard queue. Pauses (returns) when the shard is full; closes with
  /// a protocol error on malformed/oversized frames.
  bool drain_ingest_buffer(Conn* c) {
    Shard& sh = *shards[c->sess->shard];
    std::size_t consumed = 0;
    bool ok = true;
    while (c->in.size() - consumed >= kFrameHeaderBytes) {
      if (shard_full(sh)) {
        c->paused = true;
        break;
      }
      FrameType type;
      std::uint32_t len = 0;
      const HeaderParse hp =
          decode_frame_header(c->in.data() + consumed, &type, &len);
      if (hp != HeaderParse::kOk) {
        protocol_error_io(c->sess, hp == HeaderParse::kBadMagic
                                       ? "bad frame magic"
                                       : "unknown frame type");
        ok = false;
        break;
      }
      if (len > options.max_frame_bytes) {
        protocol_error_io(c->sess, "oversized frame (" + std::to_string(len) +
                                       " bytes)");
        ok = false;
        break;
      }
      if (c->in.size() - consumed < kFrameHeaderBytes + len) break;
      Msg msg;
      msg.sess = c->sess;
      msg.type = type;
      msg.payload.assign(c->in, consumed + kFrameHeaderBytes, len);
      enqueue(c->sess->shard, std::move(msg));
      consumed += kFrameHeaderBytes + len;
    }
    if (consumed > 0) c->in.erase(0, consumed);
    return ok;
  }

  void serve_http(Conn* c) {
    const std::size_t header_end = c->in.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (c->in.size() > kHttpRequestCap) {
        c->out = "HTTP/1.0 400 Bad Request\r\nConnection: close\r\n\r\n";
        c->close_after_write = true;
      }
      return;
    }
    telemetry::count(Counter::kCollectHttpRequests);
    const std::size_t line_end = c->in.find("\r\n");
    const std::string request_line = c->in.substr(0, line_end);
    std::string body;
    std::string content_type = "application/json";
    int code = 404;
    std::string target;
    if (request_line.rfind("GET ", 0) == 0) {
      const std::size_t sp = request_line.find(' ', 4);
      target = request_line.substr(4, sp == std::string::npos ? std::string::npos
                                                              : sp - 4);
      const std::string accept =
          header_value(c->in.substr(0, header_end), "accept");
      code = handle(target, accept, &body, &content_type);
    } else {
      code = 405;
    }
    const char* reason = code == 200   ? "OK"
                         : code == 400 ? "Bad Request"
                         : code == 405 ? "Method Not Allowed"
                                       : "Not Found";
    if (code != 200 && body.empty()) {
      body = "{\"error\":" + std::to_string(code) + "}";
      content_type = "application/json";
    }
    c->out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
             "\r\nContent-Type: " + content_type + "\r\nContent-Length: " +
             std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    c->close_after_write = true;
    c->in.clear();
  }

  // -- query plane -------------------------------------------------------

  double uptime_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::int64_t now_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }

  int handle(const std::string& target, const std::string& accept,
             std::string* body, std::string* content_type) const {
    std::string path = target;
    std::string query;
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      path = target.substr(0, qmark);
      query = target.substr(qmark + 1);
    }
    if (path == "/healthz") return handle_healthz(body);
    if (path == "/sessions") return handle_sessions(body);
    if (path == "/profile") return handle_profile(query, body);
    if (path == "/runstats") return handle_runstats(body);
    if (path == "/metrics") {
      return handle_metrics(query, accept, body, content_type);
    }
    if (path == "/top") return handle_top(body);
    return 404;
  }

  int handle_healthz(std::string* body) const {
    std::size_t live = 0;
    {
      const std::lock_guard<std::mutex> lock(sessions_mu);
      for (const auto& [id, s] : sessions) {
        const int st = s->state.load(std::memory_order_acquire);
        if (st == kHandshake || st == kLive) ++live;
      }
    }
    *body = "{\"status\":\"ok\",\"uptime_s\":";
    append_num(body, uptime_s());
    *body += ",\"sessions_active\":" + std::to_string(live) + "}";
    return 200;
  }

  int handle_sessions(std::string* body) const {
    *body = "{\"sessions\":[";
    bool first = true;
    const std::lock_guard<std::mutex> lock(sessions_mu);
    for (const auto& [id, s] : sessions) {
      if (!first) *body += ",";
      first = false;
      std::string name;
      std::uint64_t pid = 0;
      double last_t = 0.0;
      {
        const std::lock_guard<std::mutex> slock(s->mu);
        name = s->name;
        pid = s->pid;
        last_t = s->last_t;
      }
      *body += "{\"id\":" + std::to_string(id) + ",\"name\":";
      append_json_string(body, name);
      *body += ",\"pid\":" + std::to_string(pid);
      *body += ",\"state\":\"";
      *body += state_name(s->state.load(std::memory_order_acquire));
      *body += "\",\"events\":" +
               std::to_string(s->events.load(std::memory_order_relaxed));
      *body += ",\"samples\":" +
               std::to_string(s->samples.load(std::memory_order_relaxed));
      *body += ",\"frames\":" +
               std::to_string(s->frames.load(std::memory_order_relaxed));
      *body += ",\"heartbeats\":" +
               std::to_string(s->heartbeats.load(std::memory_order_relaxed));
      *body += ",\"heartbeat_gaps\":" +
               std::to_string(s->hb_gaps.load(std::memory_order_relaxed));
      *body += ",\"heartbeat_restarts\":" +
               std::to_string(s->hb_restarts.load(std::memory_order_relaxed));
      *body += ",\"last_seq\":" +
               std::to_string(s->last_seq.load(std::memory_order_relaxed));
      *body += ",\"last_t\":";
      append_num(body, last_t);
      *body += "}";
    }
    *body += "]}";
    return 200;
  }

  int handle_profile(const std::string& query, std::string* body) const {
    std::size_t top = 20;
    if (query.rfind("top=", 0) == 0) {
      const long v = std::strtol(query.c_str() + 4, nullptr, 10);
      if (v > 0) top = static_cast<std::size_t>(v);
    }
    std::vector<std::pair<std::string, FleetFunction>> fns;
    std::uint64_t folded = 0;
    {
      const std::lock_guard<std::mutex> lock(fleet_mu);
      fns.assign(fleet_functions.begin(), fleet_functions.end());
      folded = sessions_folded;
    }
    std::sort(fns.begin(), fns.end(), [](const auto& a, const auto& b) {
      if (a.second.total_time_s != b.second.total_time_s) {
        return a.second.total_time_s > b.second.total_time_s;
      }
      return a.first < b.first;
    });
    if (fns.size() > top) fns.resize(top);
    *body = "{\"sessions_folded\":" + std::to_string(folded) +
            ",\"functions\":[";
    for (std::size_t i = 0; i < fns.size(); ++i) {
      if (i > 0) *body += ",";
      *body += "{\"name\":";
      append_json_string(body, fns[i].first);
      *body += ",\"calls\":" + std::to_string(fns[i].second.calls);
      *body += ",\"total_time_s\":";
      append_num(body, fns[i].second.total_time_s);
      *body += ",\"sessions\":" + std::to_string(fns[i].second.sessions);
      *body += ",\"activations\":" + std::to_string(fns[i].second.activations);
      *body += ",\"time_mean_s\":";
      append_num(body, fns[i].second.time_mean_s);
      *body += ",\"time_var_s2\":";
      append_num(body, fns[i].second.time_var_s2());
      *body += "}";
    }
    *body += "]}";
    return 200;
  }

  int handle_runstats(std::string* body) const {
    trace::RunStats rs;
    std::uint64_t folded = 0, aborted = 0;
    {
      const std::lock_guard<std::mutex> lock(fleet_mu);
      rs = fleet_run_stats;
      folded = sessions_folded;
      aborted = sessions_aborted;
    }
    const std::uint64_t accounted = rs.events_recorded + rs.events_suppressed +
                                    rs.events_throttled + rs.events_dropped +
                                    rs.events_overwritten;
    *body = "{\"present\":";
    *body += rs.present ? "true" : "false";
    *body += ",\"sessions_folded\":" + std::to_string(folded);
    *body += ",\"sessions_aborted\":" + std::to_string(aborted);
    *body += ",\"events_recorded\":" + std::to_string(rs.events_recorded);
    *body += ",\"events_dropped\":" + std::to_string(rs.events_dropped);
    *body += ",\"events_suppressed\":" + std::to_string(rs.events_suppressed);
    *body += ",\"events_throttled\":" + std::to_string(rs.events_throttled);
    *body += ",\"events_overwritten\":" + std::to_string(rs.events_overwritten);
    *body += ",\"calls_observed\":" + std::to_string(rs.calls_observed);
    *body += ",\"tempd_ticks\":" + std::to_string(rs.tempd_ticks);
    *body += ",\"tempd_samples\":" + std::to_string(rs.tempd_samples);
    *body += ",\"heartbeats\":" + std::to_string(rs.heartbeats);
    *body += ",\"wall_seconds\":";
    append_num(body, rs.wall_seconds);
    *body += ",\"tempd_cpu_seconds\":";
    append_num(body, rs.tempd_cpu_seconds);
    // The conservation invariant, checked server-side so a curl of this
    // endpoint is a fleet-wide lint.
    *body += ",\"conservation_ok\":";
    *body += (!rs.present || rs.calls_observed == accounted) ? "true" : "false";
    *body += "}";
    return 200;
  }

  /// /metrics serves the registry snapshot as heartbeat-schema JSON by
  /// default, or Prometheus text exposition when ?format=prometheus is
  /// given or the Accept header prefers text/plain / OpenMetrics over
  /// JSON. An explicit ?format= always wins over Accept.
  int handle_metrics(const std::string& query, const std::string& accept,
                     std::string* body, std::string* content_type) const {
    bool prometheus = false;
    if (query.find("format=prometheus") != std::string::npos) {
      prometheus = true;
    } else if (query.find("format=json") == std::string::npos) {
      prometheus = accept.find("text/plain") != std::string::npos ||
                   accept.find("application/openmetrics-text") !=
                       std::string::npos;
    }
    std::ostringstream os;
    if (prometheus) {
      telemetry::write_snapshot_prometheus(os, telemetry::metrics().snapshot(),
                                           uptime_s());
      *content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else {
      telemetry::write_snapshot_json(os, telemetry::metrics().snapshot(),
                                     uptime_s());
      *content_type = "application/json";
    }
    *body = std::move(os).str();
    return 200;
  }

  /// Heartbeat-schema aggregate across sessions: counters sum, "t" and
  /// "schema_version" take the max. One fleet-wide line tempest-top's
  /// renderer already understands.
  int handle_top(std::string* body) const {
    std::vector<std::string> lines;
    {
      const std::int64_t now = now_ms();
      const auto window_ms =
          static_cast<std::int64_t>(options.top_freshness_s * 1000.0);
      const std::lock_guard<std::mutex> lock(sessions_mu);
      lines.reserve(sessions.size());
      for (const auto& [id, s] : sessions) {
        // Live fleet view: a finished session's final heartbeat fades
        // out after the freshness window — keeping it forever would
        // double-count every dead run in the aggregate.
        const int st = s->state.load(std::memory_order_acquire);
        if (st == kFolded || st == kAborted) {
          const std::int64_t fin =
              s->finished_at_ms.load(std::memory_order_relaxed);
          if (fin < 0 || now - fin >= window_ms) continue;
        }
        const std::lock_guard<std::mutex> slock(s->mu);
        if (!s->last_heartbeat.empty()) lines.push_back(s->last_heartbeat);
      }
    }
    // Preserve first-seen key order so the output reads like a normal
    // heartbeat line.
    std::vector<std::pair<std::string, double>> merged;
    for (const std::string& line : lines) {
      std::vector<std::pair<std::string, double>> kv;
      parse_flat_json(line, &kv);
      for (auto& [key, value] : kv) {
        auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const auto& p) { return p.first == key; });
        if (it == merged.end()) {
          merged.emplace_back(key, value);
        } else if (key == "t" || key == "schema_version" ||
                   key.rfind("sensor_temp_", 0) == 0 ||
                   (key.size() > 4 &&
                    key.compare(key.size() - 4, 4, "_max") == 0)) {
          it->second = std::max(it->second, value);
        } else {
          it->second += value;
        }
      }
    }
    *body = "{";
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (i > 0) *body += ",";
      *body += "\"" + merged[i].first + "\":";
      append_num(body, merged[i].second);
    }
    *body += "}";
    return 200;
  }

  // -- IO loop -----------------------------------------------------------

  void io_loop() {
    std::unordered_map<int, Conn> conns;
    std::vector<struct pollfd> pfds;
    const auto idle_timeout = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(options.idle_timeout_s));

    auto close_conn = [&](int fd, bool lost) {
      auto it = conns.find(fd);
      if (it == conns.end()) return;
      Conn& c = it->second;
      if (c.sess != nullptr) {
        if (lost) {
          Msg msg;
          msg.sess = c.sess;
          msg.disconnect = true;
          enqueue(c.sess->shard, std::move(msg));
        }
        telemetry::gauge_set(
            Gauge::kCollectSessionsActive,
            active_conns.fetch_sub(1, std::memory_order_relaxed) - 1);
      }
      ::close(fd);
      conns.erase(it);
    };

    while (running.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({wake_rd, POLLIN, 0});
      if (ingest_uds_fd >= 0) pfds.push_back({ingest_uds_fd, POLLIN, 0});
      if (ingest_tcp_fd >= 0) pfds.push_back({ingest_tcp_fd, POLLIN, 0});
      if (http_fd >= 0) pfds.push_back({http_fd, POLLIN, 0});
      const std::size_t fixed = pfds.size();
      for (auto& [fd, c] : conns) {
        short events = 0;
        if (!c.paused && !c.close_after_write && !c.read_closed) {
          events |= POLLIN;
        }
        if (!c.out.empty()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
      }

      const int ready = ::poll(pfds.data(), pfds.size(), kPollTimeoutMs);
      if (ready < 0 && errno != EINTR) break;
      const auto now = std::chrono::steady_clock::now();

      // Wake pipe: drained; its only meaning is "recheck paused/kill".
      if (pfds[0].revents & POLLIN) {
        char buf[64];
        while (::read(wake_rd, buf, sizeof(buf)) > 0) {
        }
      }

      // Listeners.
      for (std::size_t i = 1; i < fixed; ++i) {
        if (!(pfds[i].revents & POLLIN)) continue;
        const int lfd = pfds[i].fd;
        for (;;) {
          const int cfd = ::accept(lfd, nullptr, nullptr);
          if (cfd < 0) break;
          (void)set_nonblocking(cfd);
          Conn c;
          c.fd = cfd;
          c.last_active = now;
          if (lfd == http_fd) {
            c.http = true;
          } else {
            c.sess = new_session();
            telemetry::gauge_set(
                Gauge::kCollectSessionsActive,
                active_conns.fetch_add(1, std::memory_order_relaxed) + 1);
          }
          conns.emplace(cfd, std::move(c));
        }
      }

      // Connections.
      std::vector<std::pair<int, bool>> to_close;  // fd, lost
      for (std::size_t i = fixed; i < pfds.size(); ++i) {
        const int fd = pfds[i].fd;
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Conn& c = it->second;
        if ((pfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
          to_close.emplace_back(fd, !c.http);
          continue;
        }
        // POLLHUP alone is NOT treated as EOF: the kernel can report it
        // while unread frames (including BYE) still sit in the socket
        // buffer — notably while a conn is paused for backpressure and
        // POLLIN isn't registered. Only recv() == 0 is authoritative;
        // an ingest peer that hung up gets read to exhaustion once the
        // shard drains. HTTP conns have nothing left to say: close.
        if ((pfds[i].revents & POLLHUP) != 0 && !(pfds[i].revents & POLLIN) &&
            c.http) {
          to_close.emplace_back(fd, false);
          continue;
        }
        if (pfds[i].revents & POLLIN) {
          c.last_active = now;
          bool eof = false;
          char buf[64 * 1024];
          for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n > 0) {
              c.in.append(buf, static_cast<std::size_t>(n));
              // Per-iteration batch cap: bounds each conn's parse buffer
              // (frames larger than this still assemble across
              // iterations) and keeps one fast sender from starving the
              // rest of the poll set.
              if (c.in.size() >= (std::size_t{1} << 20)) break;
              continue;
            }
            if (n == 0) eof = true;
            break;
          }
          if (c.http) {
            serve_http(&c);
          } else {
            if (!drain_ingest_buffer(&c)) {
              to_close.emplace_back(fd, false);  // already aborted
              continue;
            }
          }
          if (eof) {
            if (c.http) {
              to_close.emplace_back(fd, false);
              continue;
            }
            // Do NOT close yet: if backpressure paused parsing, complete
            // frames (including BYE) may still sit in c.in. The late
            // sweep closes once the buffer has fully drained.
            c.read_closed = true;
          }
        }
        if ((pfds[i].revents & POLLOUT) && !c.out.empty()) {
          c.last_active = now;
          const ssize_t n = ::send(fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            to_close.emplace_back(fd, !c.http);
            continue;
          }
          if (n > 0) c.out.erase(0, static_cast<std::size_t>(n));
          if (c.out.empty() && c.close_after_write) {
            to_close.emplace_back(fd, false);
            continue;
          }
        }
      }
      for (const auto& [fd, lost] : to_close) close_conn(fd, lost);

      // Paused connections: resume once their shard drained, and parse
      // whatever is still buffered.
      std::vector<std::pair<int, bool>> close_late;
      for (auto& [fd, c] : conns) {
        if (c.sess != nullptr && c.sess->kill.load(std::memory_order_acquire)) {
          close_late.emplace_back(fd, false);
          continue;
        }
        if (c.paused && shard_low(*shards[c.sess->shard])) {
          c.paused = false;
          // The pause was our backpressure, not peer silence — restart
          // the idle clock so the resumed sender isn't instantly reaped.
          c.last_active = now;
          if (!drain_ingest_buffer(&c)) {
            close_late.emplace_back(fd, false);
            continue;
          }
        }
        if (c.read_closed && !c.paused) {
          // Every complete frame has been enqueued (FIFO, so a clean BYE
          // folds before the disconnect message lands); any leftover
          // bytes are a torn frame and the disconnect rightly aborts.
          close_late.emplace_back(fd, true);
          continue;
        }
        // A paused conn is not polled for POLLIN, so last_active cannot
        // advance; reaping it would punish a healthy sender for a full
        // shard. Only unpaused-and-silent peers are idle.
        if (!c.paused && now - c.last_active > idle_timeout) {
          telemetry::count(Counter::kCollectIdleTimeouts);
          close_late.emplace_back(fd, !c.http);
        }
      }
      for (const auto& [fd, lost] : close_late) close_conn(fd, lost);
      reap_sessions();

      std::size_t queued = 0;
      for (const auto& sh : shards) {
        queued += sh->depth.load(std::memory_order_acquire);
      }
      telemetry::gauge_set(Gauge::kCollectQueueFrames,
                           static_cast<std::int64_t>(queued));
    }

    for (auto& [fd, c] : conns) {
      if (c.sess != nullptr) {
        Msg msg;
        msg.sess = c.sess;
        msg.disconnect = true;
        enqueue(c.sess->shard, std::move(msg));
      }
      ::close(fd);
    }
    conns.clear();
  }
};

Collector::Collector(CollectorOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Collector::~Collector() { stop(); }

Status Collector::start() {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_acquire)) {
    return Status::error("collector already running");
  }
  if (im.options.ingest_uds.empty() && im.options.ingest_tcp.empty()) {
    return Status::error("collector needs at least one ingest endpoint");
  }

  if (!im.options.ingest_uds.empty()) {
    Endpoint ep;
    ep.uds = true;
    ep.path = im.options.ingest_uds;
    auto fd = listen_endpoint(ep, 128);
    if (!fd.is_ok()) return fd.status();
    im.ingest_uds_fd = fd.value();
    (void)set_nonblocking(im.ingest_uds_fd);
  }
  if (!im.options.ingest_tcp.empty()) {
    Endpoint ep;
    if (!parse_endpoint(im.options.ingest_tcp, &ep) || ep.uds) {
      stop();
      return Status::error("malformed ingest TCP endpoint: " +
                           im.options.ingest_tcp);
    }
    auto fd = listen_endpoint(ep, 128);
    if (!fd.is_ok()) {
      stop();
      return fd.status();
    }
    im.ingest_tcp_fd = fd.value();
    (void)set_nonblocking(im.ingest_tcp_fd);
  }
  {
    Endpoint ep;
    if (!parse_endpoint(im.options.http_tcp, &ep) || ep.uds) {
      stop();
      return Status::error("malformed HTTP endpoint: " + im.options.http_tcp);
    }
    auto fd = listen_endpoint(ep, 64);
    if (!fd.is_ok()) {
      stop();
      return fd.status();
    }
    im.http_fd = fd.value();
    (void)set_nonblocking(im.http_fd);
    auto port = local_port(im.http_fd);
    im.http_port = port.is_ok() ? port.value() : 0;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    stop();
    return Status::error("cannot create wake pipe");
  }
  im.wake_rd = pipe_fds[0];
  im.wake_wr = pipe_fds[1];
  (void)set_nonblocking(im.wake_rd);
  (void)set_nonblocking(im.wake_wr);

  unsigned shard_count = im.options.shards;
  if (shard_count == 0) {
    shard_count = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  im.shards.clear();
  for (unsigned i = 0; i < shard_count; ++i) {
    im.shards.push_back(std::make_unique<Shard>());
  }
  im.t0 = std::chrono::steady_clock::now();
  im.running.store(true, std::memory_order_release);
  for (auto& sh : im.shards) {
    Shard* raw = sh.get();
    raw->thread = std::thread([&im, raw] { im.shard_loop(raw); });
  }
  im.io_thread = std::thread([&im] { im.io_loop(); });
  telemetry::log_info(
      "collectd",
      "listening (ingest " +
          (im.options.ingest_uds.empty() ? im.options.ingest_tcp
                                         : "uds:" + im.options.ingest_uds) +
          ", http 127.0.0.1:" + std::to_string(im.http_port) + ", " +
          std::to_string(shard_count) + " shards)");
  return Status::ok();
}

void Collector::stop() {
  Impl& im = *impl_;
  if (im.running.exchange(false, std::memory_order_acq_rel)) {
    im.wake_io();
    if (im.io_thread.joinable()) im.io_thread.join();
    for (auto& sh : im.shards) {
      {
        const std::lock_guard<std::mutex> lock(sh->mu);
        sh->stop = true;
      }
      sh->cv.notify_one();
    }
    for (auto& sh : im.shards) {
      if (sh->thread.joinable()) sh->thread.join();
    }
  }
  auto close_fd = [](int* fd) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  };
  close_fd(&im.ingest_uds_fd);
  close_fd(&im.ingest_tcp_fd);
  close_fd(&im.http_fd);
  close_fd(&im.wake_rd);
  close_fd(&im.wake_wr);
  if (!im.options.ingest_uds.empty()) {
    (void)::unlink(im.options.ingest_uds.c_str());
  }
}

std::uint16_t Collector::http_port() const { return impl_->http_port; }

FleetSnapshot Collector::fleet() const {
  FleetSnapshot snap;
  const std::lock_guard<std::mutex> lock(impl_->fleet_mu);
  snap.functions = impl_->fleet_functions;
  snap.run_stats = impl_->fleet_run_stats;
  snap.sessions_folded = impl_->sessions_folded;
  snap.sessions_aborted = impl_->sessions_aborted;
  return snap;
}

int Collector::handle_query(const std::string& target, std::string* body) const {
  std::string content_type;
  return impl_->handle(target, "", body, &content_type);
}

int Collector::handle_query(const std::string& target, const std::string& accept,
                            std::string* body, std::string* content_type) const {
  return impl_->handle(target, accept, body, content_type);
}

}  // namespace tempest::collectd
