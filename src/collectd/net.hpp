// Minimal POSIX socket plumbing shared by the collect client, the
// collector daemon, and tempest-top --connect.
//
// Endpoints are spelled "uds:/path" or "tcp:host:port"; a bare
// "host:port" is accepted as TCP for CLI ergonomics. Everything here is
// blocking-with-timeout from the caller's perspective; the collector's
// IO loop flips accepted fds to non-blocking itself.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace tempest::collectd {

struct Endpoint {
  bool uds = false;
  std::string path;  ///< socket path (uds)
  std::string host;  ///< numeric or resolvable host (tcp)
  std::uint16_t port = 0;
};

/// Parse "uds:/path", "tcp:host:port", or "host:port". False on
/// malformed specs (empty path, non-numeric port, ...).
bool parse_endpoint(const std::string& spec, Endpoint* out);

/// Connect with a timeout; the returned fd is blocking again.
Result<int> connect_endpoint(const Endpoint& ep, double timeout_s);

/// Bind + listen (unlinking a stale UDS path first). TCP port 0 binds
/// an ephemeral port — read it back with local_port().
Result<int> listen_endpoint(const Endpoint& ep, int backlog);

/// The locally bound TCP port of a listening/connected socket.
Result<std::uint16_t> local_port(int fd);

Status set_nonblocking(int fd);

/// Write all of `data`, retrying short writes/EINTR. MSG_NOSIGNAL: a
/// dead peer returns EPIPE instead of raising SIGPIPE.
Status send_all(int fd, const char* data, std::size_t n);

/// One-shot HTTP/1.0 GET against a collector endpoint. Returns the
/// response body on a 200; errors carry the status line otherwise.
Result<std::string> http_get(const std::string& spec, const std::string& target,
                             double timeout_s);

}  // namespace tempest::collectd
