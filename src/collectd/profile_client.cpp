#include "collectd/profile_client.hpp"

#include <cstdlib>

#include "collectd/net.hpp"

namespace tempest::collectd {
namespace {

/// Cursor over the /profile JSON. The query plane emits a fixed shape
/// (see Impl::handle_profile), so a tolerant scanner beats a general
/// parser: find each field by key, skip what we don't know.
struct Scanner {
  const std::string& s;
  std::size_t pos = 0;

  bool find(const char* key, std::size_t limit) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = s.find(needle, pos);
    if (at == std::string::npos || at >= limit) return false;
    pos = at + needle.size();
    return true;
  }

  double number() {
    char* end = nullptr;
    const double v = std::strtod(s.c_str() + pos, &end);
    if (end != nullptr) pos = static_cast<std::size_t>(end - s.c_str());
    return v;
  }

  /// Decode the JSON string starting at pos (expects the opening
  /// quote); handles the escapes append_json_string produces.
  bool string(std::string* out) {
    if (pos >= s.size() || s[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= s.size()) return false;
      const char esc = s[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          const unsigned long cp = std::strtoul(s.substr(pos, 4).c_str(),
                                                nullptr, 16);
          pos += 4;
          out->push_back(static_cast<char>(cp & 0xFF));
          break;
        }
        default: out->push_back(esc); break;
      }
    }
    return false;
  }
};

}  // namespace

Result<FleetProfileView> parse_fleet_profile(const std::string& json) {
  FleetProfileView view;
  Scanner sc{json};
  if (sc.find("sessions_folded", json.size())) {
    view.sessions_folded = static_cast<std::uint64_t>(sc.number());
  }
  Scanner fns{json};
  if (!fns.find("functions", json.size())) {
    return Result<FleetProfileView>::error("/profile body has no functions array");
  }
  std::size_t pos = json.find('[', fns.pos);
  if (pos == std::string::npos) {
    return Result<FleetProfileView>::error("/profile functions array malformed");
  }
  ++pos;
  while (pos < json.size()) {
    const std::size_t obj = json.find_first_of("{]", pos);
    if (obj == std::string::npos || json[obj] == ']') break;
    // Function names never contain braces (append_json_string escapes
    // control characters and quotes only), so the first '}' ends the
    // object.
    const std::size_t end = json.find('}', obj);
    if (end == std::string::npos) {
      return Result<FleetProfileView>::error("/profile entry unterminated");
    }
    FleetProfileEntry e;
    Scanner field{json, obj};
    if (field.find("name", end) && !field.string(&e.name)) {
      return Result<FleetProfileView>::error("/profile entry name malformed");
    }
    Scanner calls{json, obj};
    if (calls.find("calls", end)) e.calls = static_cast<std::uint64_t>(calls.number());
    Scanner total{json, obj};
    if (total.find("total_time_s", end)) e.total_time_s = total.number();
    Scanner sess{json, obj};
    if (sess.find("sessions", end)) e.sessions = static_cast<std::uint64_t>(sess.number());
    Scanner mean{json, obj};
    if (mean.find("time_mean_s", end)) e.time_mean_s = mean.number();
    Scanner var{json, obj};
    if (var.find("time_var_s2", end)) e.time_var_s2 = var.number();
    view.functions.push_back(std::move(e));
    pos = end + 1;
  }
  return view;
}

Result<FleetProfileView> fetch_fleet_profile(const std::string& endpoint,
                                             std::size_t top,
                                             double timeout_s) {
  std::string target = "/profile";
  if (top > 0) target += "?top=" + std::to_string(top);
  auto body = http_get(endpoint, target, timeout_s);
  if (!body.is_ok()) return Result<FleetProfileView>::error(body.message());
  return parse_fleet_profile(body.value());
}

}  // namespace tempest::collectd
