// CollectClient: the recording side of the collector stream.
//
// One client per session run. connect() is bounded by a short timeout
// and failure is not an error for the session — the caller logs and
// records file-only (graceful degradation). After a successful
// connect, every send is best-effort: the first failing send marks the
// client dead and all later sends no-op, so a collector crash mid-run
// costs the profiled application one failed write, never a stall
// (blocking sends carry a SO_SNDTIMEO) and never a SIGPIPE.
//
// Thread contract: connect/close and the bulk sends happen on the
// session's controlling thread; send_heartbeat is called from the
// heartbeat thread while the run is live. A mutex serialises frame
// writes so the two never interleave a frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "collectd/wire.hpp"
#include "common/status.hpp"
#include "trace/trace.hpp"

namespace tempest::collectd {

class CollectClient {
 public:
  CollectClient() = default;
  ~CollectClient() { close(); }

  CollectClient(const CollectClient&) = delete;
  CollectClient& operator=(const CollectClient&) = delete;

  /// Connect to "uds:/path" or "tcp:host:port". Bounded by timeout_s.
  Status connect(const std::string& spec, double timeout_s = 0.5);

  /// Connected and no send has failed yet.
  bool alive() const { return fd_.load(std::memory_order_acquire) >= 0; }

  void send_hello(std::uint64_t pid, const std::string& name);
  void send_heartbeat(const std::string& line);
  /// Full final metadata (threads, synthetic symbols, RUNSTATS/FLTR
  /// trailers). Must precede the bulk sections.
  void send_meta(const trace::TraceHeader& header);
  void send_clock_syncs(const std::vector<trace::ClockSync>& syncs);
  void send_fn_events(const trace::FnEvent* events, std::size_t n);
  void send_temp_samples(const trace::TempSample* samples, std::size_t n);
  void send_bye(std::uint64_t events_sent, std::uint64_t samples_sent);

  void close();

 private:
  void send_frame(FrameType type, std::string_view payload);

  std::mutex mu_;
  std::atomic<int> fd_{-1};
};

}  // namespace tempest::collectd
