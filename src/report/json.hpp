// JSON profile dump ("data can be dumped to a file in a variety of
// formats" — text, CSV and JSON here).
#pragma once

#include <ostream>

#include "parser/profile.hpp"

namespace tempest::report {

/// Serialise the complete profile as a JSON object (stable key order,
/// strings escaped; suitable for downstream tooling). When `run_stats`
/// is non-null and present, a "run_stats" object with the recorder's
/// RUNSTATS trailer is appended — absent otherwise, so pre-RUNSTATS
/// traces keep their exact historical output.
void write_profile_json(std::ostream& out, const parser::RunProfile& profile,
                        const trace::RunStats* run_stats = nullptr);

/// Append `s` to `out` as a JSON string literal (surrounding quotes,
/// control characters and quotes/backslashes escaped). Shared by the
/// profile dump and the trace exporters, which build whole lines in a
/// string buffer before writing.
void append_json_string(std::string* out, const std::string& s);

}  // namespace tempest::report
