// JSON profile dump ("data can be dumped to a file in a variety of
// formats" — text, CSV and JSON here).
#pragma once

#include <ostream>

#include "parser/profile.hpp"

namespace tempest::report {

/// Serialise the complete profile as a JSON object (stable key order,
/// strings escaped; suitable for downstream tooling).
void write_profile_json(std::ostream& out, const parser::RunProfile& profile);

}  // namespace tempest::report
