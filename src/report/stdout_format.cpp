#include "report/stdout_format.hpp"

#include "common/fastwrite.hpp"

namespace tempest::report {
namespace {

void put(std::ostream& out, const std::string& buf) {
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// setw-style numeric column: fixed-point, right-aligned, no truncation
/// (matches the ostream formatting this printer historically used).
void append_col(std::string& out, double v, int decimals, std::size_t width) {
  std::string num;
  fastwrite::append_fixed(num, v, decimals);
  fastwrite::append_padded(out, num, width, /*left_align=*/false);
}

void append_stats_row(std::string& out, const parser::SensorProfile& sp) {
  fastwrite::append_padded(out, sp.name, 10, /*left_align=*/true);
  const StatsSummary& s = sp.stats;
  append_col(out, s.min, 2, 8);
  append_col(out, s.avg, 2, 8);
  append_col(out, s.max, 2, 8);
  append_col(out, s.sdv, 2, 8);
  append_col(out, s.var, 2, 8);
  append_col(out, s.med, 2, 8);
  append_col(out, s.mod, 2, 8);
  out += "\n";
}

}  // namespace

void print_function(std::ostream& out, const parser::FunctionProfile& fn,
                    TempUnit unit) {
  std::string buf;
  buf += "Function: ";
  buf += fn.name;
  buf += "    Total Time(sec): ";
  fastwrite::append_fixed(buf, fn.total_time_s, 6);
  if (!fn.significant) buf += "    [thermal data not significant]";
  buf += "\n";
  fastwrite::append_padded(buf, "", 10, /*left_align=*/true);
  for (const char* header : {"Min", "Avg", "Max", "Sdv", "Var", "Med", "Mod"}) {
    fastwrite::append_padded(buf, header, 8, /*left_align=*/false);
  }
  buf += "   (";
  buf += unit_suffix(unit);
  buf += ")\n";
  for (const auto& sp : fn.sensors) append_stats_row(buf, sp);
  put(out, buf);
}

void print_run_stats(std::ostream& out, const trace::RunStats& stats) {
  if (!stats.present) return;
  std::string buf;
  buf += "-- run stats (recorder self-measurement) --\n";
  buf += "  events recorded ";
  fastwrite::append_u64(buf, stats.events_recorded);
  if (stats.events_dropped > 0) {
    buf += "  DROPPED ";
    fastwrite::append_u64(buf, stats.events_dropped);
    buf += " (profile under-counts)";
  }
  if (stats.calls_observed > 0) {
    buf += "\n  admission: observed ";
    fastwrite::append_u64(buf, stats.calls_observed);
    buf += "  suppressed ";
    fastwrite::append_u64(buf, stats.events_suppressed);
    buf += "  throttled ";
    fastwrite::append_u64(buf, stats.events_throttled);
    buf += "  ring-overwritten ";
    fastwrite::append_u64(buf, stats.events_overwritten);
    if (stats.ring_snapshots > 0) {
      buf += "  snapshots ";
      fastwrite::append_u64(buf, stats.ring_snapshots);
    }
  }
  buf += "\n  threads ";
  fastwrite::append_u64(buf, stats.threads_registered);
  buf += "  buffer flushes ";
  fastwrite::append_u64(buf, stats.buffer_flushes);
  buf += "  wall ";
  fastwrite::append_fixed(buf, stats.wall_seconds, 3);
  buf += " sec\n  tempd ticks ";
  fastwrite::append_u64(buf, stats.tempd_ticks);
  buf += " (missed ";
  fastwrite::append_u64(buf, stats.tempd_missed_ticks);
  buf += ")  samples ";
  fastwrite::append_u64(buf, stats.tempd_samples);
  buf += "  read errors ";
  fastwrite::append_u64(buf, stats.tempd_read_errors);
  buf += "  sensor failures ";
  fastwrite::append_u64(buf, stats.sensor_read_failures);
  buf += "\n  tempd cpu ";
  fastwrite::append_fixed(buf, stats.tempd_cpu_seconds, 4);
  buf += " sec";
  if (stats.wall_seconds > 0.0) {
    buf += " (";
    fastwrite::append_fixed(
        buf, 100.0 * stats.tempd_cpu_seconds / stats.wall_seconds, 2);
    buf += "% of wall)";
  }
  buf += "  probe cost ~";
  fastwrite::append_fixed(buf, stats.probe_cost_ns_mean, 1);
  buf += " ns  jitter ~";
  fastwrite::append_fixed(buf, stats.cadence_jitter_us_mean, 1);
  buf += " us\n";
  put(out, buf);
}

void print_profile(std::ostream& out, const parser::RunProfile& profile,
                   const StdoutOptions& options) {
  for (const auto& node : profile.nodes) {
    if (options.node_headers) {
      std::string buf;
      buf += "== Node ";
      fastwrite::append_u64(buf, std::uint64_t{node.node_id} + 1);
      if (!node.hostname.empty()) {
        buf += " (";
        buf += node.hostname;
        buf += ")";
      }
      buf += "  duration ";
      fastwrite::append_fixed(buf, node.duration_s, 3);
      buf += " sec ==\n\n";
      put(out, buf);
    }
    std::size_t printed = 0;
    for (const auto& fn : node.functions) {
      if (!options.show_insignificant && !fn.significant) continue;
      if (options.max_functions != 0 && printed >= options.max_functions) break;
      print_function(out, fn, profile.unit);
      out << "\n";
      ++printed;
    }
  }
}

}  // namespace tempest::report
