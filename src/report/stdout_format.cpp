#include "report/stdout_format.hpp"

#include <iomanip>

namespace tempest::report {
namespace {

void print_stats_row(std::ostream& out, const parser::SensorProfile& sp) {
  out << std::left << std::setw(10) << sp.name << std::right << std::fixed
      << std::setprecision(2);
  const StatsSummary& s = sp.stats;
  out << std::setw(8) << s.min << std::setw(8) << s.avg << std::setw(8) << s.max
      << std::setw(8) << s.sdv << std::setw(8) << s.var << std::setw(8) << s.med
      << std::setw(8) << s.mod << "\n";
}

}  // namespace

void print_function(std::ostream& out, const parser::FunctionProfile& fn,
                    TempUnit unit) {
  out << "Function: " << fn.name << "    Total Time(sec): " << std::fixed
      << std::setprecision(6) << fn.total_time_s;
  if (!fn.significant) out << "    [thermal data not significant]";
  out << "\n";
  out << std::left << std::setw(10) << "" << std::right << std::setw(8) << "Min"
      << std::setw(8) << "Avg" << std::setw(8) << "Max" << std::setw(8) << "Sdv"
      << std::setw(8) << "Var" << std::setw(8) << "Med" << std::setw(8) << "Mod"
      << "   (" << unit_suffix(unit) << ")\n";
  for (const auto& sp : fn.sensors) print_stats_row(out, sp);
}

void print_run_stats(std::ostream& out, const trace::RunStats& stats) {
  if (!stats.present) return;
  out << "-- run stats (recorder self-measurement) --\n";
  out << "  events recorded " << stats.events_recorded;
  if (stats.events_dropped > 0) {
    out << "  DROPPED " << stats.events_dropped << " (profile under-counts)";
  }
  out << "\n";
  out << "  threads " << stats.threads_registered << "  buffer flushes "
      << stats.buffer_flushes << "  wall " << std::fixed << std::setprecision(3)
      << stats.wall_seconds << " sec\n";
  out << "  tempd ticks " << stats.tempd_ticks << " (missed "
      << stats.tempd_missed_ticks << ")  samples " << stats.tempd_samples
      << "  read errors " << stats.tempd_read_errors << "  sensor failures "
      << stats.sensor_read_failures << "\n";
  out << "  tempd cpu " << std::setprecision(4) << stats.tempd_cpu_seconds
      << " sec";
  if (stats.wall_seconds > 0.0) {
    out << " (" << std::setprecision(2)
        << 100.0 * stats.tempd_cpu_seconds / stats.wall_seconds << "% of wall)";
  }
  out << "  probe cost ~" << std::setprecision(1) << stats.probe_cost_ns_mean
      << " ns  jitter ~" << stats.cadence_jitter_us_mean << " us\n";
}

void print_profile(std::ostream& out, const parser::RunProfile& profile,
                   const StdoutOptions& options) {
  for (const auto& node : profile.nodes) {
    if (options.node_headers) {
      out << "== Node " << (node.node_id + 1);
      if (!node.hostname.empty()) out << " (" << node.hostname << ")";
      out << "  duration " << std::fixed << std::setprecision(3) << node.duration_s
          << " sec ==\n\n";
    }
    std::size_t printed = 0;
    for (const auto& fn : node.functions) {
      if (!options.show_insignificant && !fn.significant) continue;
      if (options.max_functions != 0 && printed >= options.max_functions) break;
      print_function(out, fn, profile.unit);
      out << "\n";
      ++printed;
    }
  }
}

}  // namespace tempest::report
