#include "report/json.hpp"

#include <cstdio>
#include <iomanip>

namespace tempest::report {
namespace {

void put_escaped(std::ostream& out, const std::string& s) {
  std::string buf;
  append_json_string(&buf, s);
  out << buf;
}

}  // namespace

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<int>(c));
          *out += esc;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void write_profile_json(std::ostream& out, const parser::RunProfile& profile,
                        const trace::RunStats* run_stats) {
  out << std::fixed << std::setprecision(6);
  out << "{\"unit\":\"" << unit_suffix(profile.unit) << "\",";
  out << "\"duration_s\":" << profile.duration_s << ",";
  out << "\"unmatched_exits\":" << profile.diagnostics.unmatched_exits << ",";
  out << "\"force_closed\":" << profile.diagnostics.force_closed << ",";
  out << "\"nodes\":[";
  for (std::size_t n = 0; n < profile.nodes.size(); ++n) {
    const auto& node = profile.nodes[n];
    if (n > 0) out << ",";
    out << "{\"node_id\":" << node.node_id << ",\"hostname\":";
    put_escaped(out, node.hostname);
    out << ",\"duration_s\":" << node.duration_s << ",\"functions\":[";
    for (std::size_t f = 0; f < node.functions.size(); ++f) {
      const auto& fn = node.functions[f];
      if (f > 0) out << ",";
      out << "{\"name\":";
      put_escaped(out, fn.name);
      out << ",\"total_time_s\":" << fn.total_time_s << ",\"calls\":" << fn.calls
          << ",\"significant\":" << (fn.significant ? "true" : "false")
          << ",\"sensors\":[";
      for (std::size_t s = 0; s < fn.sensors.size(); ++s) {
        const auto& sp = fn.sensors[s];
        if (s > 0) out << ",";
        out << "{\"name\":";
        put_escaped(out, sp.name);
        out << ",\"samples\":" << sp.sample_count << ",\"min\":" << sp.stats.min
            << ",\"avg\":" << sp.stats.avg << ",\"max\":" << sp.stats.max
            << ",\"sdv\":" << sp.stats.sdv << ",\"var\":" << sp.stats.var
            << ",\"med\":" << sp.stats.med << ",\"mod\":" << sp.stats.mod << "}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]";
  if (run_stats != nullptr && run_stats->present) {
    const trace::RunStats& rs = *run_stats;
    out << ",\"run_stats\":{"
        << "\"events_recorded\":" << rs.events_recorded
        << ",\"events_dropped\":" << rs.events_dropped
        << ",\"buffer_flushes\":" << rs.buffer_flushes
        << ",\"threads_registered\":" << rs.threads_registered
        << ",\"tempd_ticks\":" << rs.tempd_ticks
        << ",\"tempd_missed_ticks\":" << rs.tempd_missed_ticks
        << ",\"tempd_samples\":" << rs.tempd_samples
        << ",\"tempd_read_errors\":" << rs.tempd_read_errors
        << ",\"sensor_read_failures\":" << rs.sensor_read_failures
        << ",\"heartbeats\":" << rs.heartbeats
        << ",\"peak_rss_kb\":" << rs.peak_rss_kb
        << ",\"wall_seconds\":" << rs.wall_seconds
        << ",\"tempd_cpu_seconds\":" << rs.tempd_cpu_seconds
        << ",\"probe_cost_ns_mean\":" << rs.probe_cost_ns_mean
        << ",\"cadence_jitter_us_mean\":" << rs.cadence_jitter_us_mean << "}";
  }
  out << "}";
}

}  // namespace tempest::report
