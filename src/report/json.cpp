#include "report/json.hpp"

#include "common/fastwrite.hpp"

namespace tempest::report {
namespace {

/// %.6f — the precision the stream-based writer historically set with
/// std::fixed << std::setprecision(6).
void append_num(std::string& out, double v) {
  fastwrite::append_fixed(out, v, 6);
}

}  // namespace

void append_json_string(std::string* out, const std::string& s) {
  static constexpr char kHexDigits[] = "0123456789abcdef";
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += "\\u00";
          out->push_back(kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out->push_back(kHexDigits[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void write_profile_json(std::ostream& out, const parser::RunProfile& profile,
                        const trace::RunStats* run_stats) {
  std::string buf;
  buf.reserve(std::size_t{16} << 10);
  buf += "{\"unit\":\"";
  buf += unit_suffix(profile.unit);
  buf += "\",\"duration_s\":";
  append_num(buf, profile.duration_s);
  buf += ",\"unmatched_exits\":";
  fastwrite::append_u64(buf, profile.diagnostics.unmatched_exits);
  buf += ",\"force_closed\":";
  fastwrite::append_u64(buf, profile.diagnostics.force_closed);
  buf += ",\"nodes\":[";
  for (std::size_t n = 0; n < profile.nodes.size(); ++n) {
    const auto& node = profile.nodes[n];
    if (n > 0) buf += ",";
    buf += "{\"node_id\":";
    fastwrite::append_u64(buf, node.node_id);
    buf += ",\"hostname\":";
    append_json_string(&buf, node.hostname);
    buf += ",\"duration_s\":";
    append_num(buf, node.duration_s);
    buf += ",\"functions\":[";
    for (std::size_t f = 0; f < node.functions.size(); ++f) {
      const auto& fn = node.functions[f];
      if (f > 0) buf += ",";
      buf += "{\"name\":";
      append_json_string(&buf, fn.name);
      buf += ",\"total_time_s\":";
      append_num(buf, fn.total_time_s);
      buf += ",\"calls\":";
      fastwrite::append_u64(buf, fn.calls);
      buf += ",\"activations\":";
      fastwrite::append_u64(buf, fn.time.count);
      buf += ",\"time_mean_s\":";
      append_num(buf, fn.time.mean_s);
      buf += ",\"time_sdv_s\":";
      append_num(buf, fn.time.sdv_s);
      buf += ",\"time_var_s2\":";
      append_num(buf, fn.time.var_s2);
      buf += ",\"significant\":";
      buf += fn.significant ? "true" : "false";
      buf += ",\"sensors\":[";
      for (std::size_t s = 0; s < fn.sensors.size(); ++s) {
        const auto& sp = fn.sensors[s];
        if (s > 0) buf += ",";
        buf += "{\"name\":";
        append_json_string(&buf, sp.name);
        buf += ",\"samples\":";
        fastwrite::append_u64(buf, sp.sample_count);
        buf += ",\"min\":";
        append_num(buf, sp.stats.min);
        buf += ",\"avg\":";
        append_num(buf, sp.stats.avg);
        buf += ",\"max\":";
        append_num(buf, sp.stats.max);
        buf += ",\"sdv\":";
        append_num(buf, sp.stats.sdv);
        buf += ",\"var\":";
        append_num(buf, sp.stats.var);
        buf += ",\"med\":";
        append_num(buf, sp.stats.med);
        buf += ",\"mod\":";
        append_num(buf, sp.stats.mod);
        buf += "}";
      }
      buf += "]}";
    }
    buf += "]}";
  }
  buf += "]";
  if (run_stats != nullptr && run_stats->present) {
    const trace::RunStats& rs = *run_stats;
    buf += ",\"run_stats\":{\"events_recorded\":";
    fastwrite::append_u64(buf, rs.events_recorded);
    buf += ",\"events_dropped\":";
    fastwrite::append_u64(buf, rs.events_dropped);
    buf += ",\"events_suppressed\":";
    fastwrite::append_u64(buf, rs.events_suppressed);
    buf += ",\"events_throttled\":";
    fastwrite::append_u64(buf, rs.events_throttled);
    buf += ",\"events_overwritten\":";
    fastwrite::append_u64(buf, rs.events_overwritten);
    buf += ",\"calls_observed\":";
    fastwrite::append_u64(buf, rs.calls_observed);
    buf += ",\"ring_snapshots\":";
    fastwrite::append_u64(buf, rs.ring_snapshots);
    buf += ",\"buffer_flushes\":";
    fastwrite::append_u64(buf, rs.buffer_flushes);
    buf += ",\"threads_registered\":";
    fastwrite::append_u64(buf, rs.threads_registered);
    buf += ",\"tempd_ticks\":";
    fastwrite::append_u64(buf, rs.tempd_ticks);
    buf += ",\"tempd_missed_ticks\":";
    fastwrite::append_u64(buf, rs.tempd_missed_ticks);
    buf += ",\"tempd_samples\":";
    fastwrite::append_u64(buf, rs.tempd_samples);
    buf += ",\"tempd_read_errors\":";
    fastwrite::append_u64(buf, rs.tempd_read_errors);
    buf += ",\"sensor_read_failures\":";
    fastwrite::append_u64(buf, rs.sensor_read_failures);
    buf += ",\"heartbeats\":";
    fastwrite::append_u64(buf, rs.heartbeats);
    buf += ",\"peak_rss_kb\":";
    fastwrite::append_u64(buf, rs.peak_rss_kb);
    buf += ",\"wall_seconds\":";
    append_num(buf, rs.wall_seconds);
    buf += ",\"tempd_cpu_seconds\":";
    append_num(buf, rs.tempd_cpu_seconds);
    buf += ",\"probe_cost_ns_mean\":";
    append_num(buf, rs.probe_cost_ns_mean);
    buf += ",\"cadence_jitter_us_mean\":";
    append_num(buf, rs.cadence_jitter_us_mean);
    buf += "}";
  }
  buf += "}";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace tempest::report
