#include "report/series.hpp"

#include <algorithm>
#include <map>

#include "common/fastwrite.hpp"
#include "parser/parse.hpp"
#include "parser/timeline.hpp"

namespace tempest::report {

ThermalSeries build_series(const trace::TraceHeader& meta,
                           const std::vector<trace::TempSample>& samples,
                           std::uint64_t start_tsc, std::uint64_t end_tsc,
                           TempUnit unit,
                           const std::vector<std::string>& span_functions,
                           const parser::TimelineMap* timeline) {
  ThermalSeries out;
  out.unit = unit;

  const std::uint64_t start = start_tsc;
  const double rate = meta.tsc_ticks_per_second > 0.0 ? meta.tsc_ticks_per_second : 1.0;
  auto to_s = [&](std::uint64_t tsc) {
    return tsc > start ? static_cast<double>(tsc - start) / rate : 0.0;
  };
  out.duration_s = to_s(end_tsc);

  std::map<std::uint16_t, std::string> node_names;
  for (const auto& n : meta.nodes) node_names[n.node_id] = n.hostname;
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::string> sensor_names;
  for (const auto& s : meta.sensors) sensor_names[{s.node_id, s.sensor_id}] = s.name;

  std::map<std::pair<std::uint16_t, std::uint16_t>, std::size_t> index;
  for (const auto& s : samples) {
    const auto key = std::make_pair(s.node_id, s.sensor_id);
    auto it = index.find(key);
    if (it == index.end()) {
      SensorSeries series;
      series.node_id = s.node_id;
      series.sensor_id = s.sensor_id;
      series.node_name = node_names.count(s.node_id) ? node_names[s.node_id]
                                                     : "node" + std::to_string(s.node_id + 1);
      series.sensor_name = sensor_names.count(key)
                               ? sensor_names[key]
                               : "sensor" + std::to_string(s.sensor_id + 1);
      index[key] = out.sensors.size();
      out.sensors.push_back(std::move(series));
      it = index.find(key);
    }
    out.sensors[it->second].points.push_back({to_s(s.tsc), to_unit(s.temp_c, unit)});
  }
  std::sort(out.sensors.begin(), out.sensors.end(),
            [](const SensorSeries& a, const SensorSeries& b) {
              return std::tie(a.node_id, a.sensor_id) < std::tie(b.node_id, b.sensor_id);
            });

  if (!span_functions.empty() && timeline != nullptr) {
    // Span naming deliberately has no hex fallback: spans are requested
    // by human-readable name, so an unresolvable address can never match.
    std::map<std::uint64_t, std::string> names;
    for (const auto& s : meta.synthetic_symbols) names[s.addr] = s.name;
    auto resolver = symtab::Resolver::for_executable(meta.executable, meta.load_bias);
    for (const auto& [key, fi] : *timeline) {
      if (names.count(fi.addr) == 0 && resolver.is_ok()) {
        names[fi.addr] = resolver.value().resolve(fi.addr);
      }
    }
    for (const auto& [key, fi] : *timeline) {
      const auto name_it = names.find(fi.addr);
      if (name_it == names.end()) continue;
      if (std::find(span_functions.begin(), span_functions.end(), name_it->second) ==
          span_functions.end()) {
        continue;
      }
      for (const auto& iv : fi.merged) {
        out.spans.push_back({key.first, name_it->second, to_s(iv.begin), to_s(iv.end)});
      }
    }
    std::sort(out.spans.begin(), out.spans.end(),
              [](const FunctionSpan& a, const FunctionSpan& b) {
                return std::tie(a.node_id, a.begin_s) < std::tie(b.node_id, b.begin_s);
              });
  }
  return out;
}

ThermalSeries extract_series(const trace::Trace& trace, TempUnit unit,
                             const std::vector<std::string>& span_functions) {
  if (span_functions.empty()) {
    return build_series(trace, trace.temp_samples, trace.start_tsc(),
                        trace.end_tsc(), unit);
  }
  // Reuse the parser's timeline + symbolisation to find the functions.
  parser::TimelineDiagnostics diag;
  const parser::TimelineMap timeline = parser::build_timeline(trace, &diag);
  return build_series(trace, trace.temp_samples, trace.start_tsc(),
                      trace.end_tsc(), unit, span_functions, &timeline);
}

void write_series_csv(std::ostream& out, const ThermalSeries& series) {
  // append_general matches the default-formatted ostream doubles this
  // writer historically produced; the buffered fastwrite path turns a
  // point per write call into coarse appends.
  fastwrite::BufferedWriter writer(out);
  std::string line;
  line += "time_s,node,sensor,temp_";
  line += unit_suffix(series.unit);
  line += "\n";
  writer.append(line);
  for (const auto& s : series.sensors) {
    // The node/sensor columns repeat for every point; format them once.
    std::string mid = ",";
    mid += s.node_name;
    mid += ",";
    mid += s.sensor_name;
    mid += ",";
    for (const auto& p : s.points) {
      line.clear();
      fastwrite::append_general(line, p.time_s);
      line += mid;
      fastwrite::append_general(line, p.temp);
      line += "\n";
      writer.append(line);
    }
  }
  for (const auto& span : series.spans) {
    line.clear();
    line += "# span,";
    fastwrite::append_u64(line, span.node_id);
    line += ",";
    line += span.name;
    line += ",";
    fastwrite::append_general(line, span.begin_s);
    line += ",";
    fastwrite::append_general(line, span.end_s);
    line += "\n";
    writer.append(line);
  }
}

}  // namespace tempest::report
