// ASCII rendering of thermal profiles (terminal stand-in for the
// paper's Figure 2b / 3 / 4 plots).
//
// Each node renders as one chart: y-axis temperature, x-axis seconds,
// one glyph per sensor; function spans draw as a band across the top,
// matching "the duration of each function is shown across the top of
// the figure". Multi-node output stacks charts vertically with a shared
// x-axis so phase alignment across nodes is visible (Figs 3/4).
#pragma once

#include <ostream>

#include "report/series.hpp"

namespace tempest::report {

struct PlotOptions {
  int width = 90;   ///< plot body columns
  int height = 14;  ///< plot body rows per node
  /// Render only this sensor name on each node ("" = all sensors).
  std::string sensor_filter;
  /// Pad the y-range by this many degrees on both sides.
  double y_margin = 1.0;
};

void plot_series(std::ostream& out, const ThermalSeries& series,
                 const PlotOptions& options = {});

}  // namespace tempest::report
