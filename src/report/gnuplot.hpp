// Gnuplot output: a publication-style rendering of the Fig 2b/3/4
// thermal profiles ("data can be dumped to a file in a variety of
// formats").
//
// Emits a .dat file (one block per node/sensor series, blank-line
// separated) and a .gp driver script that renders stacked per-node
// panels with shared axes — the layout of the paper's Figures 3/4.
#pragma once

#include <ostream>

#include "report/series.hpp"

namespace tempest::report {

/// Data file: "# node sensor" header comments, then "time temp" rows,
/// series separated by two blank lines (gnuplot index-addressable).
void write_series_gnuplot_data(std::ostream& out, const ThermalSeries& series);

/// Driver script that plots `data_path` as one panel per node using
/// multiplot; function spans render as shaded x-ranges.
void write_series_gnuplot_script(std::ostream& out, const ThermalSeries& series,
                                 const std::string& data_path,
                                 const std::string& output_png = "profile.png");

}  // namespace tempest::report
