#include "report/gnuplot.hpp"

#include <map>
#include <set>
#include <vector>

namespace tempest::report {

void write_series_gnuplot_data(std::ostream& out, const ThermalSeries& series) {
  bool first = true;
  for (const auto& s : series.sensors) {
    if (!first) out << "\n\n";
    first = false;
    out << "# node=" << s.node_name << " sensor=" << s.sensor_name << "\n";
    for (const auto& p : s.points) {
      out << p.time_s << " " << p.temp << "\n";
    }
  }
}

void write_series_gnuplot_script(std::ostream& out, const ThermalSeries& series,
                                 const std::string& data_path,
                                 const std::string& output_png) {
  // Node list and the series index each (node, sensor) occupies.
  std::vector<std::uint16_t> nodes;
  std::map<std::uint16_t, std::vector<std::pair<int, std::string>>> node_series;
  int index = 0;
  for (const auto& s : series.sensors) {
    if (node_series.find(s.node_id) == node_series.end()) nodes.push_back(s.node_id);
    node_series[s.node_id].push_back({index++, s.sensor_name});
  }
  if (nodes.empty()) {
    out << "# no data\n";
    return;
  }

  out << "# Tempest thermal profile (generated)\n";
  out << "set terminal pngcairo size 900," << 220 * nodes.size()
      << " enhanced\n";
  out << "set output '" << output_png << "'\n";
  out << "set multiplot layout " << nodes.size() << ",1 title 'Tempest thermal profile'\n";
  out << "set xlabel 'time (s)'\n";
  out << "set ylabel 'temp (" << unit_suffix(series.unit) << ")'\n";
  out << "set xrange [0:" << series.duration_s << "]\n";
  out << "set key outside right\n";

  for (std::uint16_t node : nodes) {
    // Function spans as shaded boxes behind the curves.
    int object_id = 1;
    for (const auto& span : series.spans) {
      if (span.node_id != node) continue;
      out << "set object " << object_id++ << " rect from " << span.begin_s
          << ", graph 0 to " << span.end_s
          << ", graph 1 fc rgb '#eeeeee' behind\n";
    }
    const auto& entries = node_series[node];
    out << "set title 'node " << (node + 1) << "'\n";
    out << "plot ";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out << ", ";
      out << "'" << data_path << "' index " << entries[i].first
          << " using 1:2 with linespoints title '" << entries[i].second << "'";
    }
    out << "\n";
    out << "unset object\n";
  }
  out << "unset multiplot\n";
}

}  // namespace tempest::report
