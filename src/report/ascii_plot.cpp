#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <set>
#include <vector>

namespace tempest::report {
namespace {

constexpr char kGlyphs[] = "*o+x#@%&";

struct NodeGroup {
  std::uint16_t node_id;
  std::string node_name;
  std::vector<const SensorSeries*> sensors;
};

}  // namespace

void plot_series(std::ostream& out, const ThermalSeries& series,
                 const PlotOptions& options) {
  if (series.sensors.empty()) {
    out << "(no temperature samples)\n";
    return;
  }
  const int w = std::max(20, options.width);
  const int h = std::max(5, options.height);
  const double duration = std::max(series.duration_s, 1e-9);

  // Group by node, apply the sensor filter.
  std::map<std::uint16_t, NodeGroup> groups;
  for (const auto& s : series.sensors) {
    if (!options.sensor_filter.empty() && s.sensor_name != options.sensor_filter) continue;
    auto& g = groups[s.node_id];
    g.node_id = s.node_id;
    g.node_name = s.node_name;
    g.sensors.push_back(&s);
  }

  // Shared y-range across all plotted sensors keeps node charts
  // comparable (the paper's stacked axes share scale per figure).
  double lo = 1e300, hi = -1e300;
  for (const auto& [id, g] : groups) {
    for (const auto* s : g.sensors) {
      for (const auto& p : s->points) {
        lo = std::min(lo, p.temp);
        hi = std::max(hi, p.temp);
      }
    }
  }
  if (lo > hi) {
    out << "(no samples after filtering)\n";
    return;
  }
  lo -= options.y_margin;
  hi += options.y_margin;
  if (hi - lo < 1e-9) hi = lo + 1.0;

  for (const auto& [id, g] : groups) {
    out << "--- " << g.node_name << " ---\n";

    // Function-span band across the top.
    const std::vector<FunctionSpan>* spans = &series.spans;
    std::string band(static_cast<std::size_t>(w), ' ');
    std::string labels;
    for (const auto& span : *spans) {
      if (span.node_id != g.node_id) continue;
      const int c0 = std::clamp(static_cast<int>(span.begin_s / duration * (w - 1)), 0, w - 1);
      const int c1 = std::clamp(static_cast<int>(span.end_s / duration * (w - 1)), c0, w - 1);
      for (int c = c0; c <= c1; ++c) band[static_cast<std::size_t>(c)] = '=';
      if (!labels.empty()) labels += "  ";
      labels += span.name + "[" + std::to_string(c0) + ".." + std::to_string(c1) + "]";
    }
    if (!labels.empty()) {
      out << "        " << band << "\n";
      out << "        spans: " << labels << "\n";
    }

    std::vector<std::string> grid(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
    std::size_t glyph_index = 0;
    std::vector<std::pair<char, std::string>> legend;
    for (const auto* s : g.sensors) {
      const char glyph = kGlyphs[glyph_index % (sizeof(kGlyphs) - 1)];
      ++glyph_index;
      legend.emplace_back(glyph, s->sensor_name);
      for (const auto& p : s->points) {
        const int col = std::clamp(static_cast<int>(p.time_s / duration * (w - 1)), 0, w - 1);
        const int row = std::clamp(
            static_cast<int>((hi - p.temp) / (hi - lo) * (h - 1)), 0, h - 1);
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = glyph;
      }
    }

    for (int r = 0; r < h; ++r) {
      const double y = hi - (hi - lo) * r / (h - 1);
      out << std::right << std::setw(6) << std::fixed << std::setprecision(1) << y
          << " |" << grid[static_cast<std::size_t>(r)] << "\n";
    }
    out << "       +" << std::string(static_cast<std::size_t>(w), '-') << "\n";
    out << "        0s" << std::string(static_cast<std::size_t>(w) - 12, ' ')
        << std::fixed << std::setprecision(1) << duration << "s\n";
    out << "        legend:";
    for (const auto& [glyph, name] : legend) out << " " << glyph << "=" << name;
    out << "  (" << unit_suffix(series.unit) << ")\n\n";
  }
}

}  // namespace tempest::report
