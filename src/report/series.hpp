// Thermal time-series extraction (the data behind Figs 2b, 3, 4).
//
// Converts a (clock-aligned) trace into per-node, per-sensor temperature
// curves plus the execution spans of named functions — the x-axis bands
// drawn "across the top of the figure" in the paper's profile plots.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "parser/timeline.hpp"
#include "trace/trace.hpp"

namespace tempest::report {

struct SeriesPoint {
  double time_s = 0.0;  ///< relative to trace start
  double temp = 0.0;    ///< in the requested unit
};

struct SensorSeries {
  std::uint16_t node_id = 0;
  std::uint16_t sensor_id = 0;
  std::string node_name;
  std::string sensor_name;
  std::vector<SeriesPoint> points;
};

struct FunctionSpan {
  std::uint16_t node_id = 0;
  std::string name;
  double begin_s = 0.0;
  double end_s = 0.0;
};

struct ThermalSeries {
  TempUnit unit = TempUnit::kFahrenheit;
  double duration_s = 0.0;
  std::vector<SensorSeries> sensors;
  std::vector<FunctionSpan> spans;
};

/// Extract curves from an aligned, time-sorted trace. When
/// `span_functions` names are given, their merged execution intervals
/// are emitted as spans (names match symbolised or synthetic names).
ThermalSeries extract_series(
    const trace::Trace& trace, TempUnit unit,
    const std::vector<std::string>& span_functions = {});

/// Streaming-friendly core behind extract_series: curves come from
/// metadata plus an already-aligned, time-sorted sample stream, and
/// spans from a timeline the caller has already built (required when
/// `span_functions` is non-empty; span names resolve as in
/// extract_series — synthetic symbols, then the executable's symtab).
/// Identical inputs produce byte-identical ThermalSeries either way.
ThermalSeries build_series(const trace::TraceHeader& meta,
                           const std::vector<trace::TempSample>& samples,
                           std::uint64_t start_tsc, std::uint64_t end_tsc,
                           TempUnit unit,
                           const std::vector<std::string>& span_functions = {},
                           const parser::TimelineMap* timeline = nullptr);

/// CSV: time_s,node,sensor,temp — one row per point, spans appended as
/// comment lines ("# span,<node>,<name>,<begin>,<end>").
void write_series_csv(std::ostream& out, const ThermalSeries& series);

}  // namespace tempest::report
