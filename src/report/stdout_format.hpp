// Tempest standard output (the paper's Figure 2a layout).
//
// "By default, Tempest writes data to the standard output": functions
// listed by total inclusive time, each with a per-sensor table of
// Min/Avg/Max/Sdv/Var/Med/Mod in the configured unit.
#pragma once

#include <cstddef>
#include <ostream>

#include "parser/profile.hpp"

namespace tempest::report {

struct StdoutOptions {
  /// Limit functions printed per node (0 = all).
  std::size_t max_functions = 0;
  /// Print functions flagged thermally insignificant (their snapshot
  /// row is annotated, as the paper discusses for short functions).
  bool show_insignificant = true;
  /// Print per-node headers (hostname + duration).
  bool node_headers = true;
};

void print_profile(std::ostream& out, const parser::RunProfile& profile,
                   const StdoutOptions& options = {});

/// One function's block only (used by table benches to print the exact
/// subset the paper's Tables 2/3 show).
void print_function(std::ostream& out, const parser::FunctionProfile& fn,
                    TempUnit unit);

/// Recorder self-measurement footer (trace-v2 RUNSTATS). No-op when the
/// trace predates the section; a drop count or over-budget overhead is
/// called out explicitly — the reader should not have to cross-check
/// counters to learn the profile under-counts.
void print_run_stats(std::ostream& out, const trace::RunStats& stats);

}  // namespace tempest::report
