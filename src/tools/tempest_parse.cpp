// The Tempest parser as a standalone command-line tool.
//
// Post-processing step of the paper's workflow: "run their code, and
// invoke the Tempest parser for post processing. By default, Tempest
// writes data to the standard output, but data can be dumped to a file
// in a variety of formats."
//
//   tempest_parse [options] <trace file>...
//     --unit C|F          report unit (default F, the paper's choice)
//     --format text|csv|json
//                         text  = the Fig 2a standard output (default)
//                         csv   = thermal time series
//                         json  = full profile dump
//     --plot [SENSOR]     append an ASCII thermal profile (Fig 2b style);
//                         optional sensor-name filter
//     --span FUNCTION     mark FUNCTION's execution spans on plots/CSV
//                         (repeatable)
//     --min-samples N     significance threshold (default 2)
//     --top N             print at most N functions per node
//     --gnuplot PREFIX    write PREFIX.dat + PREFIX.gp (render with
//                         `gnuplot PREFIX.gp` -> profile.png)
//     --stream            analyse incrementally with bounded memory
//                         (traces larger than RAM); needs a time-sorted
//                         trace, which recorded files are
//     --threads N         worker threads for decode + analysis (default
//                         hardware concurrency, TEMPEST_ANALYSIS_THREADS
//                         overrides); output is byte-identical at any N,
//                         --threads 1 is the historical serial path
//     --no-align          skip cross-node clock alignment (diagnostics)
//     --exe PATH          symbolise against PATH instead of the path
//                         recorded in the trace
//     --export FORMAT     emit an interactive timeline instead of a
//                         profile: perfetto (Chrome trace-event JSON,
//                         open at ui.perfetto.dev) or speedscope;
//                         honours --stream / --no-align / --exe and
//                         writes to standard output
//     --version           print tool and trace-format version
//
// Passing several trace files (one per MPI rank) fan-ins them in a
// single streaming pass: metadata is concatenated, clocks are fitted
// from every file's sync records, and events merge by aligned global
// time — the paper's parallel-hot-spot workflow without concatenating
// the files first.
#include <unistd.h>

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/worker_pool.hpp"
#include "export/run.hpp"
#include "pipeline/prefetch.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "report/ascii_plot.hpp"
#include "report/stdout_format.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--unit C|F] [--format text|csv|json] [--plot [SENSOR]]\n"
    "       [--span FUNCTION]... [--min-samples N] [--top N] [--gnuplot PREFIX]\n"
    "       [--stream] [--threads N] [--no-align] [--exe PATH]\n"
    "       [--export FORMAT] [--version] <trace file>...";

int fail_usage(const tempest::cli::ArgParser& args, const char* argv0,
               const std::string& message) {
  if (!message.empty()) std::cerr << "tempest_parse: " << message << "\n";
  args.print_usage(std::cerr, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;
  namespace cli = tempest::cli;
  namespace pipeline = tempest::pipeline;

  std::string format = "text", plot_sensor, exe_override, gnuplot_prefix;
  std::string export_format;
  std::vector<std::string> span_functions;
  bool plot = false, align = true, stream = false, version = false;
  tempest::parser::ProfileOptions profile_options;
  std::size_t top = 0;
  unsigned threads = cli::default_analysis_threads();

  cli::ArgParser args(kUsage);
  args.add_value("--unit", [&](const std::string& v) {
    if (!tempest::parse_temp_unit(v.c_str(), &profile_options.unit)) {
      return Status::error("bad unit '" + v + "' (use C or F)");
    }
    return Status::ok();
  });
  args.add_value("--format", [&](const std::string& v) {
    if (v != "text" && v != "csv" && v != "json") {
      return Status::error("unknown format '" + v + "'");
    }
    format = v;
    return Status::ok();
  });
  args.add_optional_value("--plot", [&](const std::string* v) {
    plot = true;
    if (v != nullptr) plot_sensor = *v;
  });
  args.add_value("--span", [&](const std::string& v) {
    span_functions.push_back(v);
    return Status::ok();
  });
  args.add_value("--min-samples", [&](const std::string& v) {
    return cli::parse_size(v, &profile_options.min_samples_significant);
  });
  args.add_value("--top", [&](const std::string& v) {
    return cli::parse_size(v, &top);
  });
  args.add_value("--gnuplot", [&](const std::string& v) {
    gnuplot_prefix = v;
    return Status::ok();
  });
  args.add_flag("--stream", [&] { stream = true; });
  args.add_value("--threads", [&](const std::string& v) {
    std::size_t n = 0;
    const Status parsed_n = cli::parse_size(v, &n);
    if (!parsed_n) return parsed_n;
    if (n == 0) return Status::error("--threads must be at least 1");
    threads = static_cast<unsigned>(std::min<std::size_t>(n, 1024));
    return Status::ok();
  });
  args.add_flag("--no-align", [&] { align = false; });
  args.add_value("--exe", [&](const std::string& v) {
    exe_override = v;
    return Status::ok();
  });
  args.add_value("--export", [&](const std::string& v) {
    tempest::exporter::Format probe;
    if (!tempest::exporter::parse_format(v, &probe)) {
      return Status::error("unknown export format '" + v +
                           "' (use perfetto or speedscope)");
    }
    export_format = v;
    return Status::ok();
  });
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (!parsed) return fail_usage(args, argv[0], parsed.message());
  if (version) {
    cli::print_version(std::cout, "tempest_parse",
                       tempest::trace::kTraceVersion);
    return 0;
  }
  if (args.help_requested()) return fail_usage(args, argv[0], "");
  const std::vector<std::string>& paths = args.positional();
  if (paths.empty()) return fail_usage(args, argv[0], "no trace file given");
  if (paths.size() > 1 && !align) {
    return fail_usage(args, argv[0],
                      "--no-align is incompatible with multi-file fan-in "
                      "(the merge orders ranks by aligned global time)");
  }

  if (!export_format.empty()) {
    // Timeline export replaces the profile emitters entirely; the
    // streaming and batch paths produce byte-identical output, so
    // --stream here only changes peak memory.
    tempest::exporter::ExportRunOptions export_options;
    tempest::exporter::parse_format(export_format, &export_options.format);
    export_options.stream = stream;
    export_options.align = align;
    export_options.exe_override = exe_override;
    export_options.threads = threads;
    export_options.spool_prefix =
        "/tmp/tempest_parse." + std::to_string(getpid());
    auto exported =
        tempest::exporter::run_export(paths, std::cout, export_options);
    if (!exported.is_ok()) {
      std::cerr << "tempest_parse: " << exported.message() << "\n";
      return 1;
    }
    for (const std::string& warning : exported.value().warnings) {
      std::cerr << "tempest_parse: warning: " << warning << "\n";
    }
    return 0;
  }

  pipeline::AnalysisOptions analysis_options;
  analysis_options.profile = profile_options;
  analysis_options.exe_override = exe_override;
  analysis_options.want_series =
      format == "csv" || plot || !gnuplot_prefix.empty();
  analysis_options.span_functions = span_functions;
  analysis_options.threads = threads;

  // One emitter list serves both paths: primary format first, then the
  // plot / gnuplot add-ons, in the order the batch tool printed them.
  std::vector<std::unique_ptr<pipeline::ProfileEmitter>> owned;
  tempest::report::StdoutOptions stdout_options;
  stdout_options.max_functions = top;
  tempest::report::PlotOptions plot_options;
  plot_options.sensor_filter = plot_sensor;
  if (format == "text") {
    owned.push_back(
        std::make_unique<pipeline::TextEmitter>(std::cout, stdout_options));
  } else if (format == "csv") {
    owned.push_back(std::make_unique<pipeline::CsvSeriesEmitter>(std::cout));
  } else {
    owned.push_back(std::make_unique<pipeline::JsonEmitter>(std::cout));
  }
  if (plot) {
    owned.push_back(
        std::make_unique<pipeline::AsciiPlotEmitter>(std::cout, plot_options));
  }
  if (!gnuplot_prefix.empty()) {
    owned.push_back(std::make_unique<pipeline::GnuplotEmitter>(gnuplot_prefix));
  }
  std::vector<pipeline::ProfileEmitter*> emitters;
  emitters.reserve(owned.size());
  for (const auto& e : owned) emitters.push_back(e.get());

  const tempest::parser::RunProfile* profile = nullptr;
  pipeline::AnalysisSink sink(analysis_options, emitters);
  pipeline::AnalysisResult batch_result;

  if (stream || paths.size() > 1) {
    // Streaming path: bounded memory, optionally multi-rank.
    pipeline::OrderCheckStage order;
    std::vector<pipeline::Stage*> stages;
    std::optional<tempest::WorkerPool> pool;
    std::optional<pipeline::ChunkedTraceSource> chunked;
    std::optional<pipeline::ClockAlignStage> align_stage;
    std::optional<pipeline::RankFanIn> fan;
    pipeline::Source* source = nullptr;
    if (paths.size() > 1) {
      auto opened = pipeline::RankFanIn::open(paths);
      if (!opened.is_ok()) {
        std::cerr << "tempest_parse: " << opened.message() << "\n";
        return 1;
      }
      fan.emplace(std::move(opened).value());
      source = &*fan;  // already aligned and merged; just verify order
    } else {
      auto opened = pipeline::ChunkedTraceSource::open(paths[0]);
      if (!opened.is_ok()) {
        std::cerr << "tempest_parse: " << opened.message() << "\n";
        return 1;
      }
      chunked.emplace(std::move(opened).value());
      if (threads > 1) {
        pool.emplace(threads);
        chunked->set_decode_pool(&*pool);
      }
      if (align) {
        auto fits = chunked->clock_fits();
        if (!fits.is_ok()) {
          std::cerr << "tempest_parse: " << fits.message() << "\n";
          return 1;
        }
        align_stage.emplace(std::move(fits).value());
        stages.push_back(&*align_stage);
      }
      source = &*chunked;
    }
    stages.push_back(&order);
    // Read-ahead decorator overlaps I/O + decode with the fold; declared
    // after the sources so its producer thread joins before they die.
    std::optional<pipeline::PrefetchSource> prefetch;
    if (threads > 1) {
      prefetch.emplace(source);
      source = &*prefetch;
    }
    const Status ran = pipeline::run_pipeline(source, stages, {&sink});
    if (!ran) {
      std::cerr << "tempest_parse: " << ran.message() << "\n";
      return 1;
    }
    profile = &sink.result().profile;
  } else {
    // Batch path: load, align (loudly — a failed fit is an error, not a
    // silently skewed report), fold through the same analysis core.
    auto loaded = tempest::trace::read_trace_file(paths[0]);
    if (!loaded.is_ok()) {
      std::cerr << "tempest_parse: cannot read trace: " << loaded.message()
                << "\n";
      return 1;
    }
    tempest::trace::Trace trace = std::move(loaded).value();
    if (align) {
      const Status aligned = tempest::trace::align_clocks(&trace);
      if (!aligned) {
        std::cerr << "tempest_parse: " << aligned.message() << "\n";
        return 1;
      }
    } else {
      trace.sort_by_time();
    }
    analysis_options.timeline_hint =
        std::min(trace.fn_events.size() / 8 + 16, std::size_t{1} << 16);
    pipeline::AnalysisPipeline fold(analysis_options);
    fold.set_metadata(trace);
    fold.set_bounds(trace.start_tsc(), trace.end_tsc());
    fold.add_fn_events(trace.fn_events.data(), trace.fn_events.size());
    fold.add_temp_samples(trace.temp_samples.data(), trace.temp_samples.size());
    batch_result = fold.finish();
    for (pipeline::ProfileEmitter* emitter : emitters) {
      const Status emitted = emitter->emit(batch_result);
      if (!emitted) {
        std::cerr << "tempest_parse: " << emitted.message() << "\n";
        return 1;
      }
    }
    profile = &batch_result.profile;
  }

  if (!gnuplot_prefix.empty()) {
    std::cerr << "wrote " << gnuplot_prefix << ".dat and " << gnuplot_prefix
              << ".gp\n";
  }
  if (profile->diagnostics.unmatched_exits > 0 ||
      profile->diagnostics.force_closed > 0) {
    std::cerr << "note: " << profile->diagnostics.unmatched_exits
              << " unmatched exits, " << profile->diagnostics.force_closed
              << " functions force-closed at trace end\n";
  }
  return 0;
}
