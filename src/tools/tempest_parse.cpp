// The Tempest parser as a standalone command-line tool.
//
// Post-processing step of the paper's workflow: "run their code, and
// invoke the Tempest parser for post processing. By default, Tempest
// writes data to the standard output, but data can be dumped to a file
// in a variety of formats."
//
//   tempest_parse [options] <trace file>
//     --unit C|F          report unit (default F, the paper's choice)
//     --format text|csv|json
//                         text  = the Fig 2a standard output (default)
//                         csv   = thermal time series
//                         json  = full profile dump
//     --plot [SENSOR]     append an ASCII thermal profile (Fig 2b style);
//                         optional sensor-name filter
//     --span FUNCTION     mark FUNCTION's execution spans on plots/CSV
//                         (repeatable)
//     --min-samples N     significance threshold (default 2)
//     --top N             print at most N functions per node
//     --gnuplot PREFIX    write PREFIX.dat + PREFIX.gp (render with
//                         `gnuplot PREFIX.gp` -> profile.png)
//     --no-align          skip cross-node clock alignment (diagnostics)
//     --exe PATH          symbolise against PATH instead of the path
//                         recorded in the trace
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "parser/parse.hpp"
#include "report/ascii_plot.hpp"
#include <fstream>

#include "report/gnuplot.hpp"
#include "report/json.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--unit C|F] [--format text|csv|json] [--plot [SENSOR]]\n"
               "       [--span FUNCTION]... [--min-samples N] [--top N]\n"
               "       [--no-align] [--exe PATH] <trace file>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, format = "text", plot_sensor, exe_override, gnuplot_prefix;
  std::vector<std::string> span_functions;
  bool plot = false, align = true;
  tempest::parser::ParseOptions options;
  std::size_t top = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unit") {
      if (!tempest::parse_temp_unit(next("--unit"), &options.profile.unit)) {
        std::cerr << "bad unit (use C or F)\n";
        return 2;
      }
    } else if (arg == "--format") {
      format = next("--format");
    } else if (arg == "--plot") {
      plot = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') plot_sensor = argv[++i];
    } else if (arg == "--span") {
      span_functions.push_back(next("--span"));
    } else if (arg == "--min-samples") {
      options.profile.min_samples_significant =
          static_cast<std::size_t>(std::strtoul(next("--min-samples"), nullptr, 10));
    } else if (arg == "--top") {
      top = static_cast<std::size_t>(std::strtoul(next("--top"), nullptr, 10));
    } else if (arg == "--gnuplot") {
      gnuplot_prefix = next("--gnuplot");
    } else if (arg == "--no-align") {
      align = false;
    } else if (arg == "--exe") {
      exe_override = next("--exe");
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage(argv[0]);
  options.align_clocks = align;

  auto loaded = tempest::trace::read_trace_file(path);
  if (!loaded.is_ok()) {
    std::cerr << "cannot read trace: " << loaded.message() << "\n";
    return 1;
  }
  tempest::trace::Trace trace = std::move(loaded).value();
  if (!exe_override.empty()) trace.executable = exe_override;
  tempest::trace::Trace for_series = trace;  // series need the raw samples

  auto parsed = tempest::parser::parse_trace(std::move(trace), options);
  if (!parsed.is_ok()) {
    std::cerr << "parse failed: " << parsed.message() << "\n";
    return 1;
  }
  const auto& profile = parsed.value();

  if (align) (void)tempest::trace::align_clocks(&for_series);

  if (format == "text") {
    tempest::report::StdoutOptions stdout_options;
    stdout_options.max_functions = top;
    tempest::report::print_profile(std::cout, profile, stdout_options);
  } else if (format == "csv") {
    const auto series = tempest::report::extract_series(
        for_series, options.profile.unit, span_functions);
    tempest::report::write_series_csv(std::cout, series);
  } else if (format == "json") {
    tempest::report::write_profile_json(std::cout, profile);
    std::cout << "\n";
  } else {
    std::cerr << "unknown format '" << format << "'\n";
    return 2;
  }

  if (plot) {
    const auto series = tempest::report::extract_series(
        for_series, options.profile.unit, span_functions);
    tempest::report::PlotOptions plot_options;
    plot_options.sensor_filter = plot_sensor;
    tempest::report::plot_series(std::cout, series, plot_options);
  }

  if (!gnuplot_prefix.empty()) {
    const auto series = tempest::report::extract_series(
        for_series, options.profile.unit, span_functions);
    std::ofstream dat(gnuplot_prefix + ".dat");
    tempest::report::write_series_gnuplot_data(dat, series);
    std::ofstream gp(gnuplot_prefix + ".gp");
    tempest::report::write_series_gnuplot_script(gp, series, gnuplot_prefix + ".dat",
                                                 gnuplot_prefix + ".png");
    std::cerr << "wrote " << gnuplot_prefix << ".dat and " << gnuplot_prefix
              << ".gp\n";
  }

  if (profile.diagnostics.unmatched_exits > 0 || profile.diagnostics.force_closed > 0) {
    std::cerr << "note: " << profile.diagnostics.unmatched_exits
              << " unmatched exits, " << profile.diagnostics.force_closed
              << " functions force-closed at trace end\n";
  }
  return 0;
}
