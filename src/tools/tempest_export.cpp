// Interactive trace export: recorded Tempest traces -> timeline files
// that open directly in Perfetto / chrome://tracing or speedscope.
//
//   tempest-export [options] <trace file>...
//     --format perfetto|speedscope
//                       output format (default perfetto; "chrome" is an
//                       alias for perfetto)
//     --out FILE        output path; default <first trace>.<format>.json,
//                       "-" writes to standard output
//     --merge-ranks     required to fan-in several per-rank trace files
//                       into one cross-rank timeline (clock-correlated)
//     --stream          stream from disk in bounded batches (traces
//                       larger than RAM); output bytes are identical
//     --threads N       worker threads for streaming decode/read-ahead
//                       (default hardware concurrency, or the
//                       TEMPEST_ANALYSIS_THREADS env var); output is
//                       byte-identical at any N
//     --no-align        skip cross-node clock alignment (diagnostics)
//     --no-symbolize    render raw addresses instead of symbol names
//     --exe PATH        symbolise against PATH instead of the recorded
//                       executable path
//     --version         print tool and trace-format version
//
// Multi-rank: pass one trace per rank with --merge-ranks. Ranks merge
// by aligned global time; the output's metadata section reports each
// rank's clock skew, drift, and fit residual, and the tool warns when
// the residual exceeds the temperature sample period (cross-rank
// attribution would smear). A telemetry snapshot is appended to
// <out>.telemetry.jsonl so `tempest-top --once` can show export runs.
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "export/run.hpp"
#include "telemetry/metrics.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--format perfetto|speedscope] [--out FILE] [--merge-ranks]\n"
    "       [--stream] [--threads N] [--no-align] [--no-symbolize]\n"
    "       [--exe PATH] [--version] <trace file>...";

int fail_usage(const tempest::cli::ArgParser& args, const char* argv0,
               const std::string& message) {
  if (!message.empty()) std::cerr << "tempest-export: " << message << "\n";
  args.print_usage(std::cerr, argv0);
  return 2;
}

/// One flat snapshot line, same shape as the recorder's heartbeat
/// sidecar, so tempest-top can render what an export run did.
void write_telemetry_sidecar(const std::string& out_path) {
  std::ofstream side(out_path + ".telemetry.jsonl",
                     std::ios::app | std::ios::binary);
  if (!side.is_open()) return;  // best effort: telemetry never fails a run
  tempest::telemetry::write_snapshot_json(
      side, tempest::telemetry::metrics().snapshot(), 0.0);
  side << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;
  namespace cli = tempest::cli;
  namespace exporter = tempest::exporter;

  exporter::ExportRunOptions options;
  options.threads = cli::default_analysis_threads();
  std::string out_path;
  bool merge_ranks = false, version = false;

  cli::ArgParser args(kUsage);
  args.add_value("--format", [&](const std::string& v) {
    if (!exporter::parse_format(v, &options.format)) {
      return Status::error("unknown format '" + v +
                           "' (use perfetto or speedscope)");
    }
    return Status::ok();
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return Status::ok();
  });
  args.add_flag("--merge-ranks", [&] { merge_ranks = true; });
  args.add_flag("--stream", [&] { options.stream = true; });
  args.add_value("--threads", [&](const std::string& v) {
    std::size_t n = 0;
    const Status parsed_n = cli::parse_size(v, &n);
    if (!parsed_n) return parsed_n;
    if (n == 0) return Status::error("--threads must be at least 1");
    options.threads = static_cast<unsigned>(std::min<std::size_t>(n, 1024));
    return Status::ok();
  });
  args.add_flag("--no-align", [&] { options.align = false; });
  args.add_flag("--no-symbolize", [&] { options.symbolize = false; });
  args.add_value("--exe", [&](const std::string& v) {
    options.exe_override = v;
    return Status::ok();
  });
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (!parsed) return fail_usage(args, argv[0], parsed.message());
  if (version) {
    cli::print_version(std::cout, "tempest-export",
                       tempest::trace::kTraceVersion);
    return 0;
  }
  if (args.help_requested()) return fail_usage(args, argv[0], "");
  const std::vector<std::string>& paths = args.positional();
  if (paths.empty()) return fail_usage(args, argv[0], "no trace file given");
  if (paths.size() > 1 && !merge_ranks) {
    return fail_usage(args, argv[0],
                      "several trace files given; pass --merge-ranks to "
                      "fan them into one cross-rank timeline");
  }

  const char* format_name =
      options.format == exporter::Format::kPerfetto ? "perfetto"
                                                    : "speedscope";
  if (out_path.empty()) {
    out_path = paths[0] + "." + format_name + ".json";
  }
  const bool to_stdout = out_path == "-";
  options.spool_prefix =
      to_stdout ? "/tmp/tempest-export." + std::to_string(getpid())
                : out_path;

  std::ofstream file_out;
  if (!to_stdout) {
    file_out.open(out_path, std::ios::binary | std::ios::trunc);
    if (!file_out.is_open()) {
      std::cerr << "tempest-export: cannot open " << out_path
                << " for writing\n";
      return 1;
    }
  }
  std::ostream& out = to_stdout ? std::cout : file_out;

  auto ran = exporter::run_export(paths, out, options);
  if (!ran.is_ok()) {
    std::cerr << "tempest-export: " << ran.message() << "\n";
    return 1;
  }
  const exporter::ExportRunResult& result = ran.value();
  for (const std::string& warning : result.warnings) {
    std::cerr << "tempest-export: warning: " << warning << "\n";
  }
  if (!to_stdout) {
    write_telemetry_sidecar(out_path);
    std::cerr << "wrote " << out_path << " (" << format_name << ", "
              << result.stats.events_exported << " events, "
              << result.stats.bytes_written << " bytes)\n";
    if (result.stats.spans_dropped > 0 ||
        result.stats.spans_force_closed > 0) {
      std::cerr << "note: " << result.stats.spans_dropped
                << " unmatched exits dropped, "
                << result.stats.spans_force_closed
                << " spans force-closed\n";
    }
  }
  return 0;
}
