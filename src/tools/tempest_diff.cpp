// tempest-diff: what changed between runs.
//
// The profiles answer "where is this run hot"; continuous profiling
// asks "what changed since the last one". tempest-diff aligns two
// analyzed profiles by function (symbol name, address fallback,
// FLTR-filter tolerant), scores every delta with a Welch-style t
// statistic over the Sdv/Var stats the paper mandates, and ranks
// significant regressions/improvements. Functions without enough
// activations for a spread estimate (main, one-shot phases) are
// reported but never ranked — which keeps leaf culprits on top.
//
//   tempest-diff [options] BASELINE.trace CURRENT.trace
//     --format text|json   ranking output (default text)
//     --confidence X       rank only deltas at confidence >= X (0.95)
//     --min-time-delta S   ignore |total time| deltas below S seconds
//     --min-rel-change F   ignore relative changes below F (default 0.01)
//     --min-temp-delta D   sensor-average floor, display units (0.1)
//     --unit C|F           temperature unit (default F)
//     --min-samples N      thermal significance threshold (default 2)
//     --per-node           align per (node, function) instead of pooled
//     --no-align           skip clock alignment on both inputs
//     --exe PATH           symbolise against PATH
//     --threads N          analysis workers per input (default 1)
//     --perfetto OUT       also re-export the baseline trace to OUT with
//                          ranked findings marked (instants + metadata)
//     --fail-on-regression exit 4 when any regression ranks
//
//   tempest-diff --trend [options] RUN1 RUN2 RUN3...
//   tempest-diff --trend --trend-dir DIR
//   tempest-diff --trend --poll ENDPOINT [--interval S] [--count N]
//     --top N              keep top-N functions per run (0 = all)
//     emits schema-versioned JSONL: a header line, then one series
//     entry per run per surviving function (DESIGN.md §15).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "diff/diff.hpp"
#include "diff/trend.hpp"
#include "export/run.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--format text|json] [--confidence X] [--min-time-delta S]\n"
    "       [--min-rel-change F] [--min-temp-delta D] [--unit C|F]\n"
    "       [--min-samples N] [--per-node] [--no-align] [--exe PATH]\n"
    "       [--threads N] [--perfetto OUT] [--fail-on-regression]\n"
    "       [--version] BASELINE CURRENT\n"
    "       --trend [--top N] RUN1 RUN2 RUN3... | --trend-dir DIR |\n"
    "       --poll ENDPOINT [--interval S] [--count N]";

int fail_usage(const tempest::cli::ArgParser& args, const char* argv0,
               const std::string& message) {
  if (!message.empty()) std::cerr << "tempest-diff: " << message << "\n";
  args.print_usage(std::cerr, argv0);
  return 2;
}

int fail(const std::string& message) {
  std::cerr << "tempest-diff: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;
  namespace cli = tempest::cli;
  namespace diff = tempest::diff;

  std::string format = "text", exe_override, perfetto_out, trend_dir, poll_endpoint;
  bool version = false, trend = false, per_node = false, align = true;
  bool fail_on_regression = false;
  diff::DiffOptions diff_options;
  tempest::parser::ProfileOptions profile_options;
  std::size_t top = 0, poll_count = 3;
  double poll_interval = 1.0;
  unsigned threads = 1;

  cli::ArgParser args(kUsage);
  args.add_value("--format", [&](const std::string& v) {
    if (v != "text" && v != "json") {
      return Status::error("unknown format '" + v + "'");
    }
    format = v;
    return Status::ok();
  });
  args.add_value("--confidence", [&](const std::string& v) {
    const Status parsed = cli::parse_double(v, &diff_options.min_confidence);
    if (!parsed) return parsed;
    if (diff_options.min_confidence < 0.0 || diff_options.min_confidence > 1.0) {
      return Status::error("--confidence must be in [0, 1]");
    }
    return Status::ok();
  });
  args.add_value("--min-time-delta", [&](const std::string& v) {
    return cli::parse_double(v, &diff_options.min_time_delta_s);
  });
  args.add_value("--min-rel-change", [&](const std::string& v) {
    return cli::parse_double(v, &diff_options.min_rel_change);
  });
  args.add_value("--min-temp-delta", [&](const std::string& v) {
    return cli::parse_double(v, &diff_options.min_temp_delta);
  });
  args.add_value("--unit", [&](const std::string& v) {
    if (!tempest::parse_temp_unit(v.c_str(), &profile_options.unit)) {
      return Status::error("bad unit '" + v + "' (use C or F)");
    }
    return Status::ok();
  });
  args.add_value("--min-samples", [&](const std::string& v) {
    return cli::parse_size(v, &profile_options.min_samples_significant);
  });
  args.add_flag("--per-node", [&] { per_node = true; });
  args.add_flag("--no-align", [&] { align = false; });
  args.add_value("--exe", [&](const std::string& v) {
    exe_override = v;
    return Status::ok();
  });
  args.add_value("--threads", [&](const std::string& v) {
    std::size_t n = 0;
    const Status parsed = cli::parse_size(v, &n);
    if (!parsed) return parsed;
    if (n == 0) return Status::error("--threads must be at least 1");
    threads = static_cast<unsigned>(std::min<std::size_t>(n, 1024));
    return Status::ok();
  });
  args.add_value("--perfetto", [&](const std::string& v) {
    perfetto_out = v;
    return Status::ok();
  });
  args.add_flag("--fail-on-regression", [&] { fail_on_regression = true; });
  args.add_flag("--trend", [&] { trend = true; });
  args.add_value("--trend-dir", [&](const std::string& v) {
    trend_dir = v;
    return Status::ok();
  });
  args.add_value("--top", [&](const std::string& v) {
    return cli::parse_size(v, &top);
  });
  args.add_value("--poll", [&](const std::string& v) {
    poll_endpoint = v;
    return Status::ok();
  });
  args.add_value("--interval", [&](const std::string& v) {
    return cli::parse_double(v, &poll_interval);
  });
  args.add_value("--count", [&](const std::string& v) {
    return cli::parse_size(v, &poll_count);
  });
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (!parsed) return fail_usage(args, argv[0], parsed.message());
  if (version) {
    cli::print_version(std::cout, "tempest-diff", tempest::trace::kTraceVersion);
    return 0;
  }
  if (args.help_requested()) return fail_usage(args, argv[0], "");

  diff_options.per_node = per_node;
  diff::LoadOptions load;
  load.profile = profile_options;
  load.align = align;
  load.exe_override = exe_override;
  load.threads = threads;

  std::vector<std::string> paths = args.positional();

  if (!poll_endpoint.empty() || trend || !trend_dir.empty()) {
    // Trend mode: a series over many runs, not a pairwise ranking.
    if (!poll_endpoint.empty()) {
      diff::PollOptions poll;
      poll.endpoint = poll_endpoint;
      poll.interval_s = poll_interval;
      poll.count = poll_count;
      poll.top = top;
      const Status ran = diff::write_trend_poll(poll, std::cout);
      if (!ran) return fail(ran.message());
      return 0;
    }
    if (!trend_dir.empty()) {
      if (!paths.empty()) {
        return fail_usage(args, argv[0],
                          "--trend-dir and positional runs are exclusive");
      }
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(trend_dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".trace") {
          paths.push_back(entry.path().string());
        }
      }
      if (ec) return fail(trend_dir + ": " + ec.message());
      std::sort(paths.begin(), paths.end());  // run order = name order
      if (paths.empty()) return fail(trend_dir + ": no .trace files");
    }
    if (paths.size() < 2) {
      return fail_usage(args, argv[0], "trend mode needs at least 2 runs");
    }
    diff::TrendOptions trend_options;
    trend_options.load = load;
    trend_options.top = top;
    const Status ran = diff::write_trend(paths, std::cout, trend_options);
    if (!ran) return fail(ran.message());
    return 0;
  }

  if (paths.size() != 2) {
    return fail_usage(args, argv[0],
                      "diff mode takes exactly a BASELINE and a CURRENT trace "
                      "(use --trend for a series over more runs)");
  }

  auto base = diff::load_run(paths[0], load);
  if (!base.is_ok()) return fail(base.message());
  auto cur = diff::load_run(paths[1], load);
  if (!cur.is_ok()) return fail(cur.message());

  const diff::DiffResult result =
      diff::diff_runs(base.value(), cur.value(), diff_options);

  if (format == "json") {
    diff::write_diff_json(std::cout, result);
    std::cout << "\n";
  } else {
    diff::write_diff_text(std::cout, result);
  }

  if (!perfetto_out.empty()) {
    // Mark the ranked findings on the baseline timeline so the spans
    // that moved are findable by scrubbing, not just by name.
    tempest::exporter::ExportRunOptions export_options;
    export_options.format = tempest::exporter::Format::kPerfetto;
    export_options.align = align;
    export_options.exe_override = exe_override;
    for (const auto* list : {&result.regressions, &result.improvements}) {
      for (const auto& d : *list) {
        tempest::exporter::DiffAnnotation a;
        a.function = d.key;
        a.delta_time_s = d.delta_time_s;
        a.confidence = d.confidence;
        a.regression = d.delta_time_s >= 0.0;
        export_options.annotations.push_back(std::move(a));
      }
    }
    std::ofstream out(perfetto_out, std::ios::binary);
    if (!out) return fail("cannot open " + perfetto_out);
    auto exported =
        tempest::exporter::run_export({paths[0]}, out, export_options);
    if (!exported.is_ok()) return fail(exported.message());
    for (const std::string& warning : exported.value().warnings) {
      std::cerr << "tempest-diff: warning: " << warning << "\n";
    }
    std::cerr << "wrote " << perfetto_out << "\n";
  }

  if (fail_on_regression && !result.regressions.empty()) return 4;
  return 0;
}
