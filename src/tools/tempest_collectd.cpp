// tempest-collectd: fleet-scale live collector daemon.
//
//   tempest-collectd [options]
//     --uds PATH             Unix-domain ingest socket (what recording
//                            sessions point TEMPEST_COLLECT=uds:PATH at)
//     --tcp HOST:PORT        TCP ingest endpoint (multi-host fleets)
//     --http HOST:PORT       HTTP/JSON query plane (default
//                            127.0.0.1:0 — an ephemeral port)
//     --port-file PATH       write the bound HTTP port to PATH (scripts
//                            discover an ephemeral --http port here)
//     --shards N             fold shards (default min(4, cores))
//     --max-frame BYTES      reject larger ingest frames (default 8 MiB)
//     --queue-frames N       per-shard queue frame bound (default 256)
//     --queue-bytes BYTES    per-shard queue byte bound (default 32 MiB)
//     --idle-timeout SECS    reap silent connections (default 30)
//     --retain-sessions N    keep at most N finished sessions in the
//                            /sessions detail map (default 512); fleet
//                            rollups survive reaping
//     --unit C|F             temperature unit for folded profiles
//     --version              print tool and trace-format version
//
// At least one ingest endpoint (--uds or --tcp) is required. The
// daemon runs until SIGINT/SIGTERM, then drains its fold shards and
// exits 0. Query it with e.g.
//   curl http://127.0.0.1:$PORT/profile?top=10
// or point `tempest-top --connect 127.0.0.1:$PORT` at it for a live
// fleet view.
//
// Exit codes: 0 clean shutdown, 2 usage error or bind failure.
#include <csignal>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "collectd/collector.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "trace/writer.hpp"

namespace {

std::atomic<bool> g_stop{false};

void stop_signal_handler(int /*signo*/) {
  g_stop.store(true, std::memory_order_relaxed);
}

constexpr const char* kUsage =
    "[--uds PATH] [--tcp HOST:PORT] [--http HOST:PORT] [--port-file PATH] "
    "[--shards N] [--max-frame BYTES] [--queue-frames N] "
    "[--queue-bytes BYTES] [--idle-timeout SECS] [--retain-sessions N] "
    "[--unit C|F] [--version]";

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;
  using tempest::collectd::CollectorOptions;

  CollectorOptions options;
  std::string port_file;
  bool version = false;

  tempest::cli::ArgParser args(kUsage);
  args.add_value("--uds", [&](const std::string& v) {
    options.ingest_uds = v;
    return Status::ok();
  });
  args.add_value("--tcp", [&](const std::string& v) {
    options.ingest_tcp = v;
    return Status::ok();
  });
  args.add_value("--http", [&](const std::string& v) {
    options.http_tcp = v;
    return Status::ok();
  });
  args.add_value("--port-file", [&](const std::string& v) {
    port_file = v;
    return Status::ok();
  });
  args.add_value("--shards", [&](const std::string& v) {
    std::size_t n = 0;
    const Status st = tempest::cli::parse_size(v, &n);
    if (!st.is_ok()) return st;
    options.shards = static_cast<unsigned>(n);
    return Status::ok();
  });
  args.add_value("--max-frame", [&](const std::string& v) {
    std::size_t n = 0;
    const Status st = tempest::cli::parse_size(v, &n);
    if (!st.is_ok()) return st;
    if (n == 0) return Status::error("--max-frame must be positive");
    options.max_frame_bytes = n;
    return Status::ok();
  });
  args.add_value("--queue-frames", [&](const std::string& v) {
    std::size_t n = 0;
    const Status st = tempest::cli::parse_size(v, &n);
    if (!st.is_ok()) return st;
    if (n == 0) return Status::error("--queue-frames must be positive");
    options.max_queue_frames = n;
    return Status::ok();
  });
  args.add_value("--queue-bytes", [&](const std::string& v) {
    std::size_t n = 0;
    const Status st = tempest::cli::parse_size(v, &n);
    if (!st.is_ok()) return st;
    if (n == 0) return Status::error("--queue-bytes must be positive");
    options.max_queue_bytes = n;
    return Status::ok();
  });
  args.add_value("--idle-timeout", [&](const std::string& v) {
    char* end = nullptr;
    options.idle_timeout_s = std::strtod(v.c_str(), &end);
    if (v.empty() || end == nullptr || *end != '\0' ||
        options.idle_timeout_s <= 0.0) {
      return Status::error("bad --idle-timeout value '" + v + "'");
    }
    return Status::ok();
  });
  args.add_value("--retain-sessions", [&](const std::string& v) {
    std::size_t n = 0;
    const Status st = tempest::cli::parse_size(v, &n);
    if (!st.is_ok()) return st;
    options.max_terminal_sessions = n;
    return Status::ok();
  });
  args.add_value("--unit", [&](const std::string& v) {
    if (!tempest::parse_temp_unit(v, &options.profile.unit)) {
      return Status::error("bad --unit value '" + v + "' (want C or F)");
    }
    return Status::ok();
  });
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (parsed.is_ok() && version) {
    tempest::cli::print_version(std::cout, "tempest-collectd",
                                tempest::trace::kTraceVersion);
    return 0;
  }
  if (!parsed.is_ok() || args.help_requested() || !args.positional().empty() ||
      (options.ingest_uds.empty() && options.ingest_tcp.empty())) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    if (parsed.is_ok() && !args.help_requested() &&
        options.ingest_uds.empty() && options.ingest_tcp.empty()) {
      std::cerr << "error: need an ingest endpoint (--uds or --tcp)\n";
    }
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }

  tempest::collectd::Collector collector(options);
  const Status started = collector.start();
  if (!started.is_ok()) {
    std::cerr << "error: " << started.message() << "\n";
    return 2;
  }
  std::cout << "tempest-collectd: http port " << collector.http_port()
            << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << collector.http_port() << "\n";
    if (!out) {
      std::cerr << "error: cannot write --port-file " << port_file << "\n";
      collector.stop();
      return 2;
    }
  }

  struct sigaction sa {};
  sa.sa_handler = stop_signal_handler;
  sigemptyset(&sa.sa_mask);
  (void)::sigaction(SIGINT, &sa, nullptr);
  (void)::sigaction(SIGTERM, &sa, nullptr);

  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  collector.stop();
  return 0;
}
