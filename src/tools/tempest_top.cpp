// tempest-top: live view of a recording session's self-telemetry.
//
//   tempest-top [options] <trace file or .telemetry.jsonl>
//   tempest-top --connect HOST:PORT|uds:PATH [options]
//     --once                 render the latest snapshot and exit
//     --interval SECS        refresh period (default 1.0)
//     --no-clear             append frames instead of redrawing in place
//     --connect ENDPOINT     read snapshots from a tempest-collectd
//                            query plane (/top — the fleet aggregate of
//                            every session's latest heartbeat) instead
//                            of a local heartbeat file
//     --assert-tempd-below PCT
//                            exit 1 unless tempd CPU share of wall time
//                            in the latest snapshot is below PCT (CI
//                            uses this to enforce the paper's < 1%)
//     --version              print tool and trace-format version
//
// Reads the flat-JSON heartbeat lines a recording session appends to
// `<trace>.telemetry.jsonl` (TEMPEST_HEARTBEAT=SECS) and renders a
// refreshing terminal summary: event throughput, drops, probe cost,
// tempd cadence health, and the first sensors' latest readings. A bare
// trace path is resolved to its conventional heartbeat file.
//
// Exit codes: 0 ok, 1 assertion failed, 2 usage error or unreadable /
// empty heartbeat file.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "collectd/net.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--once] [--interval SECS] [--no-clear] [--assert-tempd-below PCT] "
    "[--connect ENDPOINT] [--version] <trace file or .telemetry.jsonl>";

/// Extract the numeric value of `"key":` from one flat JSON object
/// line (the heartbeat writes no nested objects, arrays, or string
/// values beyond the keys themselves). Returns fallback when absent.
double json_number(const std::string& line, const std::string& key,
                   double fallback = 0.0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(line.c_str() + at + needle.size(), &end);
  if (end == line.c_str() + at + needle.size() || errno == ERANGE) return fallback;
  return v;
}

/// Last two complete snapshot lines of the heartbeat file (previous may
/// be empty when only one snapshot exists yet). Re-reads the whole
/// file: heartbeat files are one small line per period, so even a long
/// run is a few hundred KB — simplicity over seek bookkeeping.
///
/// The recorder appends while we read, so the final line is routinely
/// mid-write. Only lines that look like a whole flat JSON object
/// ('{'..'}') count; a truncated tail is skipped, not an error — the
/// next refresh will see it completed.
tempest::Status read_tail(const std::string& path, std::string* last,
                          std::string* previous) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return tempest::Status::error("cannot open heartbeat file '" + path +
                                  "' (record with TEMPEST_HEARTBEAT=SECS)");
  }
  last->clear();
  previous->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() != '{' || line.back() != '}') continue;
    *previous = *last;
    *last = line;
  }
  if (last->empty()) {
    return tempest::Status::error("heartbeat file '" + path +
                                  "' has no snapshots yet");
  }
  return tempest::Status::ok();
}

void render(const std::string& last, const std::string& previous,
            std::ostream& out) {
  const double t = json_number(last, "t");
  const double events = json_number(last, "events_recorded");
  const double dropped = json_number(last, "events_dropped");
  const double threads = json_number(last, "active_threads");
  const double tempd_cpu_s = json_number(last, "tempd_cpu_us") / 1e6;
  const double cpu_share = t > 0.0 ? 100.0 * tempd_cpu_s / t : 0.0;

  // Throughput from the delta to the previous snapshot when one exists;
  // from the run average otherwise.
  double rate = t > 0.0 ? events / t : 0.0;
  if (!previous.empty()) {
    const double dt = t - json_number(previous, "t");
    if (dt > 0.0) rate = (events - json_number(previous, "events_recorded")) / dt;
  }

  char buf[256];
  std::snprintf(buf, sizeof(buf), "tempest-top  t=%.1fs  threads=%.0f", t,
                threads);
  out << buf << "\n";
  std::snprintf(buf, sizeof(buf),
                "  events   %12.0f   (%.0f/s)   dropped %.0f%s", events, rate,
                dropped, dropped > 0.0 ? "  <-- profile under-counts" : "");
  out << buf << "\n";
  // Admission pipeline counters (suppression filter / throttle / ring);
  // only rendered when the session actually rejected or recycled
  // something — a plain record-everything run keeps the old layout.
  const double suppressed = json_number(last, "events_suppressed");
  const double throttled = json_number(last, "events_throttled");
  const double overwritten = json_number(last, "events_overwritten");
  const double snapshots = json_number(last, "ring_snapshots");
  if (suppressed > 0.0 || throttled > 0.0 || overwritten > 0.0 ||
      snapshots > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  admission  suppressed %.0f   throttled %.0f   "
                  "ring-overwritten %.0f   snapshots %.0f",
                  suppressed, throttled, overwritten, snapshots);
    out << buf << "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  probes   mean %.0f ns   max %.0f ns   (n=%.0f sampled)",
                json_number(last, "probe_cost_ns_mean"),
                json_number(last, "probe_cost_ns_max"),
                json_number(last, "probe_cost_ns_count"));
  out << buf << "\n";
  std::snprintf(buf, sizeof(buf),
                "  tempd    %.0f ticks (%.0f missed)   %.0f samples   "
                "%.0f read errors   cpu %.2f%% of wall",
                json_number(last, "tempd_ticks"),
                json_number(last, "tempd_missed_ticks"),
                json_number(last, "tempd_samples"),
                json_number(last, "sensor_read_failures"), cpu_share);
  out << buf << "\n";
  std::snprintf(buf, sizeof(buf),
                "  cadence  jitter mean %.0f us  max %.0f us   sensor read "
                "mean %.0f us",
                json_number(last, "cadence_jitter_us_mean"),
                json_number(last, "cadence_jitter_us_max"),
                json_number(last, "sensor_read_us_mean"));
  out << buf << "\n";

  std::string temps = "  temps   ";
  bool any = false;
  for (int i = 0; i < 8; ++i) {
    const std::string key = "sensor_temp_" + std::to_string(i) + "_mc";
    const double mc = json_number(last, key, -1e9);
    if (mc <= -1e9 || mc == 0.0) continue;
    std::snprintf(buf, sizeof(buf), " s%d=%.1fC", i, mc / 1000.0);
    temps += buf;
    any = true;
  }
  if (any) out << temps << "\n";
  std::snprintf(buf, sizeof(buf),
                "  memory   peak rss %.0f KiB   buffer chunks %.0f   "
                "heartbeats %.0f",
                json_number(last, "peak_rss_kb"),
                json_number(last, "buffer_flushes"),
                json_number(last, "heartbeats"));
  out << buf << "\n";

  // Export runs (tempest-export / tempest_parse --export) publish their
  // accounting through the same registry; show it when one happened.
  const double exported = json_number(last, "export_events_exported");
  if (exported > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  export   %.0f events   %.0f spans dropped   %.0f bytes",
                  exported, json_number(last, "export_spans_dropped"),
                  json_number(last, "export_bytes_written"));
    out << buf << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;

  bool once = false, no_clear = false;
  double interval_s = 1.0;
  double assert_below_pct = -1.0;

  tempest::cli::ArgParser args(kUsage);
  args.add_flag("--once", [&] { once = true; });
  args.add_flag("--no-clear", [&] { no_clear = true; });
  args.add_value("--interval", [&](const std::string& v) {
    errno = 0;
    char* end = nullptr;
    interval_s = std::strtod(v.c_str(), &end);
    if (v.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        interval_s <= 0.0) {
      return Status::error("bad --interval value '" + v + "'");
    }
    return Status::ok();
  });
  args.add_value("--assert-tempd-below", [&](const std::string& v) {
    errno = 0;
    char* end = nullptr;
    assert_below_pct = std::strtod(v.c_str(), &end);
    if (v.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        assert_below_pct < 0.0) {
      return Status::error("bad --assert-tempd-below value '" + v + "'");
    }
    return Status::ok();
  });

  std::string connect;
  args.add_value("--connect", [&](const std::string& v) {
    if (v.empty()) return Status::error("--connect needs an endpoint");
    connect = v;
    return Status::ok();
  });

  bool version = false;
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (parsed.is_ok() && version) {
    tempest::cli::print_version(std::cout, "tempest-top",
                                tempest::trace::kTraceVersion);
    return 0;
  }
  const std::size_t want_positional = connect.empty() ? 1 : 0;
  if (!parsed.is_ok() || args.help_requested() ||
      args.positional().size() != want_positional) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }

  std::string path;
  if (connect.empty()) {
    path = args.positional()[0];
    const std::string suffix = ".telemetry.jsonl";
    if (path.size() < suffix.size() ||
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
      path += suffix;  // a trace path: resolve its conventional sidecar
    }
  }

  std::string last, previous;
  while (true) {
    if (connect.empty()) {
      const Status st = read_tail(path, &last, &previous);
      if (!st.is_ok()) {
        std::cerr << "error: " << st.message() << "\n";
        return 2;
      }
    } else {
      // Remote mode: /top is the collector's fleet aggregate in the
      // heartbeat line schema, so the render below is shared verbatim.
      // Rates come from the delta between successive fetches.
      auto fetched = tempest::collectd::http_get(connect, "/top", 2.0);
      if (!fetched.is_ok()) {
        // One actionable line naming the endpoint: CI wrappers grep
        // this and scripts branch on the nonzero exit.
        std::cerr << "error: collector at " << connect
                  << " unreachable or unhealthy: " << fetched.message() << "\n";
        return 2;
      }
      if (fetched.value() == "{}") {
        std::cerr << "error: collector at " << connect
                  << " has no session heartbeats yet\n";
        return 2;
      }
      previous = last;
      last = fetched.value();
    }
    if (!once && !no_clear) std::cout << "\x1b[2J\x1b[H";
    render(last, previous, std::cout);
    std::cout.flush();
    if (once) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }

  if (assert_below_pct >= 0.0) {
    const double t = json_number(last, "t");
    const double share =
        t > 0.0 ? 100.0 * (json_number(last, "tempd_cpu_us") / 1e6) / t : 0.0;
    if (share >= assert_below_pct) {
      std::fprintf(stderr,
                   "ASSERT FAILED: tempd used %.3f%% of wall time "
                   "(budget %.3f%%)\n",
                   share, assert_below_pct);
      return 1;
    }
    std::fprintf(stdout, "tempd cpu share %.3f%% < %.3f%% budget: ok\n", share,
                 assert_below_pct);
  }
  return 0;
}
