// tempest-audit: static instrumentation audit of an ELF binary.
//
//   tempest-audit [options] <binary>
//     --json             machine-readable report (one JSON object)
//     --trace FILE       join a recorded trace: observed per-function
//                        call counts drive the overhead ranking
//     --filter-out FILE  write a TEMPEST_FILTER suppression file with
//                        the hottest functions (see --filter-top)
//     --filter-top N     functions to suggest in the filter (default 10)
//     --max-list N       cap listed functions per report section
//                        (default 20; counts stay exact)
//     --strict           coverage gaps (uninstrumented functions or
//                        stripped hook sites) fail the exit code
//     -q, --quiet        suppress the report; exit code only
//     --version          print tool and trace-format version
//
// Exit codes: 0 analysed cleanly, 1 coverage gaps under --strict,
// 2 usage error or unreadable binary/trace.
//
// The audit never runs the binary: classification and the call graph
// come from relocations and a direct-call scan over .text (DESIGN.md
// §11 documents the approximation limits).
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "audit/audit.hpp"
#include "audit/filter.hpp"
#include "audit/report.hpp"
#include "common/cli.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--json] [--trace FILE] [--filter-out FILE] [--filter-top N] "
    "[--max-list N] [--strict] [-q] [--version] <binary>";

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;

  bool json = false, strict = false, quiet = false, version = false;
  std::string trace_path, filter_out;
  std::size_t filter_top = 10;
  tempest::audit::ReportOptions report_options;

  tempest::cli::ArgParser args(kUsage);
  args.add_flag("--json", [&] { json = true; });
  args.add_value("--trace", [&](const std::string& v) {
    trace_path = v;
    return Status::ok();
  });
  args.add_value("--filter-out", [&](const std::string& v) {
    filter_out = v;
    return Status::ok();
  });
  args.add_value("--filter-top", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &filter_top);
  });
  args.add_value("--max-list", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &report_options.max_list);
  });
  args.add_flag("--strict", [&] { strict = true; });
  args.add_flag("-q", [&] { quiet = true; });
  args.add_flag("--quiet", [&] { quiet = true; });
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (!parsed) {
    std::cerr << "tempest-audit: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (version) {
    tempest::cli::print_version(std::cout, "tempest-audit",
                                tempest::trace::kTraceVersion);
    return 0;
  }
  if (args.help_requested()) {
    args.print_usage(std::cerr, argv[0]);
    return 0;
  }
  if (args.positional().size() != 1) {
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  const std::string& binary = args.positional().front();

  auto analyzed = tempest::audit::analyze_binary(binary);
  if (!analyzed.is_ok()) {
    std::cerr << "tempest-audit: " << analyzed.message() << "\n";
    return 2;
  }
  tempest::audit::Inventory inventory = std::move(analyzed).value();

  std::optional<tempest::audit::OverheadReport> overhead;
  if (!trace_path.empty()) {
    auto predicted = tempest::audit::predict_overhead(&inventory, trace_path);
    if (!predicted.is_ok()) {
      std::cerr << "tempest-audit: " << predicted.message() << "\n";
      return 2;
    }
    overhead = std::move(predicted).value();
  } else {
    overhead = tempest::audit::predict_overhead_static(inventory);
  }

  const tempest::audit::CoverageReport coverage =
      tempest::audit::build_coverage(inventory);

  if (!filter_out.empty()) {
    const tempest::audit::FilterFile filter =
        tempest::audit::suggest_filter(inventory, *overhead, filter_top);
    const Status written = tempest::audit::write_filter_file(filter_out, filter);
    if (!written) {
      std::cerr << "tempest-audit: " << written.message() << "\n";
      return 2;
    }
  }

  if (json) {
    std::cout << tempest::audit::to_json(inventory, coverage, &*overhead,
                                         report_options)
              << "\n";
  } else if (!quiet) {
    tempest::audit::write_human(std::cout, inventory, coverage, &*overhead,
                                report_options);
  }

  const bool gaps =
      coverage.uninstrumented > 0 || coverage.stripped_hook_sites > 0;
  if (strict && gaps) return 1;
  return 0;
}
