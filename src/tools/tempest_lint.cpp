// tempest-lint: validate trace files against the paper's invariants.
//
//   tempest-lint [options] <trace file>...
//     --json          machine-readable output (one JSON object per file)
//     --hz RATE       expected tempd sampling rate (default: 4, the
//                     paper's rate; 0 disables the absolute check)
//     --tolerance F   cadence tolerance factor (default 2.0)
//     --symtab EXE    cross-check the trace against a static audit of
//                     the instrumented binary: events outside the
//                     binary's instrumented set are errors, instrumented
//                     functions with zero events warnings
//     --strict        warnings also fail the exit code
//     -q, --quiet     suppress per-finding output; exit code only
//     --version       print tool and trace-format version
//
// Exit codes: 0 all traces clean, 1 invariant violations found,
// 2 usage error or unreadable trace/binary file.
//
// Lints stream through LintEngine (lint_trace_file reads the trace in
// bounded batches), so arbitrarily large traces check in constant
// memory.
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "audit/audit.hpp"
#include "common/cli.hpp"
#include "trace/writer.hpp"

namespace {

constexpr const char* kUsage =
    "[--json] [--hz RATE] [--tolerance F] [--symtab EXE] [--strict] [-q] "
    "[--version] <trace file>...";

tempest::Status parse_double(const std::string& what, const std::string& value,
                             double* out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    return tempest::Status::error("bad " + what + " value '" + value + "'");
  }
  *out = parsed;
  return tempest::Status::ok();
}

}  // namespace

int main(int argc, char** argv) {
  using tempest::Status;

  tempest::analysis::LintOptions options;
  options.expected_hz = 4.0;  // the paper's tempd rate
  bool json = false, strict = false, quiet = false;

  tempest::cli::ArgParser args(kUsage);
  args.add_flag("--json", [&] { json = true; });
  args.add_value("--hz", [&](const std::string& v) {
    return parse_double("--hz", v, &options.expected_hz);
  });
  args.add_value("--tolerance", [&](const std::string& v) {
    return parse_double("--tolerance", v, &options.cadence_tolerance);
  });
  std::string symtab_exe;
  args.add_value("--symtab", [&](const std::string& v) {
    symtab_exe = v;
    return Status::ok();
  });
  args.add_flag("--strict", [&] { strict = true; });
  args.add_flag("-q", [&] { quiet = true; });
  args.add_flag("--quiet", [&] { quiet = true; });
  bool version = false;
  args.add_flag("--version", [&] { version = true; });

  const Status parsed = args.parse(argc, argv);
  if (!parsed) {
    std::cerr << "tempest-lint: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (version) {
    tempest::cli::print_version(std::cout, "tempest-lint",
                                tempest::trace::kTraceVersion);
    return 0;
  }
  if (args.help_requested()) {
    args.print_usage(std::cerr, argv[0]);
    return 0;
  }
  const std::vector<std::string>& paths = args.positional();
  if (paths.empty()) {
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }

  // --symtab: audit the binary once, cross-check every trace against it.
  tempest::analysis::CoverageInventory coverage;
  const tempest::analysis::CoverageInventory* coverage_ptr = nullptr;
  if (!symtab_exe.empty()) {
    auto inventory = tempest::audit::analyze_binary(symtab_exe);
    if (!inventory.is_ok()) {
      std::cerr << "tempest-lint: --symtab: " << inventory.message() << "\n";
      return 2;
    }
    coverage.functions.reserve(inventory.value().functions.size());
    for (const auto& fn : inventory.value().functions) {
      coverage.functions.push_back({fn.addr, fn.size, fn.name, fn.instrumented});
    }
    coverage_ptr = &coverage;
  }

  bool any_errors = false, any_warnings = false;
  for (const std::string& path : paths) {
    auto report = tempest::analysis::lint_trace_file(path, options, coverage_ptr);
    if (!report.is_ok()) {
      std::cerr << "tempest-lint: " << report.message() << "\n";
      return 2;
    }
    const auto& r = report.value();
    any_errors = any_errors || r.error_count > 0;
    any_warnings = any_warnings || r.warning_count > 0;
    if (json) {
      std::cout << tempest::analysis::to_json(r) << "\n";
    } else if (!quiet) {
      if (paths.size() > 1) std::cout << path << ":\n";
      tempest::analysis::write_human(std::cout, r);
    }
  }
  if (any_errors) return 1;
  if (strict && any_warnings) return 1;
  return 0;
}
