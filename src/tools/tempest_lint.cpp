// tempest-lint: validate trace files against the paper's invariants.
//
//   tempest-lint [options] <trace file>...
//     --json          machine-readable output (one JSON object per file)
//     --hz RATE       expected tempd sampling rate (default: 4, the
//                     paper's rate; 0 disables the absolute check)
//     --tolerance F   cadence tolerance factor (default 2.0)
//     --strict        warnings also fail the exit code
//     -q, --quiet     suppress per-finding output; exit code only
//
// Exit codes: 0 all traces clean, 1 invariant violations found,
// 2 usage error or unreadable trace file.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--hz RATE] [--tolerance F] [--strict] [-q]"
               " <trace file>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  tempest::analysis::LintOptions options;
  options.expected_hz = 4.0;  // the paper's tempd rate
  bool json = false, strict = false, quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--hz") {
      try {
        options.expected_hz = std::stod(next("--hz"));
      } catch (const std::exception&) {
        std::cerr << "bad --hz value\n";
        return 2;
      }
    } else if (arg == "--tolerance") {
      try {
        options.cadence_tolerance = std::stod(next("--tolerance"));
      } catch (const std::exception&) {
        std::cerr << "bad --tolerance value\n";
        return 2;
      }
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "-q" || arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  bool any_errors = false, any_warnings = false;
  for (const std::string& path : paths) {
    auto report = tempest::analysis::lint_trace_file(path, options);
    if (!report.is_ok()) {
      std::cerr << "tempest-lint: " << report.message() << "\n";
      return 2;
    }
    const auto& r = report.value();
    any_errors = any_errors || r.error_count > 0;
    any_warnings = any_warnings || r.warning_count > 0;
    if (json) {
      std::cout << tempest::analysis::to_json(r) << "\n";
    } else if (!quiet) {
      if (paths.size() > 1) std::cout << path << ":\n";
      tempest::analysis::write_human(std::cout, r);
    }
  }
  if (any_errors) return 1;
  if (strict && any_warnings) return 1;
  return 0;
}
