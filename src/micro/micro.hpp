// Micro-benchmarks from the paper's Table 1.
//
// "All benchmarks include: A (main alone), B (one function), C
// (multiple functions), D (multiple functions with interleaving), and
// E (multiple functions with recursion and interleaving)." Variant D is
// the one shown in Figure 2: foo1 dominates execution running a CPU
// burn while foo2 simply exits after a short timer expires.
//
// The workload functions carry no profiling calls: this translation
// unit is compiled with -finstrument-functions, so Tempest traces them
// transparently through the GCC hooks. Micro F adds the §3.3 stressor
// (a function with a very short life span invoked repeatedly).
#pragma once

#include <cstdint>

#include "core/workbench.hpp"

namespace micro {

/// Scales every burn/wait below; 1.0 reproduces roughly the paper's
/// 60-second micro D, 0.02 keeps unit tests around a second.
struct MicroParams {
  tempest::core::Workbench* bench = nullptr;
  double time_scale = 0.05;
};

void run_micro_a(const MicroParams& params);  ///< main alone
void run_micro_b(const MicroParams& params);  ///< one function
void run_micro_c(const MicroParams& params);  ///< multiple functions
void run_micro_d(const MicroParams& params);  ///< interleaving (Fig 2)
void run_micro_e(const MicroParams& params);  ///< recursion + interleaving

/// §3.3 stressor: `calls` invocations of a near-empty function.
/// Returns a value derived from the work to keep the calls observable.
std::uint64_t run_micro_f(const MicroParams& params, std::uint64_t calls);

/// Work-bound overhead workload (§3.4): a fixed amount of computation
/// split across medium-grained instrumented functions (~10 us each), so
/// wall time changes measure profiler overhead rather than timer drift.
/// Needs no Workbench. Returns a checksum of the work.
std::uint64_t run_micro_g(std::uint64_t outer_iters);

}  // namespace micro
