#include "micro/micro.hpp"

// Workload functions deliberately contain no Tempest API calls; the
// whole TU is compiled with -finstrument-functions. noinline keeps each
// function a distinct instrumented entity at any optimisation level.
#define MICRO_FN __attribute__((noinline))

namespace micro {
namespace {

using tempest::core::Workbench;

// ---- D: main { foo1() { foo2(); } foo2(); } --------------------------

MICRO_FN void foo2(const MicroParams& params) {
  // "foo2 simply exits after a short timer expires": foo2 itself is
  // nearly instant (the paper reports 0.000159 s total) — it arms the
  // timer; the caller waits it out, which is when the die cools.
  params.bench->idle(0.05 * params.time_scale);
}

MICRO_FN void foo1(const MicroParams& params) {
  // "a CPU burn benchmark ... heats up the CPU rapidly".
  params.bench->burn(50.0 * params.time_scale);
  foo2(params);
}

// ---- B/C helpers ------------------------------------------------------

MICRO_FN void work_small(const MicroParams& params) {
  params.bench->burn(8.0 * params.time_scale);
}

MICRO_FN void work_medium(const MicroParams& params) {
  params.bench->burn(16.0 * params.time_scale);
}

MICRO_FN void cool_wait(const MicroParams& params) {
  params.bench->idle(6.0 * params.time_scale);
}

// ---- E: recursion with interleaving -----------------------------------

MICRO_FN void rec_leaf(const MicroParams& params) {
  params.bench->burn(1.0 * params.time_scale);
}

MICRO_FN void rec_fn(const MicroParams& params, int depth) {
  params.bench->burn(2.0 * params.time_scale);
  if (depth > 0) {
    rec_fn(params, depth - 1);
    rec_leaf(params);
  }
}

MICRO_FN std::uint64_t tiny_fn(std::uint64_t x) { return x * 2862933555777941757ULL + 3037000493ULL; }

// ---- G: work-bound functions for the overhead comparison --------------

MICRO_FN std::uint64_t work_chunk_a(std::uint64_t x) {
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

MICRO_FN std::uint64_t work_chunk_b(std::uint64_t x) {
  for (int i = 0; i < 4000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    x ^= x >> 33;
  }
  return x;
}

MICRO_FN std::uint64_t work_chunk_c(std::uint64_t x) {
  for (int i = 0; i < 2000; ++i) {
    x += (x << 21) ^ (x >> 11);
    x *= 0x9e3779b97f4a7c15ULL;
  }
  return x;
}

}  // namespace

void run_micro_a(const MicroParams& params) {
  // Main alone: burn directly in the (instrumented) caller.
  params.bench->burn(10.0 * params.time_scale);
}

void run_micro_b(const MicroParams& params) { work_small(params); }

void run_micro_c(const MicroParams& params) {
  work_small(params);
  work_medium(params);
  cool_wait(params);
}

void run_micro_d(const MicroParams& params) {
  foo1(params);
  foo2(params);
  // The timer foo2 armed expires here, in main: the temperature "drops
  // abruptly while the timer is set and expires" (Fig 2b).
  params.bench->idle(4.0 * params.time_scale);
}

void run_micro_e(const MicroParams& params) {
  rec_fn(params, 3);
  cool_wait(params);
  rec_fn(params, 1);
}

std::uint64_t run_micro_f(const MicroParams& params, std::uint64_t calls) {
  (void)params;
  std::uint64_t acc = 0x9e3779b9;
  for (std::uint64_t i = 0; i < calls; ++i) acc = tiny_fn(acc);
  return acc;
}

std::uint64_t run_micro_g(std::uint64_t outer_iters) {
  std::uint64_t acc = 0x2545F4914F6CDD1DULL;
  for (std::uint64_t i = 0; i < outer_iters; ++i) {
    acc = work_chunk_a(acc);
    acc = work_chunk_b(acc);
    acc = work_chunk_c(acc);
  }
  return acc;
}

}  // namespace micro
