#include "symtab/resolver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <dlfcn.h>
#include <link.h>
#include <unistd.h>
#endif
#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace tempest::symtab {

std::string demangle(const std::string& name) {
#if defined(__GNUG__)
  int status = 0;
  char* out = abi::__cxa_demangle(name.c_str(), nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string result(out);
    std::free(out);
    return result;
  }
  std::free(out);
#endif
  return name;
}

std::uint64_t current_load_bias() {
#if defined(__linux__)
  std::uint64_t bias = 0;
  // The first dl_iterate_phdr entry with an empty name is the main
  // executable; dlpi_addr is exactly the load bias.
  dl_iterate_phdr(
      [](struct dl_phdr_info* info, std::size_t, void* data) -> int {
        if (info->dlpi_name == nullptr || info->dlpi_name[0] == '\0') {
          *static_cast<std::uint64_t*>(data) = info->dlpi_addr;
          return 1;  // stop iteration
        }
        return 0;
      },
      &bias);
  return bias;
#else
  return 0;
#endif
}

Resolver::Resolver(std::vector<FuncSymbol> symbols, std::uint64_t load_bias) {
  ranges_.reserve(symbols.size());
  for (auto& sym : symbols) {
    Range r;
    r.start = sym.value + load_bias;
    r.end = sym.size > 0 ? r.start + sym.size : r.start;  // patched below
    r.name = std::move(sym.name);
    ranges_.push_back(std::move(r));
  }
  std::sort(ranges_.begin(), ranges_.end(),
            [](const Range& a, const Range& b) { return a.start < b.start; });
  // Zero-sized symbols (assembler stubs) extend to the next symbol.
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].end == ranges_[i].start) {
      ranges_[i].end = (i + 1 < ranges_.size()) ? ranges_[i + 1].start
                                                : ranges_[i].start + 1;
    }
  }
}

Result<Resolver> Resolver::for_current_process() {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return Result<Resolver>::error("cannot readlink /proc/self/exe");
  buf[n] = '\0';
  return for_executable(buf, current_load_bias());
#else
  return Result<Resolver>::error("self-resolution requires Linux");
#endif
}

Result<Resolver> Resolver::for_executable(const std::string& path,
                                          std::uint64_t load_bias) {
  auto symbols = read_function_symbols(path);
  if (!symbols.is_ok()) return Result<Resolver>::error(symbols.message());
  return Resolver(std::move(symbols).value(), load_bias);
}

bool Resolver::resolve_checked(std::uint64_t addr, std::string* name) const {
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), addr,
      [](std::uint64_t a, const Range& r) { return a < r.start; });
  if (it != ranges_.begin()) {
    const Range& r = *std::prev(it);
    if (addr >= r.start && addr < r.end) {
      *name = demangle(r.name);
      return true;
    }
  }
#if defined(__linux__)
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(addr), &info) != 0 && info.dli_sname != nullptr) {
    *name = demangle(info.dli_sname);
    return true;
  }
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(addr));
  *name = buf;
  return false;
}

std::string Resolver::resolve(std::uint64_t addr) const {
  std::string name;
  resolve_checked(addr, &name);
  return name;
}

}  // namespace tempest::symtab
