#include "symtab/elf.hpp"

#include <cstring>
#include <fstream>

namespace tempest::symtab {
namespace {

// ELF64 structures, laid out per the System V ABI. Defined locally so
// the parser also builds on non-ELF hosts (where it just never runs).
#pragma pack(push, 1)
struct Elf64Ehdr {
  unsigned char e_ident[16];
  std::uint16_t e_type;
  std::uint16_t e_machine;
  std::uint32_t e_version;
  std::uint64_t e_entry;
  std::uint64_t e_phoff;
  std::uint64_t e_shoff;
  std::uint32_t e_flags;
  std::uint16_t e_ehsize;
  std::uint16_t e_phentsize;
  std::uint16_t e_phnum;
  std::uint16_t e_shentsize;
  std::uint16_t e_shnum;
  std::uint16_t e_shstrndx;
};

struct Elf64ShdrFull {
  std::uint32_t sh_name;
  std::uint32_t sh_type;
  std::uint64_t sh_flags;
  std::uint64_t sh_addr;
  std::uint64_t sh_offset;
  std::uint64_t sh_size;
  std::uint32_t sh_link;
  std::uint32_t sh_info;
  std::uint64_t sh_addralign;
  std::uint64_t sh_entsize;
};

struct Elf64Sym {
  std::uint32_t st_name;
  unsigned char st_info;
  unsigned char st_other;
  std::uint16_t st_shndx;
  std::uint64_t st_value;
  std::uint64_t st_size;
};

struct Elf64Rela {
  std::uint64_t r_offset;
  std::uint64_t r_info;
  std::int64_t r_addend;
};
#pragma pack(pop)

constexpr std::uint32_t kShtNobits = 8;  // .bss: sh_offset is meaningless

/// Overflow-safe "does [offset, offset+size) fit inside the file?".
/// `offset + size > file.size()` alone wraps for hostile 64-bit values.
bool range_in_file(const std::vector<char>& file, std::uint64_t offset,
                   std::uint64_t size) {
  return offset <= file.size() && size <= file.size() - offset;
}

/// Read a NUL-terminated name out of a string-table section. Returns
/// false (never reads out of bounds) when the offset is outside the
/// table or the table ends before a terminator.
bool read_name(const std::vector<char>& file, const Elf64ShdrFull& strtab,
               std::uint32_t name_off, std::string* out) {
  if (!range_in_file(file, strtab.sh_offset, strtab.sh_size)) return false;
  if (name_off >= strtab.sh_size) return false;
  const char* base = file.data() + strtab.sh_offset + name_off;
  const std::size_t max_len = strtab.sh_size - name_off;
  const std::size_t len = strnlen(base, max_len);
  if (len == max_len) return false;  // table not NUL-terminated here
  out->assign(base, len);
  return true;
}

/// Parse and validate the ELF header plus the section-header table.
/// Shared front end of both public entry points.
Status read_sections(const std::vector<char>& file, Elf64Ehdr* ehdr,
                     std::vector<Elf64ShdrFull>* sections) {
  if (file.size() < sizeof(Elf64Ehdr)) {
    return Status::error("file too small for ELF header");
  }
  std::memcpy(ehdr, file.data(), sizeof(*ehdr));
  if (std::memcmp(ehdr->e_ident, "\x7f" "ELF", 4) != 0) {
    return Status::error("not an ELF file");
  }
  if (ehdr->e_ident[4] != 2 /* ELFCLASS64 */) {
    return Status::error("only ELF64 is supported");
  }
  if (ehdr->e_ident[5] != 1 /* little-endian */) {
    return Status::error("only little-endian ELF is supported");
  }
  if (ehdr->e_shentsize != sizeof(Elf64ShdrFull)) {
    return Status::error("unexpected section header size");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(ehdr->e_shnum) * sizeof(Elf64ShdrFull);
  if (!range_in_file(file, ehdr->e_shoff, table_bytes)) {
    return Status::error("section headers beyond end of file");
  }
  sections->resize(ehdr->e_shnum);
  for (std::size_t i = 0; i < sections->size(); ++i) {
    std::memcpy(&(*sections)[i],
                file.data() + ehdr->e_shoff + i * sizeof(Elf64ShdrFull),
                sizeof(Elf64ShdrFull));
  }
  return Status::ok();
}

Result<std::vector<FuncSymbol>> extract(const std::vector<char>& file,
                                        const Elf64ShdrFull& symtab,
                                        const Elf64ShdrFull& strtab) {
  if (!range_in_file(file, symtab.sh_offset, symtab.sh_size) ||
      !range_in_file(file, strtab.sh_offset, strtab.sh_size)) {
    return Result<std::vector<FuncSymbol>>::error("ELF: section beyond end of file");
  }
  if (symtab.sh_entsize != sizeof(Elf64Sym)) {
    return Result<std::vector<FuncSymbol>>::error("ELF: unexpected symbol entry size");
  }
  const std::size_t count = symtab.sh_size / sizeof(Elf64Sym);

  std::vector<FuncSymbol> out;
  out.reserve(count / 4);
  for (std::size_t i = 0; i < count; ++i) {
    Elf64Sym sym;
    std::memcpy(&sym, file.data() + symtab.sh_offset + i * sizeof(Elf64Sym), sizeof(sym));
    if ((sym.st_info & 0x0f) != kSttFunc || sym.st_value == 0) continue;
    std::string name;
    if (!read_name(file, strtab, sym.st_name, &name) || name.empty()) continue;
    out.push_back({sym.st_value, sym.st_size, std::move(name)});
  }
  return out;
}

Result<std::vector<char>> slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<std::vector<char>>::error("cannot open " + path);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

}  // namespace

Result<std::vector<FuncSymbol>> read_function_symbols(const std::string& path) {
  auto file = slurp_file(path);
  if (!file.is_ok()) return Result<std::vector<FuncSymbol>>::error(file.message());

  Elf64Ehdr ehdr;
  std::vector<Elf64ShdrFull> sections;
  const Status parsed = read_sections(file.value(), &ehdr, &sections);
  if (!parsed) {
    return Result<std::vector<FuncSymbol>>::error(parsed.message() + ": " + path);
  }

  // Prefer the full .symtab; fall back to .dynsym.
  for (std::uint32_t want : {kShtSymtab, kShtDynsym}) {
    for (const auto& sec : sections) {
      if (sec.sh_type != want) continue;
      if (sec.sh_link >= sections.size()) continue;
      auto result = extract(file.value(), sec, sections[sec.sh_link]);
      if (result.is_ok() && !result.value().empty()) return result;
    }
  }
  return Result<std::vector<FuncSymbol>>::error("no function symbols found in " + path);
}

Result<ElfImage> parse_elf_image(const std::vector<char>& file) {
  Elf64Ehdr ehdr;
  std::vector<Elf64ShdrFull> raw_sections;
  const Status parsed = read_sections(file, &ehdr, &raw_sections);
  if (!parsed) return Result<ElfImage>::error(parsed.message());

  ElfImage image;
  image.elf_type = ehdr.e_type;

  // Section names resolve through .shstrtab; a bogus e_shstrndx just
  // leaves names empty (the audit keys on types and flags, not names).
  const Elf64ShdrFull* shstr = ehdr.e_shstrndx < raw_sections.size()
                                   ? &raw_sections[ehdr.e_shstrndx]
                                   : nullptr;

  image.sections.reserve(raw_sections.size());
  for (const auto& raw : raw_sections) {
    SectionInfo sec;
    if (shstr != nullptr) {
      (void)read_name(file, *shstr, raw.sh_name, &sec.name);
    }
    sec.type = raw.sh_type;
    sec.flags = raw.sh_flags;
    sec.addr = raw.sh_addr;
    sec.offset = raw.sh_offset;
    sec.size = raw.sh_size;
    sec.link = raw.sh_link;
    sec.info = raw.sh_info;
    sec.entsize = raw.sh_entsize;
    if (sec.executable() && raw.sh_type != kShtNobits && raw.sh_size > 0) {
      if (!range_in_file(file, raw.sh_offset, raw.sh_size)) {
        return Result<ElfImage>::error("executable section beyond end of file");
      }
      const auto* base =
          reinterpret_cast<const unsigned char*>(file.data() + raw.sh_offset);
      sec.bytes.assign(base, base + raw.sh_size);
    }
    image.sections.push_back(std::move(sec));
  }

  // Full symbol table in original index order (relocations index it).
  // Prefer .symtab; a stripped binary's .dynsym is better than nothing.
  int sym_index = -1;
  for (std::uint32_t want : {kShtSymtab, kShtDynsym}) {
    for (std::size_t i = 0; i < raw_sections.size() && sym_index < 0; ++i) {
      if (raw_sections[i].sh_type == want) sym_index = static_cast<int>(i);
    }
    if (sym_index >= 0) {
      image.symbols_from_dynsym = (want == kShtDynsym);
      break;
    }
  }
  if (sym_index >= 0) {
    const Elf64ShdrFull& symtab = raw_sections[static_cast<std::size_t>(sym_index)];
    if (!range_in_file(file, symtab.sh_offset, symtab.sh_size)) {
      return Result<ElfImage>::error("symbol table beyond end of file");
    }
    if (symtab.sh_entsize != sizeof(Elf64Sym)) {
      return Result<ElfImage>::error("unexpected symbol entry size");
    }
    if (symtab.sh_link >= raw_sections.size()) {
      return Result<ElfImage>::error("symbol table links to missing string table");
    }
    const Elf64ShdrFull& strtab = raw_sections[symtab.sh_link];
    const std::size_t count = symtab.sh_size / sizeof(Elf64Sym);
    image.symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Elf64Sym raw;
      std::memcpy(&raw, file.data() + symtab.sh_offset + i * sizeof(Elf64Sym),
                  sizeof(raw));
      SymbolInfo sym;
      sym.value = raw.st_value;
      sym.size = raw.st_size;
      sym.shndx = raw.st_shndx;
      sym.type = raw.st_info & 0x0f;
      sym.bind = static_cast<unsigned char>(raw.st_info >> 4);
      // An unreadable name is an empty name, not a parse failure — the
      // rest of the table is still useful.
      (void)read_name(file, strtab, raw.st_name, &sym.name);
      image.symbols.push_back(std::move(sym));
    }
  }

  // RELA sections whose sh_info names an executable section: .rela.text
  // in relocatable objects, .rela.plt in linked binaries. SHT_REL (no
  // addend) does not occur on x86-64.
  for (const auto& raw : raw_sections) {
    if (raw.sh_type != kShtRela) continue;
    if (raw.sh_info >= image.sections.size()) continue;
    if (!image.sections[raw.sh_info].executable()) continue;
    if (!range_in_file(file, raw.sh_offset, raw.sh_size)) {
      return Result<ElfImage>::error("relocation section beyond end of file");
    }
    if (raw.sh_entsize != sizeof(Elf64Rela)) {
      return Result<ElfImage>::error("unexpected relocation entry size");
    }
    const std::size_t count = raw.sh_size / sizeof(Elf64Rela);
    for (std::size_t i = 0; i < count; ++i) {
      Elf64Rela rela;
      std::memcpy(&rela, file.data() + raw.sh_offset + i * sizeof(Elf64Rela),
                  sizeof(rela));
      RelocInfo reloc;
      reloc.offset = rela.r_offset;
      reloc.type = static_cast<std::uint32_t>(rela.r_info & 0xffffffffu);
      const std::uint64_t sym = rela.r_info >> 32;
      if (sym >= image.symbols.size()) continue;  // dangling index: skip entry
      reloc.sym_index = static_cast<std::uint32_t>(sym);
      reloc.addend = rela.r_addend;
      reloc.target_section = raw.sh_info;
      image.relocations.push_back(reloc);
    }
  }
  return image;
}

Result<ElfImage> read_elf_image(const std::string& path) {
  auto file = slurp_file(path);
  if (!file.is_ok()) return Result<ElfImage>::error(file.message());
  auto image = parse_elf_image(file.value());
  if (!image.is_ok()) {
    return Result<ElfImage>::error(image.message() + ": " + path);
  }
  return image;
}

}  // namespace tempest::symtab
