#include "symtab/elf.hpp"

#include <cstring>
#include <fstream>

namespace tempest::symtab {
namespace {

// ELF64 structures, laid out per the System V ABI. Defined locally so
// the parser also builds on non-ELF hosts (where it just never runs).
#pragma pack(push, 1)
struct Elf64Ehdr {
  unsigned char e_ident[16];
  std::uint16_t e_type;
  std::uint16_t e_machine;
  std::uint32_t e_version;
  std::uint64_t e_entry;
  std::uint64_t e_phoff;
  std::uint64_t e_shoff;
  std::uint32_t e_flags;
  std::uint16_t e_ehsize;
  std::uint16_t e_phentsize;
  std::uint16_t e_phnum;
  std::uint16_t e_shentsize;
  std::uint16_t e_shnum;
  std::uint16_t e_shstrndx;
};

struct Elf64ShdrFull {
  std::uint32_t sh_name;
  std::uint32_t sh_type;
  std::uint64_t sh_flags;
  std::uint64_t sh_addr;
  std::uint64_t sh_offset;
  std::uint64_t sh_size;
  std::uint32_t sh_link;
  std::uint32_t sh_info;
  std::uint64_t sh_addralign;
  std::uint64_t sh_entsize;
};

struct Elf64Sym {
  std::uint32_t st_name;
  unsigned char st_info;
  unsigned char st_other;
  std::uint16_t st_shndx;
  std::uint64_t st_value;
  std::uint64_t st_size;
};
#pragma pack(pop)

constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtDynsym = 11;
constexpr unsigned char kSttFunc = 2;

Result<std::vector<FuncSymbol>> extract(const std::vector<char>& file,
                                        const Elf64ShdrFull& symtab,
                                        const Elf64ShdrFull& strtab) {
  if (symtab.sh_offset + symtab.sh_size > file.size() ||
      strtab.sh_offset + strtab.sh_size > file.size()) {
    return Result<std::vector<FuncSymbol>>::error("ELF: section beyond end of file");
  }
  if (symtab.sh_entsize != sizeof(Elf64Sym)) {
    return Result<std::vector<FuncSymbol>>::error("ELF: unexpected symbol entry size");
  }
  const std::size_t count = symtab.sh_size / sizeof(Elf64Sym);
  const char* strings = file.data() + strtab.sh_offset;
  const std::size_t strings_len = strtab.sh_size;

  std::vector<FuncSymbol> out;
  out.reserve(count / 4);
  for (std::size_t i = 0; i < count; ++i) {
    Elf64Sym sym;
    std::memcpy(&sym, file.data() + symtab.sh_offset + i * sizeof(Elf64Sym), sizeof(sym));
    if ((sym.st_info & 0x0f) != kSttFunc || sym.st_value == 0) continue;
    if (sym.st_name >= strings_len) continue;
    const char* name = strings + sym.st_name;
    const std::size_t max_len = strings_len - sym.st_name;
    const std::size_t len = strnlen(name, max_len);
    if (len == 0 || len == max_len) continue;
    out.push_back({sym.st_value, sym.st_size, std::string(name, len)});
  }
  return out;
}

}  // namespace

Result<std::vector<FuncSymbol>> read_function_symbols(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<std::vector<FuncSymbol>>::error("cannot open " + path);
  std::vector<char> file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  if (file.size() < sizeof(Elf64Ehdr)) {
    return Result<std::vector<FuncSymbol>>::error("file too small for ELF header");
  }
  Elf64Ehdr ehdr;
  std::memcpy(&ehdr, file.data(), sizeof(ehdr));
  if (std::memcmp(ehdr.e_ident, "\x7f" "ELF", 4) != 0) {
    return Result<std::vector<FuncSymbol>>::error("not an ELF file: " + path);
  }
  if (ehdr.e_ident[4] != 2 /* ELFCLASS64 */) {
    return Result<std::vector<FuncSymbol>>::error("only ELF64 is supported");
  }
  if (ehdr.e_ident[5] != 1 /* little-endian */) {
    return Result<std::vector<FuncSymbol>>::error("only little-endian ELF is supported");
  }
  if (ehdr.e_shentsize != sizeof(Elf64ShdrFull)) {
    return Result<std::vector<FuncSymbol>>::error("unexpected section header size");
  }
  const std::uint64_t sh_end =
      ehdr.e_shoff + static_cast<std::uint64_t>(ehdr.e_shnum) * sizeof(Elf64ShdrFull);
  if (sh_end > file.size()) {
    return Result<std::vector<FuncSymbol>>::error("section headers beyond end of file");
  }

  std::vector<Elf64ShdrFull> sections(ehdr.e_shnum);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::memcpy(&sections[i], file.data() + ehdr.e_shoff + i * sizeof(Elf64ShdrFull),
                sizeof(Elf64ShdrFull));
  }

  // Prefer the full .symtab; fall back to .dynsym.
  for (std::uint32_t want : {kShtSymtab, kShtDynsym}) {
    for (const auto& sec : sections) {
      if (sec.sh_type != want) continue;
      if (sec.sh_link >= sections.size()) continue;
      auto result = extract(file, sec, sections[sec.sh_link]);
      if (result.is_ok() && !result.value().empty()) return result;
    }
  }
  return Result<std::vector<FuncSymbol>>::error("no function symbols found in " + path);
}

}  // namespace tempest::symtab
