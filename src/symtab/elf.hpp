// Minimal ELF64 symbol-table reader.
//
// The Tempest parser "reads the symbol table of the executable to map
// addresses of functions to their names". This is that component,
// implemented directly against the ELF64 layout (no libelf dependency):
// parse section headers, extract STT_FUNC symbols from .symtab
// (falling back to .dynsym for stripped-but-dynamic binaries).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::symtab {

/// One function symbol at its link-time address.
struct FuncSymbol {
  std::uint64_t value = 0;  ///< st_value (link-time address)
  std::uint64_t size = 0;   ///< st_size; 0 when the assembler omitted it
  std::string name;         ///< raw (possibly mangled) name
};

/// Parse function symbols from an ELF64 file. Errors cover missing
/// files, non-ELF input, wrong class/endianness, and truncation.
Result<std::vector<FuncSymbol>> read_function_symbols(const std::string& path);

}  // namespace tempest::symtab
