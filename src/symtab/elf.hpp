// Minimal ELF64 reader: symbol tables, section headers, relocations.
//
// The Tempest parser "reads the symbol table of the executable to map
// addresses of functions to their names". This is that component,
// implemented directly against the ELF64 layout (no libelf dependency).
// Two entry points share one bounds-checked core:
//
//   * read_function_symbols — STT_FUNC entries from .symtab (falling
//     back to .dynsym for stripped-but-dynamic binaries); what the
//     runtime Resolver needs.
//   * read_elf_image — the full static inventory the audit pass needs:
//     every section header (with raw bytes for executable sections),
//     the complete symbol table in original index order, and all RELA
//     relocations that patch executable sections (.rela.text of
//     relocatable objects, .rela.plt of linked binaries).
//
// Every offset/size/index from the file is validated before use;
// malformed input returns a Status error, never an out-of-bounds read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::symtab {

/// One function symbol at its link-time address.
struct FuncSymbol {
  std::uint64_t value = 0;  ///< st_value (link-time address)
  std::uint64_t size = 0;   ///< st_size; 0 when the assembler omitted it
  std::string name;         ///< raw (possibly mangled) name
};

// ELF constants the audit layer keys on (System V ABI / x86-64 psABI).
inline constexpr std::uint16_t kEtRel = 1;   ///< relocatable object (.o)
inline constexpr std::uint16_t kEtExec = 2;  ///< fixed-address executable
inline constexpr std::uint16_t kEtDyn = 3;   ///< PIE executable / shared object
inline constexpr std::uint32_t kShtProgbits = 1;
inline constexpr std::uint32_t kShtSymtab = 2;
inline constexpr std::uint32_t kShtDynsym = 11;
inline constexpr std::uint32_t kShtRela = 4;
inline constexpr std::uint64_t kShfExecinstr = 0x4;
inline constexpr unsigned char kSttFunc = 2;
inline constexpr std::uint32_t kRX8664Pc32 = 2;    ///< R_X86_64_PC32
inline constexpr std::uint32_t kRX8664Plt32 = 4;   ///< R_X86_64_PLT32

/// One section header, name resolved through .shstrtab. Raw bytes are
/// retained only for executable sections (SHF_EXECINSTR) — that is what
/// the audit call-scan reads; keeping everything would double the
/// file's footprint for no consumer.
struct SectionInfo {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  std::uint64_t addr = 0;    ///< virtual address (0 in ET_REL objects)
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint32_t info = 0;
  std::uint64_t entsize = 0;
  std::vector<unsigned char> bytes;  ///< populated iff executable()

  bool executable() const { return (flags & kShfExecinstr) != 0; }
};

/// One symbol, kept in original symtab index order so relocation
/// r_sym indices resolve directly.
struct SymbolInfo {
  std::uint64_t value = 0;
  std::uint64_t size = 0;
  std::string name;
  std::uint16_t shndx = 0;     ///< defining section index (SHN_UNDEF = 0)
  unsigned char type = 0;      ///< STT_*
  unsigned char bind = 0;      ///< STB_*

  bool is_function() const { return type == kSttFunc; }
  bool is_defined() const { return shndx != 0; }
};

/// One RELA relocation patching an executable section.
struct RelocInfo {
  std::uint64_t offset = 0;        ///< fixup location (vaddr, or section
                                   ///< offset in ET_REL objects)
  std::uint32_t type = 0;          ///< R_X86_64_*
  std::uint32_t sym_index = 0;     ///< into ElfImage::symbols
  std::int64_t addend = 0;
  std::uint32_t target_section = 0;  ///< section index the fixup lands in
};

/// Everything the static audit needs from one object or executable.
struct ElfImage {
  std::uint16_t elf_type = 0;  ///< ET_REL / ET_EXEC / ET_DYN
  std::vector<SectionInfo> sections;
  std::vector<SymbolInfo> symbols;   ///< full table, original index order
  bool symbols_from_dynsym = false;  ///< .symtab absent, fell back
  std::vector<RelocInfo> relocations;  ///< only those hitting exec sections
};

/// Parse function symbols from an ELF64 file. Errors cover missing
/// files, non-ELF input, wrong class/endianness, and truncation.
Result<std::vector<FuncSymbol>> read_function_symbols(const std::string& path);

/// Parse the full static inventory from an ELF64 file (see ElfImage).
/// Accepts linked executables and relocatable objects alike; the same
/// malformed-input contract as read_function_symbols applies.
Result<ElfImage> read_elf_image(const std::string& path);

/// In-memory variant of read_elf_image for callers that already hold
/// the file bytes (fuzz tests craft images directly).
Result<ElfImage> parse_elf_image(const std::vector<char>& file);

}  // namespace tempest::symtab
