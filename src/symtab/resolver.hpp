// Runtime address -> function name resolution.
//
// Combines the ELF symbol table with the process load bias (PIE
// executables relocate), producing sorted [start, end) ranges for
// binary-searched lookup. dladdr is the fallback for addresses the
// table misses (e.g. shared-library functions); unresolvable addresses
// render as hex so the profile is still usable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "symtab/elf.hpp"

namespace tempest::symtab {

/// Demangle a C++ symbol; returns the input unchanged when it is not a
/// mangled name.
std::string demangle(const std::string& name);

/// Load bias of the main executable (0 for non-PIE).
std::uint64_t current_load_bias();

class Resolver {
 public:
  /// Build from explicit symbols and bias (offline trace parsing).
  Resolver(std::vector<FuncSymbol> symbols, std::uint64_t load_bias);

  /// Build for the running process: /proc/self/exe + current bias.
  static Result<Resolver> for_current_process();

  /// Build for a recorded executable path + recorded bias.
  static Result<Resolver> for_executable(const std::string& path,
                                         std::uint64_t load_bias);

  /// Resolve a runtime address to a demangled function name.
  std::string resolve(std::uint64_t addr) const;

  /// Resolve, reporting whether the symbol table contained the address
  /// (tests and the parser's unresolved-count diagnostics use this).
  bool resolve_checked(std::uint64_t addr, std::string* name) const;

  std::size_t symbol_count() const { return ranges_.size(); }

 private:
  struct Range {
    std::uint64_t start;
    std::uint64_t end;
    std::string name;
  };
  std::vector<Range> ranges_;  ///< sorted by start
};

}  // namespace tempest::symtab
