#include "export/export.hpp"

#include <algorithm>

#include "common/fastwrite.hpp"
#include "telemetry/metrics.hpp"

namespace tempest::exporter {

void publish_export_telemetry(const ExportStats& stats) {
  telemetry::count(telemetry::Counter::kExportEvents, stats.events_exported);
  telemetry::count(telemetry::Counter::kExportSpansDropped,
                   stats.spans_dropped);
  telemetry::count(telemetry::Counter::kExportBytes, stats.bytes_written);
}

NameTable::NameTable(const pipeline::TraceMeta& meta,
                     const symtab::Resolver* resolver)
    : resolver_(resolver) {
  for (const auto& s : meta.synthetic_symbols) synthetic_[s.addr] = s.name;
}

std::size_t NameTable::index_of(std::uint64_t addr) {
  const auto it = index_.find(addr);
  if (it != index_.end()) return it->second;

  std::string name;
  const auto syn = synthetic_.find(addr);
  if (syn != synthetic_.end()) {
    name = syn->second;
  } else if (resolver_ != nullptr && addr < trace::kSyntheticAddrBase) {
    name = resolver_->resolve(addr);
  } else {
    name = "0x";
    fastwrite::append_hex(name, addr);
  }
  const std::size_t index = names_.size();
  names_.push_back(std::move(name));
  index_[addr] = index;
  return index;
}

const std::string& NameTable::name_of(std::uint64_t addr) {
  return names_[index_of(addr)];
}

bool SpanScrubber::close(const ThreadKey& key, std::uint64_t addr,
                         std::vector<std::uint64_t>* to_close) {
  to_close->clear();
  std::vector<std::uint64_t>* found = find_stack(key);
  if (found == nullptr) return false;
  std::vector<std::uint64_t>& stack = *found;
  const auto frame = std::find(stack.rbegin(), stack.rend(), addr);
  if (frame == stack.rend()) return false;
  // Everything above the matching frame closes first (innermost out),
  // then the frame itself — to_close is already innermost-first.
  for (auto pop = stack.rbegin(); ; ++pop) {
    to_close->push_back(*pop);
    if (pop == frame) break;
  }
  stack.resize(stack.size() - to_close->size());
  return true;
}

void SamplePeriodEstimator::observe(const trace::TempSample& sample) {
  Sensor& s = sensors_[{sample.node_id, sample.sensor_id}];
  if (s.count == 0) s.first_tsc = sample.tsc;
  s.last_tsc = sample.tsc;
  ++s.count;
}

double SamplePeriodEstimator::period_ticks() const {
  double tightest = 0.0;
  for (const auto& [key, s] : sensors_) {
    if (s.count < 2 || s.last_tsc <= s.first_tsc) continue;
    const double mean = static_cast<double>(s.last_tsc - s.first_tsc) /
                        static_cast<double>(s.count - 1);
    if (tightest == 0.0 || mean < tightest) tightest = mean;
  }
  return tightest;
}

std::vector<std::string> correlation_warnings(const ClockCorrelator& correlator,
                                              double sample_period_us) {
  std::vector<std::string> warnings;
  if (sample_period_us > 0.0 &&
      correlator.max_residual_us() > sample_period_us) {
    std::string warning = "residual clock skew ";
    fastwrite::append_fixed(warning, correlator.max_residual_us(), 1);
    warning += " us exceeds the sample period ";
    fastwrite::append_fixed(warning, sample_period_us, 1);
    warning +=
        " us; cross-rank temperature attribution may smear by more than "
        "one sample (record more clock syncs)";
    warnings.push_back(std::move(warning));
  }
  return warnings;
}

}  // namespace tempest::exporter
