// speedscope JSON emitter (https://www.speedscope.app).
//
// One evented profile per recorded thread: `O` (open) / `C` (close)
// events against a shared frame table, `at` in microseconds on the
// correlated timebase. speedscope wants each profile's events as one
// contiguous array, which fights a streaming pipeline — so each
// thread's events spool to a small scratch file as batches arrive, and
// on_end stitches the spools into the final document. Peak memory is
// the per-thread stacks plus the frame table; disk holds the bulk.
//
// The same SpanScrubber policy as the Perfetto emitter keeps every O
// matched by a C (speedscope hard-errors on unbalanced events):
// orphan exits are dropped and counted, missing exits force-close.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/fastwrite.hpp"
#include "export/clock.hpp"
#include "export/export.hpp"
#include "pipeline/stage.hpp"
#include "symtab/resolver.hpp"

namespace tempest::exporter {

class SpeedscopeExporter : public pipeline::BatchSink {
 public:
  /// `spool_prefix` names the scratch files (`<prefix>.t<node>_<tid>.
  /// spool`), one per thread, removed on success and in the destructor.
  /// Put it next to the output file (or under /tmp when writing to
  /// stdout). `resolver` may be null: addresses render as hex.
  SpeedscopeExporter(std::ostream& out, ClockCorrelator correlator,
                     std::string spool_prefix,
                     const symtab::Resolver* resolver = nullptr);
  ~SpeedscopeExporter() override;

  Status begin(const pipeline::TraceMeta& meta) override;
  Status on_batch(const pipeline::TraceMeta& meta,
                  const pipeline::EventBatch& batch) override;
  Status on_end(const pipeline::TraceMeta& meta) override;

  /// Valid after a successful on_end.
  const ExportStats& stats() const { return stats_; }
  /// Residual-skew lint findings; the CLIs print them to stderr.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Per-thread spool: the profile's events array contents, comma-
  /// joined, plus the bookkeeping to write its profile header later.
  struct ThreadSpool {
    std::ofstream file;
    std::string path;
    /// Write-behind buffer: events append here and hit the file in
    /// coarse chunks instead of one write call per event.
    std::string buf;
    bool any_event = false;
    double first_at = 0.0;
    double last_at = 0.0;
    std::uint64_t event_count = 0;
  };

  ThreadSpool& spool_for(const SpanScrubber::ThreadKey& key);
  void spool_event(ThreadSpool& spool, char type, std::size_t frame,
                   double at);
  void flush_spool(ThreadSpool& spool);
  /// {"type":"O","frame":N,"at": — preformatted once per frame index so
  /// the per-event work is two memcpys plus one to_chars.
  const std::string& frame_prefix(char type, std::size_t frame);
  void write(const std::string& s);
  void remove_spools();

  std::ostream* out_;
  fastwrite::BufferedWriter writer_;
  ClockCorrelator correlator_;
  std::string spool_prefix_;
  const symtab::Resolver* resolver_;

  std::optional<NameTable> names_;  ///< built in begin() (needs metadata)
  SpanScrubber scrubber_;
  SamplePeriodEstimator sample_period_;
  std::map<SpanScrubber::ThreadKey, ThreadSpool> spools_;
  /// Dense thread-id -> spool pointers (map nodes are stable); first is
  /// node_id + 1, 0 = empty. Turns the per-event spool lookup into an
  /// array index; mismatches fall back to the map.
  std::vector<std::pair<std::uint32_t, ThreadSpool*>> spool_cache_;
  /// Thread -> "rank N thread T (core C)" profile names, from metadata.
  std::map<SpanScrubber::ThreadKey, std::string> thread_names_;

  ExportStats stats_;
  std::vector<std::string> warnings_;
  std::uint64_t max_tsc_ = 0;
  std::string line_;  ///< reused per-event scratch buffer
  /// Frame-index event prefixes, grown on demand ([0] = open, [1] =
  /// close).
  std::vector<std::string> open_prefixes_;
  std::vector<std::string> close_prefixes_;
};

}  // namespace tempest::exporter
