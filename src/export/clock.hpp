// Cross-rank clock correlation for the interactive trace exporters.
//
// The pipeline's sources already rewrite every record into the global
// tsc domain (ClockAlignStage / RankFanIn's refill-time alignment).
// What the viewers need on top is (a) a shared human timebase —
// microseconds since the run start, which is what Perfetto's `ts` and
// speedscope's `at` fields mean — and (b) an honest account of how
// well the per-rank affine fits explain the sync observations, so a
// user scrubbing a 4-rank timeline knows whether a 30 us cross-rank
// gap is real or inside the correlation error. ClockCorrelator owns
// both: it refits the same sync records the source consumed
// (trace::fit_clocks, so the numbers match the alignment that actually
// ran) and converts aligned timestamps against a base fixed at the
// first exported record.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/align.hpp"
#include "trace/trace.hpp"

namespace tempest::exporter {

/// Per-rank (per-node) clock-correlation summary, derived from the
/// rank's sync records. All quantities are in the global timebase.
struct RankClock {
  std::uint16_t node_id = 0;
  std::size_t sync_count = 0;
  /// Global minus rank-local clock at the fit's reference point, us —
  /// how far this rank's clock sat behind (positive) or ahead of
  /// (negative) the global clock.
  double skew_us = 0.0;
  /// Rate error of the rank clock against the global clock, parts per
  /// million ((fit slope - 1) * 1e6) — the drift the fit removed.
  double drift_ppm = 0.0;
  /// Largest |fit(node_tsc) - global_tsc| over the rank's syncs, us —
  /// the correlation error left after the affine fit.
  double residual_us = 0.0;
};

/// Maps aligned (global-domain) tsc values onto one microsecond
/// timebase and summarises the per-rank fits behind the alignment.
class ClockCorrelator {
 public:
  /// `syncs` is the same record stream the aligning source consumed
  /// (ChunkedTraceSource::clock_syncs_ahead, RankFanIn::sync_records,
  /// or a copy of Trace::clock_syncs taken before align_clocks). An
  /// empty vector means a single clock domain: no rank metadata, zero
  /// residual.
  ClockCorrelator(double tsc_ticks_per_second,
                  const std::vector<trace::ClockSync>& syncs);

  /// Fix the timebase origin; to_us is relative to it. Exporters call
  /// this with the first aligned record timestamp they see, so both
  /// output formats start near t=0.
  void set_base(std::uint64_t base_tsc) {
    base_ = base_tsc;
    has_base_ = true;
  }
  bool has_base() const { return has_base_; }
  std::uint64_t base() const { return base_; }

  /// Aligned tsc -> microseconds since base (signed: a record that
  /// precedes the base, e.g. an early temperature sample, maps below
  /// zero rather than wrapping).
  double to_us(std::uint64_t aligned_tsc) const {
    return static_cast<double>(static_cast<std::int64_t>(aligned_tsc - base_)) /
           ticks_per_us_;
  }

  /// Ticks -> microseconds without rebasing (durations, periods).
  double ticks_to_us(double ticks) const { return ticks / ticks_per_us_; }

  /// Ranks that contributed sync records, ordered by node id. Empty
  /// for single-domain traces.
  const std::vector<RankClock>& ranks() const { return ranks_; }

  /// Largest residual across ranks, us (0 when no syncs).
  double max_residual_us() const { return max_residual_us_; }

 private:
  double ticks_per_us_ = 1.0;
  std::uint64_t base_ = 0;
  bool has_base_ = false;
  std::vector<RankClock> ranks_;
  double max_residual_us_ = 0.0;
};

}  // namespace tempest::exporter
