// Chrome Trace Event / Perfetto JSON emitter.
//
// One output process per rank (pid = node id, named after the rank's
// hostname), one track per recorded thread (tid = thread id), `B`/`E`
// duration events from function entry/exit, one counter track per
// sensor carrying the temperature series, and instant events at trace
// end for the recorder's dropped-event / missed-tick telemetry from
// the RUNSTATS trailer. A `metadata` section documents the per-rank
// clock correlation (skew, drift, residual) and what the export
// dropped — everything a user scrubbing the timeline needs to judge
// what they see. Open the file at https://ui.perfetto.dev or
// chrome://tracing.
//
// Streaming: events are written as batches arrive — peak memory is the
// per-thread stacks plus the name table, independent of event count.
// Identical record streams produce byte-identical files, so the
// --stream and batch paths of tempest_parse compare equal with cmp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "export/clock.hpp"
#include "export/export.hpp"
#include "pipeline/stage.hpp"
#include "symtab/resolver.hpp"

namespace tempest::exporter {

class PerfettoExporter : public pipeline::BatchSink {
 public:
  /// `resolver` may be null: addresses render as hex (synthetic region
  /// names still resolve). The correlator carries the sync records'
  /// fits; its base is set from the first record unless already fixed.
  PerfettoExporter(std::ostream& out, ClockCorrelator correlator,
                   const symtab::Resolver* resolver = nullptr);

  Status begin(const pipeline::TraceMeta& meta) override;
  Status on_batch(const pipeline::TraceMeta& meta,
                  const pipeline::EventBatch& batch) override;
  Status on_end(const pipeline::TraceMeta& meta) override;

  /// Valid after a successful on_end.
  const ExportStats& stats() const { return stats_; }
  /// Residual-skew lint findings (also embedded in the metadata
  /// section); the CLIs print them to stderr.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  void write(const std::string& s);
  /// Append one traceEvents entry (comma handling + byte accounting).
  void put_event(const std::string& json);
  void note_base(std::uint64_t tsc);

  std::ostream* out_;
  ClockCorrelator correlator_;
  const symtab::Resolver* resolver_;

  std::optional<NameTable> names_;  ///< built in begin() (needs metadata)
  SpanScrubber scrubber_;
  SamplePeriodEstimator sample_period_;
  /// (node, sensor) -> counter-track name, from the sensor inventory.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::string> sensor_names_;

  ExportStats stats_;
  std::vector<std::string> warnings_;
  std::uint64_t max_tsc_ = 0;
  bool any_event_ = false;   ///< comma state for the traceEvents array
  std::string line_;         ///< reused per-event scratch buffer
};

}  // namespace tempest::exporter
