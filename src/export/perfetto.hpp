// Chrome Trace Event / Perfetto JSON emitter.
//
// One output process per rank (pid = node id, named after the rank's
// hostname), one track per recorded thread (tid = thread id), `B`/`E`
// duration events from function entry/exit, one counter track per
// sensor carrying the temperature series, and instant events at trace
// end for the recorder's dropped-event / missed-tick telemetry from
// the RUNSTATS trailer. A `metadata` section documents the per-rank
// clock correlation (skew, drift, residual) and what the export
// dropped — everything a user scrubbing the timeline needs to judge
// what they see. Open the file at https://ui.perfetto.dev or
// chrome://tracing.
//
// Streaming: events are written as batches arrive — peak memory is the
// per-thread stacks plus the name table, independent of event count.
// Identical record streams produce byte-identical files, so the
// --stream and batch paths of tempest_parse compare equal with cmp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fastwrite.hpp"
#include "export/clock.hpp"
#include "export/export.hpp"
#include "pipeline/stage.hpp"
#include "symtab/resolver.hpp"

namespace tempest::exporter {

class PerfettoExporter : public pipeline::BatchSink {
 public:
  /// `resolver` may be null: addresses render as hex (synthetic region
  /// names still resolve). The correlator carries the sync records'
  /// fits; its base is set from the first record unless already fixed.
  PerfettoExporter(std::ostream& out, ClockCorrelator correlator,
                   const symtab::Resolver* resolver = nullptr);

  /// Mark these diff findings on the timeline: a thread-scoped instant
  /// at each function's first span plus a `tempest_diff` metadata
  /// block. Must be called before begin().
  void set_annotations(std::vector<DiffAnnotation> annotations);

  Status begin(const pipeline::TraceMeta& meta) override;
  Status on_batch(const pipeline::TraceMeta& meta,
                  const pipeline::EventBatch& batch) override;
  Status on_end(const pipeline::TraceMeta& meta) override;

  /// Valid after a successful on_end.
  const ExportStats& stats() const { return stats_; }
  /// Residual-skew lint findings (also embedded in the metadata
  /// section); the CLIs print them to stderr.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Everything about a B/E event that doesn't change per event,
  /// preformatted once per (rank, thread) track: the per-event work is
  /// two fragment memcpys around a single to_chars timestamp.
  struct TrackFragments {
    std::string begin_prefix;  ///< {"ph":"B","pid":N,"tid":T,"ts":
    std::string end_prefix;    ///< {"ph":"E","pid":N,"tid":T,"ts":
  };
  /// Counter-event fragments, one per (rank, sensor) track.
  struct CounterFragments {
    std::string prefix;     ///< {"ph":"C","pid":N,"ts":
    std::string name_args;  ///< ,"name":"temp ...","args":{"celsius":
  };

  void write(const std::string& s);
  /// Append one traceEvents entry (comma handling + byte accounting).
  void put_event(const std::string& json);
  void note_base(std::uint64_t tsc);
  const TrackFragments& track_fragments(std::uint16_t node_id,
                                        std::uint32_t thread_id);
  const std::string& name_suffix(std::uint64_t addr);
  const CounterFragments& counter_fragments(std::uint16_t node_id,
                                            std::uint16_t sensor_id);

  std::ostream* out_;
  fastwrite::BufferedWriter writer_;
  ClockCorrelator correlator_;
  const symtab::Resolver* resolver_;

  std::unordered_map<std::uint64_t, TrackFragments> tracks_;
  /// Dense thread-id -> track pointers (unordered_map values are
  /// pointer-stable); first is node_id + 1, 0 = empty. Per-event track
  /// lookup becomes an array index; mismatches fall back to the map.
  std::vector<std::pair<std::uint32_t, const TrackFragments*>> track_cache_;
  /// addr -> ,"cat":"fn","name":"<escaped>"} — the escape runs once per
  /// distinct function, not once per event.
  std::unordered_map<std::uint64_t, std::string> name_suffixes_;
  std::unordered_map<std::uint32_t, CounterFragments> counters_;

  std::optional<NameTable> names_;  ///< built in begin() (needs metadata)
  SpanScrubber scrubber_;
  SamplePeriodEstimator sample_period_;
  /// (node, sensor) -> counter-track name, from the sensor inventory.
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::string> sensor_names_;

  /// Pending diff annotations by function name; resolved to addresses
  /// lazily at each address's first B event (names are only knowable
  /// once the resolver has seen the address).
  std::map<std::string, DiffAnnotation> annotations_by_name_;
  std::vector<const DiffAnnotation*> annotations_marked_;
  std::unordered_map<std::uint64_t, const DiffAnnotation*> annotation_by_addr_;

  ExportStats stats_;
  std::vector<std::string> warnings_;
  std::uint64_t max_tsc_ = 0;
  bool any_event_ = false;   ///< comma state for the traceEvents array
  std::string line_;         ///< reused per-event scratch buffer
};

}  // namespace tempest::exporter
