// Shared vocabulary of the interactive trace exporters.
//
// The paper's parser answers "which functions ran hot"; the exporters
// answer "show me" — they turn a recorded trace into files that open
// directly in Perfetto / chrome://tracing (export/perfetto.hpp) and
// speedscope (export/speedscope.hpp). Both are BatchSinks on the
// streaming pipeline, so a 1e7-event trace exports in bounded memory,
// and both share the pieces here: symbolised name/frame interning, the
// call-stack scrubber that keeps viewer nesting invariants intact when
// the recorded entry/exit stream is unbalanced, a streaming estimate
// of tempd's sample cadence (the threshold for the residual-skew
// warning), and the exported-record accounting that feeds the
// telemetry registry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "export/clock.hpp"
#include "pipeline/stage.hpp"
#include "symtab/resolver.hpp"
#include "trace/trace.hpp"

namespace tempest::exporter {

/// What an export run did. Mirrored into the telemetry registry
/// (Counter::kExport*) at on_end so tempest-top can show export runs.
struct ExportStats {
  std::uint64_t events_exported = 0;    ///< timeline records written (B/E/C/i, O/C)
  std::uint64_t spans_dropped = 0;      ///< exits with no open frame, discarded
  std::uint64_t spans_force_closed = 0; ///< frames closed without a recorded exit
  std::uint64_t bytes_written = 0;      ///< bytes of output produced
};

/// Record `stats` into the process-wide metrics registry.
void publish_export_telemetry(const ExportStats& stats);

/// One tempest-diff finding to mark on an exported timeline: an
/// instant event lands on the function's first span and the finding is
/// echoed in the metadata section, so a user scrubbing the baseline
/// sees where the ranked regressions live.
struct DiffAnnotation {
  std::string function;      ///< symbolised name, as ranked by the diff
  double delta_time_s = 0.0; ///< current - baseline total time
  double confidence = 0.0;   ///< Welch confidence the diff assigned
  bool regression = true;    ///< false marks a ranked improvement
};

/// Interns (addr -> name, frame index) with the same precedence the
/// profile builder uses: synthetic region names win, then the ELF
/// resolver (demangled), then hex. Indices are dense in first-use
/// order — exactly speedscope's frame table.
class NameTable {
 public:
  NameTable(const pipeline::TraceMeta& meta, const symtab::Resolver* resolver);

  /// Index of `addr`, interning on first use.
  std::size_t index_of(std::uint64_t addr);
  /// Name of an interned address (valid after index_of).
  const std::string& name_of(std::uint64_t addr);

  /// All interned names, by frame index.
  const std::vector<std::string>& names() const { return names_; }

 private:
  const symtab::Resolver* resolver_;
  std::map<std::uint64_t, std::string> synthetic_;
  /// addr -> frame index; hashed, this sits on every exporter's
  /// per-event path. Frame order comes from names_, not from here.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<std::string> names_;
};

/// Reconciles the recorded entry/exit stream against per-thread call
/// stacks so the emitted spans always nest. Policy (matching the
/// acceptance rule "unbalanced events are dropped, never emitted as
/// malformed spans"):
///   * enter        -> push, emit an open.
///   * exit whose address is on the stack
///                  -> close the frames above it first (those closes
///                     are force-closures: their exits went missing),
///                     then close the frame itself.
///   * exit with no matching open frame
///                  -> drop, counted.
///   * end of trace -> remaining frames are force-closed by the
///                     exporter at the final timestamp.
class SpanScrubber {
 public:
  struct ThreadKey {
    std::uint16_t node_id = 0;
    std::uint32_t thread_id = 0;
    bool operator<(const ThreadKey& o) const {
      return node_id != o.node_id ? node_id < o.node_id
                                  : thread_id < o.thread_id;
    }
  };
  using Stacks = std::map<ThreadKey, std::vector<std::uint64_t>>;

  void push(const ThreadKey& key, std::uint64_t addr) {
    stack_for(key).push_back(addr);
  }

  /// Handle an exit of `addr`: fills `to_close` with the frames to
  /// close in order (innermost first; all but the last are
  /// force-closures) and pops them. Returns false — and leaves
  /// `to_close` empty — when the exit has no matching open frame.
  bool close(const ThreadKey& key, std::uint64_t addr,
             std::vector<std::uint64_t>* to_close);

  /// Open frames left per thread (deterministic key order); exporters
  /// force-close these at end of stream, innermost first.
  const Stacks& stacks() const { return stacks_; }

 private:
  /// Dense thread-id slot pointing into stacks_ (map nodes are
  /// stable). Thread ids are dense per-process indices, so this turns
  /// the per-event stack lookup into an array index; node_plus_1 == 0
  /// marks an empty slot, and a node mismatch (two ranks reusing a
  /// thread id, which the fan-in contract forbids) falls back to the
  /// map — slower, still correct.
  struct CacheSlot {
    std::uint32_t node_plus_1 = 0;
    std::vector<std::uint64_t>* stack = nullptr;
  };
  static constexpr std::uint32_t kDenseTids = 1u << 16;

  std::vector<std::uint64_t>& stack_for(const ThreadKey& key) {
    if (key.thread_id < kDenseTids) {
      if (key.thread_id >= cache_.size()) cache_.resize(key.thread_id + 1);
      CacheSlot& slot = cache_[key.thread_id];
      if (slot.stack != nullptr &&
          slot.node_plus_1 == std::uint32_t{key.node_id} + 1) {
        return *slot.stack;
      }
      std::vector<std::uint64_t>& stack = stacks_[key];
      slot = {std::uint32_t{key.node_id} + 1, &stack};
      return stack;
    }
    return stacks_[key];
  }

  /// Lookup that never creates an entry (close() must not materialise
  /// stacks for threads that only ever exit).
  std::vector<std::uint64_t>* find_stack(const ThreadKey& key) {
    if (key.thread_id < cache_.size()) {
      const CacheSlot& slot = cache_[key.thread_id];
      if (slot.stack != nullptr &&
          slot.node_plus_1 == std::uint32_t{key.node_id} + 1) {
        return slot.stack;
      }
    }
    const auto it = stacks_.find(key);
    return it == stacks_.end() ? nullptr : &it->second;
  }

  Stacks stacks_;
  std::vector<CacheSlot> cache_;
};

/// Streaming estimate of the temperature sampling cadence: per
/// (node, sensor) mean gap between consecutive samples, reduced to the
/// tightest (smallest) per-sensor mean. State is O(sensors).
class SamplePeriodEstimator {
 public:
  void observe(const trace::TempSample& sample);

  /// Tightest mean sample period in ticks; 0 until some sensor has
  /// seen at least two samples.
  double period_ticks() const;

 private:
  struct Sensor {
    std::uint64_t first_tsc = 0;
    std::uint64_t last_tsc = 0;
    std::uint64_t count = 0;
  };
  std::map<std::pair<std::uint16_t, std::uint16_t>, Sensor> sensors_;
};

/// The residual-skew lint: one warning string when the correlation
/// error exceeds the observed sample period (temperature attribution
/// across ranks then smears by more than one sample), empty otherwise.
std::vector<std::string> correlation_warnings(const ClockCorrelator& correlator,
                                              double sample_period_us);

}  // namespace tempest::exporter
