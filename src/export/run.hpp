// One-call export driver shared by the CLIs.
//
// tempest_parse --export and tempest-export need the same plumbing:
// open the trace(s) as a pipeline source (ChunkedTraceSource,
// MemoryTraceSource, or RankFanIn), recover the sync records for the
// ClockCorrelator, build the symbol resolver, and drive the chosen
// emitter through run_pipeline. run_export owns that plumbing so the
// two tools stay thin and — critically — byte-identical: the streaming
// and batch paths both feed the same exporter sink the same aligned,
// time-ordered record stream.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "export/export.hpp"

namespace tempest::exporter {

enum class Format { kPerfetto, kSpeedscope };

/// Parse a --format/--export value; false on unknown names.
bool parse_format(const std::string& name, Format* format);

struct ExportRunOptions {
  Format format = Format::kPerfetto;
  /// Stream from disk in bounded batches instead of loading the trace.
  /// Multi-file inputs always stream (RankFanIn). Output bytes are
  /// identical either way.
  bool stream = false;
  /// Cross-node clock alignment (single-file only; fan-in always
  /// aligns). Off also suppresses the correlation metadata — raw
  /// timestamps carry no cross-rank meaning to document.
  bool align = true;
  /// Resolve addresses through the ELF symtab (demangled). Off renders
  /// hex; synthetic region names resolve regardless.
  bool symbolize = true;
  /// Symbolise against this binary instead of the recorded path.
  std::string exe_override;
  /// Scratch-file prefix for the speedscope emitter's per-thread
  /// spools. Required for Format::kSpeedscope.
  std::string spool_prefix;
  /// Worker count for the streaming paths: >1 decodes trace sections on
  /// a worker pool and prefetches batches ahead of the emitter. Output
  /// bytes are identical at any count (emission itself stays ordered on
  /// the consumer thread); 1 is the historical serial path.
  unsigned threads = 1;
  /// tempest-diff findings to mark on the timeline (perfetto only; the
  /// speedscope format has no instant/metadata vocabulary for them).
  std::vector<DiffAnnotation> annotations;
};

struct ExportRunResult {
  ExportStats stats;
  /// Residual-skew findings plus non-fatal setup notes (e.g. a missing
  /// symbol table); callers print these to stderr.
  std::vector<std::string> warnings;
};

/// Export `paths` (one trace per rank; >1 requires fan-in merge) to
/// `out` in `options.format`. Errors (unreadable trace, out-of-order
/// stream, write failure) come back as a Status; warnings ride the
/// result.
Result<ExportRunResult> run_export(const std::vector<std::string>& paths,
                                   std::ostream& out,
                                   const ExportRunOptions& options);

}  // namespace tempest::exporter
