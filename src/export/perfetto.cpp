#include "export/perfetto.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "report/json.hpp"
#include "trace/writer.hpp"

namespace tempest::exporter {

namespace {

/// %.3f keeps sub-microsecond detail (a 3 GHz tsc tick is ~0.3 ns;
/// viewers display at ns granularity anyway) while keeping the output
/// deterministic across platforms — printf of a double with fixed
/// precision is exact for the magnitudes a trace produces.
void append_ts(std::string* line, double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  *line += buf;
}

void append_u64(std::string* line, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *line += buf;
}

void append_double(std::string* line, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *line += buf;
}

}  // namespace

PerfettoExporter::PerfettoExporter(std::ostream& out,
                                   ClockCorrelator correlator,
                                   const symtab::Resolver* resolver)
    : out_(&out), correlator_(std::move(correlator)), resolver_(resolver) {}

void PerfettoExporter::write(const std::string& s) {
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  stats_.bytes_written += s.size();
}

void PerfettoExporter::put_event(const std::string& json) {
  if (any_event_) {
    write(",\n");
  } else {
    any_event_ = true;
  }
  write(json);
}

void PerfettoExporter::note_base(std::uint64_t tsc) {
  if (!correlator_.has_base()) correlator_.set_base(tsc);
  if (tsc > max_tsc_) max_tsc_ = tsc;
}

Status PerfettoExporter::begin(const pipeline::TraceMeta& meta) {
  names_.emplace(meta, resolver_);
  for (const auto& s : meta.sensors) {
    sensor_names_[{s.node_id, s.sensor_id}] = s.name;
  }

  write("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n");

  // Rank/thread naming metadata first, so the tracks are labelled even
  // if a viewer streams the file.
  for (const auto& node : meta.nodes) {
    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, node.node_id);
    line_ += ",\"name\":\"process_name\",\"args\":{\"name\":";
    report::append_json_string(
        &line_, "rank " + std::to_string(node.node_id) + " (" + node.hostname +
                    ")");
    line_ += "}}";
    put_event(line_);

    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, node.node_id);
    line_ += ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":";
    append_u64(&line_, node.node_id);
    line_ += "}}";
    put_event(line_);
  }
  for (const auto& thread : meta.threads) {
    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, thread.node_id);
    line_ += ",\"tid\":";
    append_u64(&line_, thread.thread_id);
    line_ += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    report::append_json_string(&line_,
                               "thread " + std::to_string(thread.thread_id) +
                                   " (core " + std::to_string(thread.core) +
                                   ")");
    line_ += "}}";
    put_event(line_);
  }
  return out_->good() ? Status::ok()
                      : Status::error("perfetto export: write failed");
}

Status PerfettoExporter::on_batch(const pipeline::TraceMeta& /*meta*/,
                                  const pipeline::EventBatch& batch) {
  std::vector<std::uint64_t> to_close;
  for (const auto& e : batch.fn_events) {
    note_base(e.tsc);
    const double ts = correlator_.to_us(e.tsc);
    const SpanScrubber::ThreadKey key{e.node_id, e.thread_id};
    if (e.kind == trace::FnEventKind::kEnter) {
      scrubber_.push(key, e.addr);
      line_.clear();
      line_ += "{\"ph\":\"B\",\"pid\":";
      append_u64(&line_, e.node_id);
      line_ += ",\"tid\":";
      append_u64(&line_, e.thread_id);
      line_ += ",\"ts\":";
      append_ts(&line_, ts);
      line_ += ",\"cat\":\"fn\",\"name\":";
      report::append_json_string(&line_, names_->name_of(e.addr));
      line_ += "}";
      put_event(line_);
      ++stats_.events_exported;
    } else {
      if (!scrubber_.close(key, e.addr, &to_close)) {
        ++stats_.spans_dropped;  // no open frame: dropping keeps nesting sane
        continue;
      }
      // All but the last close are frames whose exits went missing.
      stats_.spans_force_closed += to_close.size() - 1;
      for (const std::uint64_t addr : to_close) {
        line_.clear();
        line_ += "{\"ph\":\"E\",\"pid\":";
        append_u64(&line_, e.node_id);
        line_ += ",\"tid\":";
        append_u64(&line_, e.thread_id);
        line_ += ",\"ts\":";
        append_ts(&line_, ts);
        line_ += ",\"cat\":\"fn\",\"name\":";
        report::append_json_string(&line_, names_->name_of(addr));
        line_ += "}";
        put_event(line_);
        ++stats_.events_exported;
      }
    }
  }

  for (const auto& s : batch.temp_samples) {
    note_base(s.tsc);
    sample_period_.observe(s);
    const auto named = sensor_names_.find({s.node_id, s.sensor_id});
    const std::string& sensor =
        named != sensor_names_.end()
            ? named->second
            : "sensor " + std::to_string(s.sensor_id);
    line_.clear();
    line_ += "{\"ph\":\"C\",\"pid\":";
    append_u64(&line_, s.node_id);
    line_ += ",\"ts\":";
    append_ts(&line_, correlator_.to_us(s.tsc));
    line_ += ",\"name\":";
    report::append_json_string(&line_, "temp " + sensor + " (C)");
    line_ += ",\"args\":{\"celsius\":";
    append_double(&line_, s.temp_c);
    line_ += "}}";
    put_event(line_);
    ++stats_.events_exported;
  }
  return out_->good() ? Status::ok()
                      : Status::error("perfetto export: write failed");
}

Status PerfettoExporter::on_end(const pipeline::TraceMeta& meta) {
  const double end_ts = correlator_.to_us(max_tsc_);

  // Frames still open at end of trace close at the final timestamp —
  // the same force-close the profile builder applies, and what keeps
  // every emitted B matched by an E.
  for (const auto& [key, stack] : scrubber_.stacks()) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      line_.clear();
      line_ += "{\"ph\":\"E\",\"pid\":";
      append_u64(&line_, key.node_id);
      line_ += ",\"tid\":";
      append_u64(&line_, key.thread_id);
      line_ += ",\"ts\":";
      append_ts(&line_, end_ts);
      line_ += ",\"cat\":\"fn\",\"name\":";
      report::append_json_string(&line_, names_->name_of(*it));
      line_ += "}";
      put_event(line_);
      ++stats_.events_exported;
      ++stats_.spans_force_closed;
    }
  }

  // Recorder self-measurement as global instants: a dropped-events or
  // missed-ticks marker right on the timeline where a user would
  // otherwise trust a gap.
  if (meta.run_stats.present) {
    const auto instant = [&](const char* name, std::uint64_t count) {
      if (count == 0) return;
      line_.clear();
      line_ += "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":";
      append_ts(&line_, end_ts);
      line_ += ",\"s\":\"g\",\"name\":";
      report::append_json_string(&line_, name);
      line_ += ",\"args\":{\"count\":";
      append_u64(&line_, count);
      line_ += "}}";
      put_event(line_);
      ++stats_.events_exported;
    };
    instant("recorder: events dropped", meta.run_stats.events_dropped);
    instant("tempd: missed ticks", meta.run_stats.tempd_missed_ticks);
  }

  const double period_us =
      correlator_.ticks_to_us(sample_period_.period_ticks());
  warnings_ = correlation_warnings(correlator_, period_us);

  // The metadata section: clock correlation and export accounting.
  line_.clear();
  line_ += "\n],\n\"metadata\":{\"exporter\":\"tempest-export\","
           "\"trace_format_version\":";
  append_u64(&line_, trace::kTraceVersion);
  line_ += ",\"base_tsc\":";
  append_u64(&line_, correlator_.base());
  line_ += ",\"clock_correlation\":{\"ranks\":[";
  bool first = true;
  for (const RankClock& rank : correlator_.ranks()) {
    if (!first) line_ += ",";
    first = false;
    line_ += "{\"node_id\":";
    append_u64(&line_, rank.node_id);
    line_ += ",\"syncs\":";
    append_u64(&line_, rank.sync_count);
    line_ += ",\"skew_us\":";
    append_double(&line_, rank.skew_us);
    line_ += ",\"drift_ppm\":";
    append_double(&line_, rank.drift_ppm);
    line_ += ",\"residual_us\":";
    append_double(&line_, rank.residual_us);
    line_ += "}";
  }
  line_ += "],\"max_residual_us\":";
  append_double(&line_, correlator_.max_residual_us());
  line_ += ",\"sample_period_us\":";
  append_double(&line_, period_us);
  line_ += ",\"residual_exceeds_sample_period\":";
  line_ += warnings_.empty() ? "false" : "true";
  line_ += "},\"export_stats\":{\"events_exported\":";
  append_u64(&line_, stats_.events_exported);
  line_ += ",\"spans_dropped\":";
  append_u64(&line_, stats_.spans_dropped);
  line_ += ",\"spans_force_closed\":";
  append_u64(&line_, stats_.spans_force_closed);
  line_ += "}}}\n";
  write(line_);

  out_->flush();
  if (!out_->good()) return Status::error("perfetto export: write failed");
  publish_export_telemetry(stats_);
  return Status::ok();
}

}  // namespace tempest::exporter
