#include "export/perfetto.hpp"

#include <utility>

#include "report/json.hpp"
#include "trace/writer.hpp"

namespace tempest::exporter {

namespace {

/// %.3f keeps sub-microsecond detail (a 3 GHz tsc tick is ~0.3 ns;
/// viewers display at ns granularity anyway) while keeping the output
/// deterministic across platforms — to_chars with fixed precision is
/// exact for the magnitudes a trace produces and matches the snprintf
/// bytes this emitter historically wrote.
void append_ts(std::string* line, double us) {
  fastwrite::append_fixed(*line, us, 3);
}

void append_u64(std::string* line, std::uint64_t v) {
  fastwrite::append_u64(*line, v);
}

void append_double(std::string* line, double v) {
  fastwrite::append_fixed(*line, v, 3);
}

}  // namespace

PerfettoExporter::PerfettoExporter(std::ostream& out,
                                   ClockCorrelator correlator,
                                   const symtab::Resolver* resolver)
    : out_(&out),
      writer_(out),
      correlator_(std::move(correlator)),
      resolver_(resolver) {}

void PerfettoExporter::write(const std::string& s) {
  writer_.append(s);
  stats_.bytes_written += s.size();
}

const PerfettoExporter::TrackFragments& PerfettoExporter::track_fragments(
    std::uint16_t node_id, std::uint32_t thread_id) {
  constexpr std::uint32_t kDenseTids = 1u << 16;
  const bool dense = thread_id < kDenseTids;
  if (dense) {
    if (thread_id >= track_cache_.size()) track_cache_.resize(thread_id + 1);
    const auto& slot = track_cache_[thread_id];
    if (slot.second != nullptr && slot.first == std::uint32_t{node_id} + 1) {
      return *slot.second;
    }
  }
  const std::uint64_t key =
      (std::uint64_t{node_id} << 32) | std::uint64_t{thread_id};
  auto it = tracks_.find(key);
  if (it == tracks_.end()) {
    TrackFragments frags;
    std::string ids = "\",\"pid\":";
    fastwrite::append_u64(ids, node_id);
    ids += ",\"tid\":";
    fastwrite::append_u64(ids, thread_id);
    ids += ",\"ts\":";
    frags.begin_prefix = "{\"ph\":\"B" + ids;
    frags.end_prefix = "{\"ph\":\"E" + ids;
    it = tracks_.emplace(key, std::move(frags)).first;
  }
  if (dense) {
    track_cache_[thread_id] = {std::uint32_t{node_id} + 1, &it->second};
  }
  return it->second;
}

const std::string& PerfettoExporter::name_suffix(std::uint64_t addr) {
  auto it = name_suffixes_.find(addr);
  if (it == name_suffixes_.end()) {
    std::string suffix = ",\"cat\":\"fn\",\"name\":";
    report::append_json_string(&suffix, names_->name_of(addr));
    suffix += "}";
    it = name_suffixes_.emplace(addr, std::move(suffix)).first;
  }
  return it->second;
}

const PerfettoExporter::CounterFragments& PerfettoExporter::counter_fragments(
    std::uint16_t node_id, std::uint16_t sensor_id) {
  const std::uint32_t key =
      (std::uint32_t{node_id} << 16) | std::uint32_t{sensor_id};
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    CounterFragments frags;
    frags.prefix = "{\"ph\":\"C\",\"pid\":";
    fastwrite::append_u64(frags.prefix, node_id);
    frags.prefix += ",\"ts\":";
    const auto named = sensor_names_.find({node_id, sensor_id});
    const std::string& sensor =
        named != sensor_names_.end() ? named->second
                                     : "sensor " + std::to_string(sensor_id);
    frags.name_args = ",\"name\":";
    report::append_json_string(&frags.name_args, "temp " + sensor + " (C)");
    frags.name_args += ",\"args\":{\"celsius\":";
    it = counters_.emplace(key, std::move(frags)).first;
  }
  return it->second;
}

void PerfettoExporter::set_annotations(std::vector<DiffAnnotation> annotations) {
  for (DiffAnnotation& a : annotations) {
    annotations_by_name_.insert_or_assign(a.function, std::move(a));
  }
}

void PerfettoExporter::put_event(const std::string& json) {
  if (any_event_) {
    write(",\n");
  } else {
    any_event_ = true;
  }
  write(json);
}

void PerfettoExporter::note_base(std::uint64_t tsc) {
  if (!correlator_.has_base()) correlator_.set_base(tsc);
  if (tsc > max_tsc_) max_tsc_ = tsc;
}

Status PerfettoExporter::begin(const pipeline::TraceMeta& meta) {
  names_.emplace(meta, resolver_);
  for (const auto& s : meta.sensors) {
    sensor_names_[{s.node_id, s.sensor_id}] = s.name;
  }

  write("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n");

  // Rank/thread naming metadata first, so the tracks are labelled even
  // if a viewer streams the file.
  for (const auto& node : meta.nodes) {
    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, node.node_id);
    line_ += ",\"name\":\"process_name\",\"args\":{\"name\":";
    report::append_json_string(
        &line_, "rank " + std::to_string(node.node_id) + " (" + node.hostname +
                    ")");
    line_ += "}}";
    put_event(line_);

    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, node.node_id);
    line_ += ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":";
    append_u64(&line_, node.node_id);
    line_ += "}}";
    put_event(line_);
  }
  for (const auto& thread : meta.threads) {
    line_.clear();
    line_ += "{\"ph\":\"M\",\"pid\":";
    append_u64(&line_, thread.node_id);
    line_ += ",\"tid\":";
    append_u64(&line_, thread.thread_id);
    line_ += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    report::append_json_string(&line_,
                               "thread " + std::to_string(thread.thread_id) +
                                   " (core " + std::to_string(thread.core) +
                                   ")");
    line_ += "}}";
    put_event(line_);
  }
  return out_->good() ? Status::ok()
                      : Status::error("perfetto export: write failed");
}

Status PerfettoExporter::on_batch(const pipeline::TraceMeta& /*meta*/,
                                  const pipeline::EventBatch& batch) {
  std::vector<std::uint64_t> to_close;
  for (const auto& e : batch.fn_events) {
    note_base(e.tsc);
    const double ts = correlator_.to_us(e.tsc);
    const SpanScrubber::ThreadKey key{e.node_id, e.thread_id};
    const TrackFragments& track = track_fragments(e.node_id, e.thread_id);
    if (e.kind == trace::FnEventKind::kEnter) {
      scrubber_.push(key, e.addr);
      if (!annotations_by_name_.empty()) {
        // Lazy name match: an annotation binds to an address the first
        // time that address enters, then fires one instant on that
        // first span.
        auto [slot, inserted] = annotation_by_addr_.try_emplace(e.addr, nullptr);
        if (inserted) {
          const auto found = annotations_by_name_.find(names_->name_of(e.addr));
          if (found != annotations_by_name_.end()) slot->second = &found->second;
        }
        if (slot->second != nullptr) {
          const DiffAnnotation* a = slot->second;
          slot->second = nullptr;  // one marker per function
          annotations_marked_.push_back(a);
          line_.clear();
          line_ += "{\"ph\":\"i\",\"pid\":";
          append_u64(&line_, e.node_id);
          line_ += ",\"tid\":";
          append_u64(&line_, e.thread_id);
          line_ += ",\"ts\":";
          append_ts(&line_, ts);
          line_ += ",\"s\":\"t\",\"name\":";
          report::append_json_string(
              &line_, std::string(a->regression ? "tempest-diff regression: "
                                                : "tempest-diff improvement: ") +
                          a->function);
          line_ += ",\"args\":{\"delta_time_s\":";
          append_double(&line_, a->delta_time_s);
          line_ += ",\"confidence\":";
          append_double(&line_, a->confidence);
          line_ += "}}";
          put_event(line_);
          ++stats_.events_exported;
        }
      }
      line_.clear();
      line_ += track.begin_prefix;
      append_ts(&line_, ts);
      line_ += name_suffix(e.addr);
      put_event(line_);
      ++stats_.events_exported;
    } else {
      if (!scrubber_.close(key, e.addr, &to_close)) {
        ++stats_.spans_dropped;  // no open frame: dropping keeps nesting sane
        continue;
      }
      // All but the last close are frames whose exits went missing.
      stats_.spans_force_closed += to_close.size() - 1;
      for (const std::uint64_t addr : to_close) {
        line_.clear();
        line_ += track.end_prefix;
        append_ts(&line_, ts);
        line_ += name_suffix(addr);
        put_event(line_);
        ++stats_.events_exported;
      }
    }
  }

  for (const auto& s : batch.temp_samples) {
    note_base(s.tsc);
    sample_period_.observe(s);
    const CounterFragments& counter =
        counter_fragments(s.node_id, s.sensor_id);
    line_.clear();
    line_ += counter.prefix;
    append_ts(&line_, correlator_.to_us(s.tsc));
    line_ += counter.name_args;
    append_double(&line_, s.temp_c);
    line_ += "}}";
    put_event(line_);
    ++stats_.events_exported;
  }
  return out_->good() ? Status::ok()
                      : Status::error("perfetto export: write failed");
}

Status PerfettoExporter::on_end(const pipeline::TraceMeta& meta) {
  const double end_ts = correlator_.to_us(max_tsc_);

  // Frames still open at end of trace close at the final timestamp —
  // the same force-close the profile builder applies, and what keeps
  // every emitted B matched by an E.
  for (const auto& [key, stack] : scrubber_.stacks()) {
    const TrackFragments& track =
        track_fragments(key.node_id, key.thread_id);
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      line_.clear();
      line_ += track.end_prefix;
      append_ts(&line_, end_ts);
      line_ += name_suffix(*it);
      put_event(line_);
      ++stats_.events_exported;
      ++stats_.spans_force_closed;
    }
  }

  // Recorder self-measurement as global instants: a dropped-events or
  // missed-ticks marker right on the timeline where a user would
  // otherwise trust a gap.
  if (meta.run_stats.present) {
    const auto instant = [&](const char* name, std::uint64_t count) {
      if (count == 0) return;
      line_.clear();
      line_ += "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":";
      append_ts(&line_, end_ts);
      line_ += ",\"s\":\"g\",\"name\":";
      report::append_json_string(&line_, name);
      line_ += ",\"args\":{\"count\":";
      append_u64(&line_, count);
      line_ += "}}";
      put_event(line_);
      ++stats_.events_exported;
    };
    instant("recorder: events dropped", meta.run_stats.events_dropped);
    instant("tempd: missed ticks", meta.run_stats.tempd_missed_ticks);
  }

  const double period_us =
      correlator_.ticks_to_us(sample_period_.period_ticks());
  warnings_ = correlation_warnings(correlator_, period_us);

  // The metadata section: clock correlation and export accounting.
  line_.clear();
  line_ += "\n],\n\"metadata\":{\"exporter\":\"tempest-export\","
           "\"trace_format_version\":";
  append_u64(&line_, trace::kTraceVersion);
  line_ += ",\"base_tsc\":";
  append_u64(&line_, correlator_.base());
  line_ += ",\"clock_correlation\":{\"ranks\":[";
  bool first = true;
  for (const RankClock& rank : correlator_.ranks()) {
    if (!first) line_ += ",";
    first = false;
    line_ += "{\"node_id\":";
    append_u64(&line_, rank.node_id);
    line_ += ",\"syncs\":";
    append_u64(&line_, rank.sync_count);
    line_ += ",\"skew_us\":";
    append_double(&line_, rank.skew_us);
    line_ += ",\"drift_ppm\":";
    append_double(&line_, rank.drift_ppm);
    line_ += ",\"residual_us\":";
    append_double(&line_, rank.residual_us);
    line_ += "}";
  }
  line_ += "],\"max_residual_us\":";
  append_double(&line_, correlator_.max_residual_us());
  line_ += ",\"sample_period_us\":";
  append_double(&line_, period_us);
  line_ += ",\"residual_exceeds_sample_period\":";
  line_ += warnings_.empty() ? "false" : "true";
  line_ += "},\"export_stats\":{\"events_exported\":";
  append_u64(&line_, stats_.events_exported);
  line_ += ",\"spans_dropped\":";
  append_u64(&line_, stats_.spans_dropped);
  line_ += ",\"spans_force_closed\":";
  append_u64(&line_, stats_.spans_force_closed);
  line_ += "}";
  if (!annotations_by_name_.empty()) {
    // Echo the diff findings so a viewer (or check script) can read the
    // marks without scanning the event stream; `marked` lists the ones
    // that bound to a span, in first-seen order.
    line_ += ",\"tempest_diff\":{\"annotations\":";
    append_u64(&line_, annotations_by_name_.size());
    line_ += ",\"marked\":[";
    for (std::size_t i = 0; i < annotations_marked_.size(); ++i) {
      const DiffAnnotation* a = annotations_marked_[i];
      if (i > 0) line_ += ",";
      line_ += "{\"function\":";
      report::append_json_string(&line_, a->function);
      line_ += ",\"delta_time_s\":";
      append_double(&line_, a->delta_time_s);
      line_ += ",\"confidence\":";
      append_double(&line_, a->confidence);
      line_ += ",\"regression\":";
      line_ += a->regression ? "true" : "false";
      line_ += "}";
    }
    line_ += "]}";
  }
  line_ += "}}\n";
  write(line_);

  writer_.flush();
  out_->flush();
  if (!out_->good()) return Status::error("perfetto export: write failed");
  publish_export_telemetry(stats_);
  return Status::ok();
}

}  // namespace tempest::exporter
