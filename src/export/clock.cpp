#include "export/clock.hpp"

#include <map>

namespace tempest::exporter {

ClockCorrelator::ClockCorrelator(double tsc_ticks_per_second,
                                 const std::vector<trace::ClockSync>& syncs) {
  // A zero/negative rate only appears in hand-built or corrupt traces;
  // fall back to "one tick is one microsecond" so timestamps stay
  // finite instead of dividing by zero.
  ticks_per_us_ =
      tsc_ticks_per_second > 0.0 ? tsc_ticks_per_second / 1e6 : 1.0;
  if (syncs.empty()) return;

  const auto fits = trace::fit_clocks(syncs);
  const auto residuals = trace::fit_residuals(fits, syncs);
  std::map<std::uint16_t, std::size_t> counts;
  for (const auto& s : syncs) ++counts[s.node_id];

  ranks_.reserve(fits.size());
  for (const auto& [node_id, fit] : fits) {
    RankClock rank;
    rank.node_id = node_id;
    rank.sync_count = counts[node_id];
    rank.skew_us =
        (fit.b - static_cast<double>(fit.ref)) / ticks_per_us_;
    rank.drift_ppm = (fit.a - 1.0) * 1e6;
    const auto r = residuals.find(node_id);
    rank.residual_us =
        r == residuals.end() ? 0.0 : r->second / ticks_per_us_;
    if (rank.residual_us > max_residual_us_) {
      max_residual_us_ = rank.residual_us;
    }
    ranks_.push_back(rank);
  }
}

}  // namespace tempest::exporter
