#include "export/speedscope.hpp"

#include <cstdio>
#include <utility>

#include "report/json.hpp"
#include "trace/writer.hpp"

namespace tempest::exporter {

namespace {

void append_u64(std::string* line, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  *line += buf;
}

void append_double(std::string* line, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *line += buf;
}

}  // namespace

SpeedscopeExporter::SpeedscopeExporter(std::ostream& out,
                                       ClockCorrelator correlator,
                                       std::string spool_prefix,
                                       const symtab::Resolver* resolver)
    : out_(&out),
      correlator_(std::move(correlator)),
      spool_prefix_(std::move(spool_prefix)),
      resolver_(resolver) {}

SpeedscopeExporter::~SpeedscopeExporter() { remove_spools(); }

void SpeedscopeExporter::remove_spools() {
  for (auto& [key, spool] : spools_) {
    if (spool.file.is_open()) spool.file.close();
    if (!spool.path.empty()) std::remove(spool.path.c_str());
  }
}

void SpeedscopeExporter::write(const std::string& s) {
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  stats_.bytes_written += s.size();
}

SpeedscopeExporter::ThreadSpool& SpeedscopeExporter::spool_for(
    const SpanScrubber::ThreadKey& key) {
  const auto it = spools_.find(key);
  if (it != spools_.end()) return it->second;

  ThreadSpool& spool = spools_[key];
  spool.path = spool_prefix_ + ".t" + std::to_string(key.node_id) + "_" +
               std::to_string(key.thread_id) + ".spool";
  spool.file.open(spool.path, std::ios::binary | std::ios::trunc);
  return spool;
}

void SpeedscopeExporter::spool_event(ThreadSpool& spool, char type,
                                     std::size_t frame, double at) {
  line_.clear();
  if (spool.any_event) {
    line_ += ",\n";
  } else {
    spool.first_at = at;
    spool.any_event = true;
  }
  line_ += "{\"type\":\"";
  line_ += type;
  line_ += "\",\"frame\":";
  append_u64(&line_, frame);
  line_ += ",\"at\":";
  append_double(&line_, at);
  line_ += "}";
  spool.file.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  spool.last_at = at;
  ++spool.event_count;
  ++stats_.events_exported;
}

Status SpeedscopeExporter::begin(const pipeline::TraceMeta& meta) {
  names_.emplace(meta, resolver_);
  for (const auto& thread : meta.threads) {
    thread_names_[{thread.node_id, thread.thread_id}] =
        "rank " + std::to_string(thread.node_id) + " thread " +
        std::to_string(thread.thread_id) + " (core " +
        std::to_string(thread.core) + ")";
  }
  return Status::ok();
}

Status SpeedscopeExporter::on_batch(const pipeline::TraceMeta& /*meta*/,
                                    const pipeline::EventBatch& batch) {
  std::vector<std::uint64_t> to_close;
  for (const auto& e : batch.fn_events) {
    if (!correlator_.has_base()) correlator_.set_base(e.tsc);
    if (e.tsc > max_tsc_) max_tsc_ = e.tsc;
    const double at = correlator_.to_us(e.tsc);
    const SpanScrubber::ThreadKey key{e.node_id, e.thread_id};
    ThreadSpool& spool = spool_for(key);
    if (e.kind == trace::FnEventKind::kEnter) {
      scrubber_.push(key, e.addr);
      spool_event(spool, 'O', names_->index_of(e.addr), at);
    } else {
      if (!scrubber_.close(key, e.addr, &to_close)) {
        ++stats_.spans_dropped;
        continue;
      }
      stats_.spans_force_closed += to_close.size() - 1;
      for (const std::uint64_t addr : to_close) {
        spool_event(spool, 'C', names_->index_of(addr), at);
      }
    }
    if (!spool.file.good()) {
      return Status::error("speedscope export: spool write failed: " +
                           spool.path);
    }
  }
  // Samples don't appear in speedscope output, but they define the
  // cadence the residual-skew warning compares against, and the final
  // timestamp force-closes anchor to.
  for (const auto& s : batch.temp_samples) {
    if (!correlator_.has_base()) correlator_.set_base(s.tsc);
    if (s.tsc > max_tsc_) max_tsc_ = s.tsc;
    sample_period_.observe(s);
  }
  return Status::ok();
}

Status SpeedscopeExporter::on_end(const pipeline::TraceMeta& /*meta*/) {
  const double end_at = correlator_.to_us(max_tsc_);

  // Frames still open close at the final timestamp, innermost first —
  // speedscope rejects profiles whose O events are never closed.
  for (const auto& [key, stack] : scrubber_.stacks()) {
    if (stack.empty()) continue;
    ThreadSpool& spool = spool_for(key);
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      spool_event(spool, 'C', names_->index_of(*it), end_at);
      ++stats_.spans_force_closed;
    }
    if (!spool.file.good()) {
      return Status::error("speedscope export: spool write failed: " +
                           spool.path);
    }
  }

  const double period_us =
      correlator_.ticks_to_us(sample_period_.period_ticks());
  warnings_ = correlation_warnings(correlator_, period_us);

  // Document head: schema, shared frame table.
  line_.clear();
  line_ +=
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\n"
      "\"name\":\"tempest export\",\n\"exporter\":\"tempest-export\",\n"
      "\"shared\":{\"frames\":[";
  bool first = true;
  for (const std::string& name : names_->names()) {
    if (!first) line_ += ",\n";
    first = false;
    line_ += "{\"name\":";
    report::append_json_string(&line_, name);
    line_ += "}";
  }
  line_ += "]},\n\"profiles\":[";
  write(line_);

  // Stitch each thread's spool into its evented profile.
  bool first_profile = true;
  for (auto& [key, spool] : spools_) {
    spool.file.close();
    line_.clear();
    if (!first_profile) line_ += ",";
    first_profile = false;
    line_ += "\n{\"type\":\"evented\",\"name\":";
    const auto named = thread_names_.find(key);
    report::append_json_string(
        &line_, named != thread_names_.end()
                    ? named->second
                    : "rank " + std::to_string(key.node_id) + " thread " +
                          std::to_string(key.thread_id));
    line_ += ",\"unit\":\"microseconds\",\"startValue\":";
    append_double(&line_, spool.first_at);
    line_ += ",\"endValue\":";
    append_double(&line_, spool.last_at);
    line_ += ",\"events\":[\n";
    write(line_);

    std::ifstream in(spool.path, std::ios::binary);
    if (!in.is_open()) {
      return Status::error("speedscope export: cannot reopen spool: " +
                           spool.path);
    }
    char buf[1 << 16];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      out_->write(buf, in.gcount());
      stats_.bytes_written += static_cast<std::uint64_t>(in.gcount());
    }
    write("\n]}");
  }

  // Trailer: the same correlation + accounting block Perfetto carries
  // (speedscope ignores keys it doesn't know).
  line_.clear();
  line_ += "],\n\"metadata\":{\"exporter\":\"tempest-export\","
           "\"trace_format_version\":";
  append_u64(&line_, trace::kTraceVersion);
  line_ += ",\"base_tsc\":";
  append_u64(&line_, correlator_.base());
  line_ += ",\"clock_correlation\":{\"ranks\":[";
  first = true;
  for (const RankClock& rank : correlator_.ranks()) {
    if (!first) line_ += ",";
    first = false;
    line_ += "{\"node_id\":";
    append_u64(&line_, rank.node_id);
    line_ += ",\"syncs\":";
    append_u64(&line_, rank.sync_count);
    line_ += ",\"skew_us\":";
    append_double(&line_, rank.skew_us);
    line_ += ",\"drift_ppm\":";
    append_double(&line_, rank.drift_ppm);
    line_ += ",\"residual_us\":";
    append_double(&line_, rank.residual_us);
    line_ += "}";
  }
  line_ += "],\"max_residual_us\":";
  append_double(&line_, correlator_.max_residual_us());
  line_ += ",\"sample_period_us\":";
  append_double(&line_, period_us);
  line_ += ",\"residual_exceeds_sample_period\":";
  line_ += warnings_.empty() ? "false" : "true";
  line_ += "},\"export_stats\":{\"events_exported\":";
  append_u64(&line_, stats_.events_exported);
  line_ += ",\"spans_dropped\":";
  append_u64(&line_, stats_.spans_dropped);
  line_ += ",\"spans_force_closed\":";
  append_u64(&line_, stats_.spans_force_closed);
  line_ += "}}}\n";
  write(line_);

  out_->flush();
  if (!out_->good()) return Status::error("speedscope export: write failed");
  remove_spools();
  publish_export_telemetry(stats_);
  return Status::ok();
}

}  // namespace tempest::exporter
