#include "export/speedscope.hpp"

#include <cstdio>
#include <utility>

#include "report/json.hpp"
#include "trace/writer.hpp"

namespace tempest::exporter {

namespace {

/// Spool write-behind threshold; spools are per-thread so this stays
/// modest.
constexpr std::size_t kSpoolBufBytes = std::size_t{64} << 10;

void append_u64(std::string* line, std::uint64_t v) {
  fastwrite::append_u64(*line, v);
}

void append_double(std::string* line, double v) {
  fastwrite::append_fixed(*line, v, 3);
}

}  // namespace

SpeedscopeExporter::SpeedscopeExporter(std::ostream& out,
                                       ClockCorrelator correlator,
                                       std::string spool_prefix,
                                       const symtab::Resolver* resolver)
    : out_(&out),
      writer_(out),
      correlator_(std::move(correlator)),
      spool_prefix_(std::move(spool_prefix)),
      resolver_(resolver) {}

SpeedscopeExporter::~SpeedscopeExporter() { remove_spools(); }

void SpeedscopeExporter::remove_spools() {
  for (auto& [key, spool] : spools_) {
    if (spool.file.is_open()) spool.file.close();
    if (!spool.path.empty()) std::remove(spool.path.c_str());
  }
}

void SpeedscopeExporter::write(const std::string& s) {
  writer_.append(s);
  stats_.bytes_written += s.size();
}

void SpeedscopeExporter::flush_spool(ThreadSpool& spool) {
  if (spool.buf.empty()) return;
  spool.file.write(spool.buf.data(),
                   static_cast<std::streamsize>(spool.buf.size()));
  spool.buf.clear();
}

const std::string& SpeedscopeExporter::frame_prefix(char type,
                                                    std::size_t frame) {
  std::vector<std::string>& cache =
      type == 'O' ? open_prefixes_ : close_prefixes_;
  if (frame >= cache.size()) cache.resize(frame + 1);
  std::string& prefix = cache[frame];
  if (prefix.empty()) {
    prefix = "{\"type\":\"";
    prefix += type;
    prefix += "\",\"frame\":";
    fastwrite::append_u64(prefix, frame);
    prefix += ",\"at\":";
  }
  return prefix;
}

SpeedscopeExporter::ThreadSpool& SpeedscopeExporter::spool_for(
    const SpanScrubber::ThreadKey& key) {
  constexpr std::uint32_t kDenseTids = 1u << 16;
  const bool dense = key.thread_id < kDenseTids;
  if (dense) {
    if (key.thread_id >= spool_cache_.size()) {
      spool_cache_.resize(key.thread_id + 1);
    }
    const auto& slot = spool_cache_[key.thread_id];
    if (slot.second != nullptr &&
        slot.first == std::uint32_t{key.node_id} + 1) {
      return *slot.second;
    }
  }
  const auto it = spools_.find(key);
  if (it != spools_.end()) {
    if (dense) {
      spool_cache_[key.thread_id] = {std::uint32_t{key.node_id} + 1,
                                     &it->second};
    }
    return it->second;
  }

  ThreadSpool& spool = spools_[key];
  spool.path = spool_prefix_ + ".t" + std::to_string(key.node_id) + "_" +
               std::to_string(key.thread_id) + ".spool";
  spool.file.open(spool.path, std::ios::binary | std::ios::trunc);
  if (dense) {
    spool_cache_[key.thread_id] = {std::uint32_t{key.node_id} + 1, &spool};
  }
  return spool;
}

void SpeedscopeExporter::spool_event(ThreadSpool& spool, char type,
                                     std::size_t frame, double at) {
  if (spool.any_event) {
    spool.buf += ",\n";
  } else {
    spool.first_at = at;
    spool.any_event = true;
  }
  spool.buf += frame_prefix(type, frame);
  append_double(&spool.buf, at);
  spool.buf += "}";
  if (spool.buf.size() >= kSpoolBufBytes) flush_spool(spool);
  spool.last_at = at;
  ++spool.event_count;
  ++stats_.events_exported;
}

Status SpeedscopeExporter::begin(const pipeline::TraceMeta& meta) {
  names_.emplace(meta, resolver_);
  for (const auto& thread : meta.threads) {
    thread_names_[{thread.node_id, thread.thread_id}] =
        "rank " + std::to_string(thread.node_id) + " thread " +
        std::to_string(thread.thread_id) + " (core " +
        std::to_string(thread.core) + ")";
  }
  return Status::ok();
}

Status SpeedscopeExporter::on_batch(const pipeline::TraceMeta& /*meta*/,
                                    const pipeline::EventBatch& batch) {
  std::vector<std::uint64_t> to_close;
  for (const auto& e : batch.fn_events) {
    if (!correlator_.has_base()) correlator_.set_base(e.tsc);
    if (e.tsc > max_tsc_) max_tsc_ = e.tsc;
    const double at = correlator_.to_us(e.tsc);
    const SpanScrubber::ThreadKey key{e.node_id, e.thread_id};
    ThreadSpool& spool = spool_for(key);
    if (e.kind == trace::FnEventKind::kEnter) {
      scrubber_.push(key, e.addr);
      spool_event(spool, 'O', names_->index_of(e.addr), at);
    } else {
      if (!scrubber_.close(key, e.addr, &to_close)) {
        ++stats_.spans_dropped;
        continue;
      }
      stats_.spans_force_closed += to_close.size() - 1;
      for (const std::uint64_t addr : to_close) {
        spool_event(spool, 'C', names_->index_of(addr), at);
      }
    }
    if (!spool.file.good()) {
      return Status::error("speedscope export: spool write failed: " +
                           spool.path);
    }
  }
  // Samples don't appear in speedscope output, but they define the
  // cadence the residual-skew warning compares against, and the final
  // timestamp force-closes anchor to.
  for (const auto& s : batch.temp_samples) {
    if (!correlator_.has_base()) correlator_.set_base(s.tsc);
    if (s.tsc > max_tsc_) max_tsc_ = s.tsc;
    sample_period_.observe(s);
  }
  return Status::ok();
}

Status SpeedscopeExporter::on_end(const pipeline::TraceMeta& /*meta*/) {
  const double end_at = correlator_.to_us(max_tsc_);

  // Frames still open close at the final timestamp, innermost first —
  // speedscope rejects profiles whose O events are never closed.
  for (const auto& [key, stack] : scrubber_.stacks()) {
    if (stack.empty()) continue;
    ThreadSpool& spool = spool_for(key);
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      spool_event(spool, 'C', names_->index_of(*it), end_at);
      ++stats_.spans_force_closed;
    }
    if (!spool.file.good()) {
      return Status::error("speedscope export: spool write failed: " +
                           spool.path);
    }
  }

  const double period_us =
      correlator_.ticks_to_us(sample_period_.period_ticks());
  warnings_ = correlation_warnings(correlator_, period_us);

  // Document head: schema, shared frame table.
  line_.clear();
  line_ +=
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\n"
      "\"name\":\"tempest export\",\n\"exporter\":\"tempest-export\",\n"
      "\"shared\":{\"frames\":[";
  bool first = true;
  for (const std::string& name : names_->names()) {
    if (!first) line_ += ",\n";
    first = false;
    line_ += "{\"name\":";
    report::append_json_string(&line_, name);
    line_ += "}";
  }
  line_ += "]},\n\"profiles\":[";
  write(line_);

  // Stitch each thread's spool into its evented profile.
  bool first_profile = true;
  for (auto& [key, spool] : spools_) {
    flush_spool(spool);
    if (!spool.file.good()) {
      return Status::error("speedscope export: spool write failed: " +
                           spool.path);
    }
    spool.file.close();
    line_.clear();
    if (!first_profile) line_ += ",";
    first_profile = false;
    line_ += "\n{\"type\":\"evented\",\"name\":";
    const auto named = thread_names_.find(key);
    report::append_json_string(
        &line_, named != thread_names_.end()
                    ? named->second
                    : "rank " + std::to_string(key.node_id) + " thread " +
                          std::to_string(key.thread_id));
    line_ += ",\"unit\":\"microseconds\",\"startValue\":";
    append_double(&line_, spool.first_at);
    line_ += ",\"endValue\":";
    append_double(&line_, spool.last_at);
    line_ += ",\"events\":[\n";
    write(line_);

    std::ifstream in(spool.path, std::ios::binary);
    if (!in.is_open()) {
      return Status::error("speedscope export: cannot reopen spool: " +
                           spool.path);
    }
    char buf[1 << 16];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
      writer_.append(
          std::string_view(buf, static_cast<std::size_t>(in.gcount())));
      stats_.bytes_written += static_cast<std::uint64_t>(in.gcount());
    }
    write("\n]}");
  }

  // Trailer: the same correlation + accounting block Perfetto carries
  // (speedscope ignores keys it doesn't know).
  line_.clear();
  line_ += "],\n\"metadata\":{\"exporter\":\"tempest-export\","
           "\"trace_format_version\":";
  append_u64(&line_, trace::kTraceVersion);
  line_ += ",\"base_tsc\":";
  append_u64(&line_, correlator_.base());
  line_ += ",\"clock_correlation\":{\"ranks\":[";
  first = true;
  for (const RankClock& rank : correlator_.ranks()) {
    if (!first) line_ += ",";
    first = false;
    line_ += "{\"node_id\":";
    append_u64(&line_, rank.node_id);
    line_ += ",\"syncs\":";
    append_u64(&line_, rank.sync_count);
    line_ += ",\"skew_us\":";
    append_double(&line_, rank.skew_us);
    line_ += ",\"drift_ppm\":";
    append_double(&line_, rank.drift_ppm);
    line_ += ",\"residual_us\":";
    append_double(&line_, rank.residual_us);
    line_ += "}";
  }
  line_ += "],\"max_residual_us\":";
  append_double(&line_, correlator_.max_residual_us());
  line_ += ",\"sample_period_us\":";
  append_double(&line_, period_us);
  line_ += ",\"residual_exceeds_sample_period\":";
  line_ += warnings_.empty() ? "false" : "true";
  line_ += "},\"export_stats\":{\"events_exported\":";
  append_u64(&line_, stats_.events_exported);
  line_ += ",\"spans_dropped\":";
  append_u64(&line_, stats_.spans_dropped);
  line_ += ",\"spans_force_closed\":";
  append_u64(&line_, stats_.spans_force_closed);
  line_ += "}}}\n";
  write(line_);

  writer_.flush();
  out_->flush();
  if (!out_->good()) return Status::error("speedscope export: write failed");
  remove_spools();
  publish_export_telemetry(stats_);
  return Status::ok();
}

}  // namespace tempest::exporter
