#include "export/run.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "common/worker_pool.hpp"
#include "export/perfetto.hpp"
#include "export/speedscope.hpp"
#include "pipeline/prefetch.hpp"
#include "pipeline/rank_fanin.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"

namespace tempest::exporter {

bool parse_format(const std::string& name, Format* format) {
  if (name == "perfetto" || name == "chrome") {
    *format = Format::kPerfetto;
    return true;
  }
  if (name == "speedscope") {
    *format = Format::kSpeedscope;
    return true;
  }
  return false;
}

Result<ExportRunResult> run_export(const std::vector<std::string>& paths,
                                   std::ostream& out,
                                   const ExportRunOptions& options) {
  namespace pipeline = tempest::pipeline;
  using Out = Result<ExportRunResult>;

  if (paths.empty()) return Out::error("no trace file given");
  if (paths.size() > 1 && !options.align) {
    return Out::error(
        "--no-align is incompatible with multi-file fan-in "
        "(the merge orders ranks by aligned global time)");
  }
  if (options.format == Format::kSpeedscope && options.spool_prefix.empty()) {
    return Out::error("speedscope export needs a spool prefix");
  }

  // Open the input as a pipeline source, collecting the sync records
  // the correlator reports on. Every path delivers the same aligned,
  // time-ordered stream, so the emitted bytes do not depend on which
  // source ran.
  std::optional<WorkerPool> pool;
  std::optional<pipeline::RankFanIn> fan;
  std::optional<pipeline::ChunkedTraceSource> chunked;
  std::optional<trace::Trace> loaded;
  std::optional<pipeline::MemoryTraceSource> memory;
  std::optional<pipeline::ClockAlignStage> align_stage;
  pipeline::OrderCheckStage order;
  std::vector<pipeline::Stage*> stages;
  pipeline::Source* source = nullptr;
  std::vector<trace::ClockSync> syncs;

  if (paths.size() > 1) {
    auto opened = pipeline::RankFanIn::open(paths);
    if (!opened.is_ok()) return Out::error(opened.message());
    fan.emplace(std::move(opened).value());
    syncs = fan->sync_records();
    source = &*fan;
  } else if (options.stream) {
    auto opened = pipeline::ChunkedTraceSource::open(paths[0]);
    if (!opened.is_ok()) return Out::error(opened.message());
    chunked.emplace(std::move(opened).value());
    if (options.align) {
      auto ahead = chunked->clock_syncs_ahead();
      if (!ahead.is_ok()) return Out::error(ahead.message());
      syncs = std::move(ahead).value();
      align_stage.emplace(trace::fit_clocks(syncs));
      stages.push_back(&*align_stage);
    }
    if (options.threads > 1) {
      pool.emplace(options.threads);
      chunked->set_decode_pool(&*pool);
    }
    source = &*chunked;
  } else {
    auto read = trace::read_trace_file(paths[0]);
    if (!read.is_ok()) {
      return Out::error("cannot read trace: " + read.message());
    }
    loaded.emplace(std::move(read).value());
    if (options.align) {
      syncs = loaded->clock_syncs;  // align_clocks consumes them
      const Status aligned = trace::align_clocks(&*loaded);
      if (!aligned) return Out::error(aligned.message());
    } else {
      loaded->sort_by_time();
    }
    memory.emplace(*loaded);
    source = &*memory;
  }
  stages.push_back(&order);

  // With workers requested, overlap disk I/O + decode with emission;
  // read-ahead only pays when the source streams from disk (the
  // in-memory adapter's next() is a pointer bump). Declared after the
  // sources so its producer thread joins before they tear down.
  std::optional<pipeline::PrefetchSource> prefetch;
  if (options.threads > 1 && !memory) {
    prefetch.emplace(source);
    source = &*prefetch;
  }

  const pipeline::TraceMeta& meta = source->meta();
  ExportRunResult result;

  std::optional<symtab::Resolver> resolver;
  const symtab::Resolver* resolver_ptr = nullptr;
  if (options.symbolize) {
    const std::string& exe =
        options.exe_override.empty() ? meta.executable : options.exe_override;
    if (!exe.empty()) {
      auto built = symtab::Resolver::for_executable(exe, meta.load_bias);
      if (built.is_ok()) {
        resolver.emplace(std::move(built).value());
        resolver_ptr = &*resolver;
      } else {
        result.warnings.push_back("symbolization unavailable (" +
                                  built.message() +
                                  "); addresses render as hex");
      }
    }
  }

  ClockCorrelator correlator(meta.tsc_ticks_per_second, syncs);

  std::optional<PerfettoExporter> perfetto;
  std::optional<SpeedscopeExporter> speedscope;
  pipeline::BatchSink* sink = nullptr;
  if (options.format == Format::kPerfetto) {
    perfetto.emplace(out, std::move(correlator), resolver_ptr);
    if (!options.annotations.empty()) {
      perfetto->set_annotations(options.annotations);
    }
    sink = &*perfetto;
  } else {
    speedscope.emplace(out, std::move(correlator), options.spool_prefix,
                       resolver_ptr);
    if (!options.annotations.empty()) {
      result.warnings.push_back(
          "diff annotations are perfetto-only; speedscope output unmarked");
    }
    sink = &*speedscope;
  }

  const Status ran = pipeline::run_pipeline(source, stages, {sink});
  if (!ran) return Out::error(ran.message());

  const ExportStats& stats =
      perfetto ? perfetto->stats() : speedscope->stats();
  const std::vector<std::string>& warnings =
      perfetto ? perfetto->warnings() : speedscope->warnings();
  result.stats = stats;
  result.warnings.insert(result.warnings.end(), warnings.begin(),
                         warnings.end());
  return Out(std::move(result));
}

}  // namespace tempest::exporter
