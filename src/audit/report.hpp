// Audit report emission: one JSON object (stable field names, gated by
// scripts/check_audit.py in CI) and a human-readable summary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "audit/audit.hpp"

namespace tempest::audit {

struct ReportOptions {
  /// Cap on listed functions per category (counts stay exact).
  std::size_t max_list = 20;
};

/// Machine-readable report. `overhead` may be null (no trace given and
/// static prediction suppressed) — the "overhead" key is then absent.
std::string to_json(const Inventory& inventory, const CoverageReport& coverage,
                    const OverheadReport* overhead,
                    const ReportOptions& options = {});

/// Human-readable report: coverage summary, capped gap lists, and the
/// overhead ranking (names demangled for display).
void write_human(std::ostream& out, const Inventory& inventory,
                 const CoverageReport& coverage, const OverheadReport* overhead,
                 const ReportOptions& options = {});

}  // namespace tempest::audit
