// Static instrumentation audit: what will this binary's profile miss?
//
// Tempest's completeness story rests on -finstrument-functions hooking
// every function, but nothing at runtime can verify that: an inlined,
// selectively-compiled, or hook-stripped function simply never emits
// events, and tempest-lint can only check what made it into the trace.
// This library closes that blind spot by analysing the instrumented ELF
// *without running it*:
//
//   * classify every .text function as instrumented or not by whether
//     its body references __cyg_profile_func_enter/_exit — via
//     PC32/PLT32 relocations in relocatable objects, via a direct
//     call/jmp-opcode scan in linked binaries (where the linker already
//     resolved the relocations away);
//   * build an approximate static call graph from the same two sources
//     (edges are kept only when the target is exactly a known function
//     entry, which filters nearly all false decodes — see DESIGN.md §11
//     for the residual approximation limits);
//   * derive a coverage report (uninstrumented functions, hookless
//     functions reachable from instrumented code — the "silent
//     subtrees" that execute inside profiled regions without a trace —
//     and hook call sites whose containing symbol was stripped);
//   * join the static inventory with a recorded trace's observed
//     per-function call counts to rank the call sites that dominate
//     probe overhead, feeding the TEMPEST_FILTER suppression file that
//     future adaptive instrumentation consumes (src/audit/filter.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "symtab/elf.hpp"

namespace tempest::audit {

/// One .text function in the audited binary. Addresses are link-time:
/// virtual addresses in linked binaries, file-offset-normalised section
/// offsets in relocatable objects (unique either way).
struct FunctionRecord {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;        ///< st_size; patched to the next symbol when 0
  std::string name;              ///< raw (possibly mangled)
  bool instrumented = false;     ///< body references the cyg hooks
  std::uint32_t static_callers = 0;  ///< call-graph in-degree
  std::uint32_t static_callees = 0;  ///< call-graph out-degree
  std::uint64_t trace_calls = 0;     ///< joined enter events (predict_overhead)
};

/// How a call edge was recovered.
enum class EdgeSource : std::uint8_t {
  kReloc,  ///< PC32/PLT32 relocation against a function symbol
  kScan,   ///< direct E8 call / E9 tail-jmp whose target is a function entry
};

struct CallEdge {
  std::uint32_t caller = 0;  ///< index into Inventory::functions
  std::uint32_t callee = 0;
  EdgeSource source = EdgeSource::kScan;
};

/// The static inventory of one binary: every function, its
/// instrumentation state, and the approximate call graph. The hook
/// functions themselves are deliberately absent — they are the probes,
/// not workload.
struct Inventory {
  std::string binary_path;
  std::uint16_t elf_type = 0;        ///< ET_REL / ET_EXEC / ET_DYN
  bool hooks_linked = false;         ///< a cyg hook symbol exists at all
  std::size_t instrumented_count = 0;
  /// Hook call sites at addresses no known function covers: the hooks
  /// are present but the calling function's symbol was stripped, so the
  /// profile will show hex addresses for real instrumented code.
  std::size_t stripped_hook_sites = 0;
  std::vector<FunctionRecord> functions;  ///< sorted by addr
  std::vector<CallEdge> edges;            ///< deduped, sorted (caller, callee)

  /// Function whose [addr, addr+size) covers `link_addr`; -1 if none.
  int find_index(std::uint64_t link_addr) const;
  const FunctionRecord* find(std::uint64_t link_addr) const;
};

/// Analyse a parsed ELF image (pure; tests craft images directly).
Inventory analyze_image(const symtab::ElfImage& image, std::string binary_path);

/// Read and analyse a binary. Errors are the ELF reader's (missing
/// file, non-ELF, truncation) — an uninstrumented binary is a valid
/// result with instrumented_count == 0, not an error.
Result<Inventory> analyze_binary(const std::string& path);

/// Coverage: which functions will silently vanish from profiles.
struct CoverageReport {
  std::size_t total = 0;
  std::size_t instrumented = 0;
  std::size_t uninstrumented = 0;
  bool hooks_linked = false;
  std::size_t stripped_hook_sites = 0;
  std::vector<std::uint32_t> uninstrumented_fns;  ///< indices, addr order
  /// Uninstrumented functions reachable from an instrumented caller:
  /// they run inside profiled regions but never emit events, so their
  /// time silently folds into the caller's inclusive time.
  std::vector<std::uint32_t> silent_subtree_fns;
};
CoverageReport build_coverage(const Inventory& inventory);

/// Probe-overhead ranking: which functions dominate instrumentation
/// cost. With a trace, calls are observed; statically, the call-graph
/// in-degree stands in as a unit-call estimate.
struct OverheadEntry {
  std::uint32_t fn = 0;               ///< index into Inventory::functions
  std::uint64_t calls = 0;            ///< observed (or in-degree proxy)
  std::uint64_t predicted_probes = 0; ///< 2 probes per call (enter + exit)
  double share = 0.0;                 ///< of total predicted probes
};
struct OverheadReport {
  bool from_trace = false;
  std::uint64_t total_probes = 0;
  /// Trace fn events at addresses the inventory does not cover
  /// (synthetic region events excluded) — nonzero means the trace and
  /// binary disagree; tempest-lint --symtab turns that into findings.
  std::uint64_t unattributed_events = 0;
  std::vector<OverheadEntry> ranked;  ///< descending predicted_probes
};

/// Join observed per-function call counts from a recorded trace
/// (events unbias through the trace's own load_bias) into
/// `inventory->functions[].trace_calls` and rank. Unreadable or corrupt
/// traces are an error Result.
Result<OverheadReport> predict_overhead(Inventory* inventory,
                                        const std::string& trace_path);

/// Trace-free ranking from static fan-in alone.
OverheadReport predict_overhead_static(const Inventory& inventory);

}  // namespace tempest::audit
