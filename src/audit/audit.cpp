#include "audit/audit.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

#include "trace/reader.hpp"

namespace tempest::audit {
namespace {

constexpr const char* kHookEnter = "__cyg_profile_func_enter";
constexpr const char* kHookExit = "__cyg_profile_func_exit";

bool is_hook_name(const std::string& name) {
  return name == kHookEnter || name == kHookExit;
}

/// Link-time origin of a section: virtual address in linked binaries,
/// file offset in relocatable objects (where every sh_addr is 0 and
/// symbols/relocations are section-relative — the file offset gives
/// each section a unique, stable base).
std::uint64_t section_origin(const symtab::ElfImage& image, std::size_t index) {
  const symtab::SectionInfo& sec = image.sections[index];
  return image.elf_type == symtab::kEtRel ? sec.offset : sec.addr;
}

/// Normalise a defined symbol's value into the shared address space.
std::uint64_t symbol_addr(const symtab::ElfImage& image,
                          const symtab::SymbolInfo& sym) {
  if (image.elf_type == symtab::kEtRel && sym.shndx < image.sections.size()) {
    return section_origin(image, sym.shndx) + sym.value;
  }
  return sym.value;
}

struct EdgeKey {
  std::uint32_t caller, callee;
  bool operator<(const EdgeKey& other) const {
    return caller != other.caller ? caller < other.caller : callee < other.callee;
  }
};

}  // namespace

int Inventory::find_index(std::uint64_t link_addr) const {
  const auto it = std::upper_bound(
      functions.begin(), functions.end(), link_addr,
      [](std::uint64_t a, const FunctionRecord& f) { return a < f.addr; });
  if (it == functions.begin()) return -1;
  const auto prev = std::prev(it);
  if (link_addr >= prev->addr && link_addr < prev->addr + prev->size) {
    return static_cast<int>(prev - functions.begin());
  }
  return -1;
}

const FunctionRecord* Inventory::find(std::uint64_t link_addr) const {
  const int i = find_index(link_addr);
  return i < 0 ? nullptr : &functions[static_cast<std::size_t>(i)];
}

Inventory analyze_image(const symtab::ElfImage& image, std::string binary_path) {
  Inventory inv;
  inv.binary_path = std::move(binary_path);
  inv.elf_type = image.elf_type;

  // Hook identities: defined hook symbols give scan targets; any hook
  // symbol (defined or extern, as in a .o) marks the binary as carrying
  // instrumentation, and its symtab indices match relocations.
  std::set<std::uint64_t> hook_addrs;
  std::set<std::uint32_t> hook_sym_indices;
  for (std::size_t i = 0; i < image.symbols.size(); ++i) {
    const symtab::SymbolInfo& sym = image.symbols[i];
    if (!is_hook_name(sym.name)) continue;
    inv.hooks_linked = true;
    hook_sym_indices.insert(static_cast<std::uint32_t>(i));
    if (sym.is_defined()) hook_addrs.insert(symbol_addr(image, sym));
  }

  // Function inventory: defined STT_FUNC symbols, deduped by address
  // (C1/C2 constructor aliases land on one entry), hooks excluded.
  std::map<std::uint64_t, FunctionRecord> by_addr;
  for (const symtab::SymbolInfo& sym : image.symbols) {
    if (!sym.is_function() || !sym.is_defined()) continue;
    if (sym.shndx >= image.sections.size()) continue;  // SHN_ABS etc.
    if (is_hook_name(sym.name)) continue;
    if (image.elf_type != symtab::kEtRel && sym.value == 0) continue;
    FunctionRecord fn;
    fn.addr = symbol_addr(image, sym);
    fn.size = sym.size;
    fn.name = sym.name;
    auto [it, inserted] = by_addr.try_emplace(fn.addr, std::move(fn));
    if (!inserted && it->second.size < sym.size) {
      it->second.size = sym.size;  // alias with the larger extent wins
      it->second.name = sym.name;
    }
  }
  inv.functions.reserve(by_addr.size());
  for (auto& [addr, fn] : by_addr) inv.functions.push_back(std::move(fn));
  // Zero-sized symbols (assembler stubs) extend to the next function so
  // call sites inside them still attribute (same rule as the Resolver).
  for (std::size_t i = 0; i < inv.functions.size(); ++i) {
    if (inv.functions[i].size == 0) {
      inv.functions[i].size = (i + 1 < inv.functions.size())
                                  ? inv.functions[i + 1].addr - inv.functions[i].addr
                                  : 1;
    }
  }

  // Entry-address index for the scan's exact-target sieve.
  std::map<std::uint64_t, std::uint32_t> entry_index;
  for (std::size_t i = 0; i < inv.functions.size(); ++i) {
    entry_index[inv.functions[i].addr] = static_cast<std::uint32_t>(i);
  }

  std::set<EdgeKey> reloc_edges, scan_edges;
  auto record_hook_site = [&](std::uint64_t site_addr) {
    const int caller = inv.find_index(site_addr);
    if (caller < 0) {
      ++inv.stripped_hook_sites;
    } else {
      inv.functions[static_cast<std::size_t>(caller)].instrumented = true;
    }
  };

  // Relocation pass (relocatable objects; linked binaries rarely retain
  // text relocations unless linked with --emit-relocs). A PC32/PLT32
  // call inserts S + A - P, so the runtime target is S + A + 4.
  std::set<std::size_t> sections_with_relocs;
  for (const symtab::RelocInfo& reloc : image.relocations) {
    sections_with_relocs.insert(reloc.target_section);
    if (reloc.type != symtab::kRX8664Pc32 && reloc.type != symtab::kRX8664Plt32) {
      continue;
    }
    const std::uint64_t site =
        section_origin(image, reloc.target_section) + reloc.offset;
    if (hook_sym_indices.count(reloc.sym_index) > 0) {
      record_hook_site(site);
      continue;
    }
    const symtab::SymbolInfo& target_sym = image.symbols[reloc.sym_index];
    std::uint64_t target = 0;
    if (target_sym.type == 3 /* STT_SECTION */ &&
        target_sym.shndx < image.sections.size()) {
      target = section_origin(image, target_sym.shndx) +
               static_cast<std::uint64_t>(reloc.addend) + 4;
    } else if (target_sym.is_function() && target_sym.is_defined()) {
      target = symbol_addr(image, target_sym);
    } else {
      continue;  // extern call: callee unknown to this object
    }
    const auto callee_it = entry_index.find(target);
    const int caller = inv.find_index(site);
    if (callee_it == entry_index.end() || caller < 0) continue;
    reloc_edges.insert({static_cast<std::uint32_t>(caller), callee_it->second});
  }

  // Byte-scan pass over executable sections the relocations did not
  // cover (in objects the rel32 fields still hold placeholders, so
  // scanning them would decode garbage). E8 is `call rel32`, E9 a
  // `jmp rel32` tail call; an edge survives only when the computed
  // target is exactly a known function entry.
  for (std::size_t si = 0; si < image.sections.size(); ++si) {
    const symtab::SectionInfo& sec = image.sections[si];
    if (!sec.executable() || sec.bytes.empty()) continue;
    if (sections_with_relocs.count(si) > 0) continue;
    const std::uint64_t origin = section_origin(image, si);
    for (std::size_t off = 0; off + 5 <= sec.bytes.size(); ++off) {
      const unsigned char op = sec.bytes[off];
      if (op != 0xE8 && op != 0xE9) continue;
      std::int32_t rel = 0;
      std::memcpy(&rel, sec.bytes.data() + off + 1, sizeof(rel));
      const std::uint64_t target =
          origin + off + 5 + static_cast<std::uint64_t>(static_cast<std::int64_t>(rel));
      if (hook_addrs.count(target) > 0) {
        record_hook_site(origin + off);
        continue;
      }
      const auto callee_it = entry_index.find(target);
      if (callee_it == entry_index.end()) continue;
      const int caller = inv.find_index(origin + off);
      if (caller < 0) continue;
      const auto caller_idx = static_cast<std::uint32_t>(caller);
      // A jmp landing back on the caller's own entry is a loop, not a
      // tail call; direct E8 recursion is a genuine self edge.
      if (op == 0xE9 && callee_it->second == caller_idx) continue;
      scan_edges.insert({caller_idx, callee_it->second});
    }
  }

  inv.edges.reserve(reloc_edges.size() + scan_edges.size());
  for (const EdgeKey& e : reloc_edges) {
    inv.edges.push_back({e.caller, e.callee, EdgeSource::kReloc});
  }
  for (const EdgeKey& e : scan_edges) {
    if (reloc_edges.count(e) == 0) {
      inv.edges.push_back({e.caller, e.callee, EdgeSource::kScan});
    }
  }
  std::sort(inv.edges.begin(), inv.edges.end(),
            [](const CallEdge& a, const CallEdge& b) {
              return a.caller != b.caller ? a.caller < b.caller
                                          : a.callee < b.callee;
            });
  for (const CallEdge& e : inv.edges) {
    ++inv.functions[e.caller].static_callees;
    ++inv.functions[e.callee].static_callers;
  }
  for (const FunctionRecord& fn : inv.functions) {
    if (fn.instrumented) ++inv.instrumented_count;
  }
  return inv;
}

Result<Inventory> analyze_binary(const std::string& path) {
  auto image = symtab::read_elf_image(path);
  if (!image.is_ok()) return Result<Inventory>::error(image.message());
  return analyze_image(image.value(), path);
}

CoverageReport build_coverage(const Inventory& inventory) {
  CoverageReport report;
  report.total = inventory.functions.size();
  report.instrumented = inventory.instrumented_count;
  report.uninstrumented = report.total - report.instrumented;
  report.hooks_linked = inventory.hooks_linked;
  report.stripped_hook_sites = inventory.stripped_hook_sites;

  for (std::size_t i = 0; i < inventory.functions.size(); ++i) {
    if (!inventory.functions[i].instrumented) {
      report.uninstrumented_fns.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // BFS over the call graph from every instrumented function: an
  // uninstrumented function it can reach executes inside profiled
  // regions yet never emits events.
  std::vector<std::vector<std::uint32_t>> out(inventory.functions.size());
  for (const CallEdge& e : inventory.edges) out[e.caller].push_back(e.callee);
  std::vector<char> visited(inventory.functions.size(), 0);
  std::vector<std::uint32_t> queue;
  for (std::size_t i = 0; i < inventory.functions.size(); ++i) {
    if (inventory.functions[i].instrumented) {
      visited[i] = 1;
      queue.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!queue.empty()) {
    const std::uint32_t cur = queue.back();
    queue.pop_back();
    for (const std::uint32_t next : out[cur]) {
      if (visited[next] != 0) continue;
      visited[next] = 1;
      queue.push_back(next);
    }
  }
  for (std::size_t i = 0; i < inventory.functions.size(); ++i) {
    if (visited[i] != 0 && !inventory.functions[i].instrumented) {
      report.silent_subtree_fns.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return report;
}

namespace {

OverheadReport rank(const Inventory& inventory, bool from_trace,
                    std::uint64_t unattributed) {
  OverheadReport report;
  report.from_trace = from_trace;
  report.unattributed_events = unattributed;
  for (std::size_t i = 0; i < inventory.functions.size(); ++i) {
    const FunctionRecord& fn = inventory.functions[i];
    const std::uint64_t calls =
        from_trace ? fn.trace_calls
                   : (fn.instrumented ? fn.static_callers : 0);
    if (calls == 0) continue;
    OverheadEntry entry;
    entry.fn = static_cast<std::uint32_t>(i);
    entry.calls = calls;
    entry.predicted_probes = calls * 2;  // enter + exit per call
    report.ranked.push_back(entry);
    report.total_probes += entry.predicted_probes;
  }
  for (OverheadEntry& entry : report.ranked) {
    entry.share = report.total_probes > 0
                      ? static_cast<double>(entry.predicted_probes) /
                            static_cast<double>(report.total_probes)
                      : 0.0;
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [&](const OverheadEntry& a, const OverheadEntry& b) {
              if (a.predicted_probes != b.predicted_probes) {
                return a.predicted_probes > b.predicted_probes;
              }
              return inventory.functions[a.fn].addr <
                     inventory.functions[b.fn].addr;
            });
  return report;
}

}  // namespace

Result<OverheadReport> predict_overhead(Inventory* inventory,
                                        const std::string& trace_path) {
  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    return Result<OverheadReport>::error(trace_path + ": cannot open trace file");
  }
  auto opened = trace::TraceStreamReader::open(in);
  if (!opened.is_ok()) {
    return Result<OverheadReport>::error(trace_path + ": " + opened.message());
  }
  trace::TraceStreamReader reader = std::move(opened).value();
  const std::uint64_t load_bias = reader.header().load_bias;

  for (FunctionRecord& fn : inventory->functions) fn.trace_calls = 0;
  std::uint64_t unattributed = 0;

  constexpr std::size_t kBatch = std::size_t{1} << 16;
  std::vector<trace::FnEvent> events;
  std::vector<trace::TempSample> samples;
  std::vector<trace::ClockSync> syncs;
  std::size_t appended = 0;
  while (!reader.done()) {
    events.clear();
    samples.clear();
    syncs.clear();
    Status s = reader.next_fn_events(&events, kBatch, &appended);
    if (s) s = reader.next_temp_samples(&samples, kBatch, &appended);
    if (s) s = reader.next_clock_syncs(&syncs, kBatch, &appended);
    if (!s) return Result<OverheadReport>::error(trace_path + ": " + s.message());
    for (const trace::FnEvent& e : events) {
      if (e.kind != trace::FnEventKind::kEnter) continue;
      // Synthetic region addresses never came from the cyg probes.
      if (e.addr >= trace::kSyntheticAddrBase) continue;
      if (e.addr < load_bias) {
        ++unattributed;
        continue;
      }
      const int fn = inventory->find_index(e.addr - load_bias);
      if (fn < 0) {
        ++unattributed;
      } else {
        ++inventory->functions[static_cast<std::size_t>(fn)].trace_calls;
      }
    }
  }
  return rank(*inventory, /*from_trace=*/true, unattributed);
}

OverheadReport predict_overhead_static(const Inventory& inventory) {
  return rank(inventory, /*from_trace=*/false, 0);
}

}  // namespace tempest::audit
