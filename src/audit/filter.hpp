// TEMPEST_FILTER suppression files — audit-side API.
//
// The line format and its parser live in common/filter_file.hpp so the
// recording runtime (src/core) can consume filters without linking the
// audit library. This header re-exports the shared types under
// tempest::audit and adds the one audit-only operation: suggesting a
// filter from an overhead ranking.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/filter_file.hpp"
#include "common/status.hpp"

namespace tempest::audit {

struct Inventory;
struct OverheadReport;

using common::FilterFile;
using common::FilterRule;
using common::read_filter_file;
using common::write_filter_file;

/// Suggest suppressions from an overhead ranking: the top_n functions
/// by predicted probe events. `main` is never suggested — suppressing
/// it would blind the profile's whole-run summary. The output order is
/// deterministic (the ranking sorts by predicted probe events with
/// function address as the tiebreak), so repeated audits of the same
/// binary + trace produce byte-identical filter files that diff
/// cleanly across runs.
FilterFile suggest_filter(const Inventory& inventory,
                          const OverheadReport& overhead, std::size_t top_n);

}  // namespace tempest::audit
