// TEMPEST_FILTER suppression files.
//
// The adaptive-instrumentation direction (ROADMAP; ScALPEL in
// PAPERS.md) needs a static inventory of which probes to throttle.
// tempest-audit emits that inventory in a deliberately trivial line
// format so both the future runtime (reading it at session start via
// the TEMPEST_FILTER environment variable) and humans (reviewing the
// suggestions) consume it as-is:
//
//   # TEMPEST_FILTER v1
//   # <free-form comment>
//   suppress <raw-symbol-name>        # <reason>
//
// Blank lines and `#` comments are ignored; each directive line is the
// word `suppress`, one mangled symbol name, and an optional trailing
// `# reason`. Unknown directives are an error (a typo must not
// silently keep a hot function instrumented).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tempest::audit {

struct Inventory;
struct OverheadReport;

struct FilterRule {
  std::string symbol;  ///< raw (mangled) name, matching the ELF symtab
  std::string reason;  ///< advisory; round-trips through the file
};

inline bool operator==(const FilterRule& a, const FilterRule& b) {
  return a.symbol == b.symbol && a.reason == b.reason;
}

struct FilterFile {
  std::vector<FilterRule> rules;
};

/// Emit the canonical file form (version header, one directive per rule).
void write_filter_file(std::ostream& out, const FilterFile& filter);
Status write_filter_file(const std::string& path, const FilterFile& filter);

/// Parse a filter file. Unknown directives and directives without a
/// symbol are errors naming the line number.
Result<FilterFile> read_filter_file(std::istream& in);
Result<FilterFile> read_filter_file(const std::string& path);

/// Suggest suppressions from an overhead ranking: the top_n functions
/// by predicted probe events. `main` is never suggested — suppressing
/// it would blind the profile's whole-run summary.
FilterFile suggest_filter(const Inventory& inventory,
                          const OverheadReport& overhead, std::size_t top_n);

}  // namespace tempest::audit
