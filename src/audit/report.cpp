#include "audit/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "symtab/resolver.hpp"

namespace tempest::audit {
namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

const char* elf_type_name(std::uint16_t type) {
  switch (type) {
    case symtab::kEtRel: return "rel";
    case symtab::kEtExec: return "exec";
    case symtab::kEtDyn: return "dyn";
    default: return "other";
  }
}

void json_function(std::ostream& os, const FunctionRecord& fn) {
  os << "{\"name\":\"";
  json_escape(os, fn.name);
  os << "\",\"addr\":\"" << hex(fn.addr) << "\",\"size\":" << fn.size
     << ",\"instrumented\":" << (fn.instrumented ? "true" : "false")
     << ",\"static_callers\":" << fn.static_callers
     << ",\"static_callees\":" << fn.static_callees << "}";
}

}  // namespace

std::string to_json(const Inventory& inventory, const CoverageReport& coverage,
                    const OverheadReport* overhead, const ReportOptions& options) {
  std::ostringstream os;
  std::size_t reloc_edges = 0;
  for (const CallEdge& e : inventory.edges) {
    if (e.source == EdgeSource::kReloc) ++reloc_edges;
  }
  os << "{\"binary\":\"";
  json_escape(os, inventory.binary_path);
  os << "\",\"elf_type\":\"" << elf_type_name(inventory.elf_type)
     << "\",\"hooks_linked\":" << (inventory.hooks_linked ? "true" : "false")
     << ",\"functions\":" << inventory.functions.size()
     << ",\"instrumented\":" << coverage.instrumented
     << ",\"uninstrumented\":" << coverage.uninstrumented
     << ",\"call_graph\":{\"edges\":" << inventory.edges.size()
     << ",\"reloc_edges\":" << reloc_edges
     << ",\"scan_edges\":" << inventory.edges.size() - reloc_edges << "}";

  // Coverage gaps: every silent-subtree member, then other
  // uninstrumented functions up to the cap.
  os << ",\"coverage\":{\"stripped_hook_sites\":" << coverage.stripped_hook_sites
     << ",\"silent_subtree_functions\":" << coverage.silent_subtree_fns.size()
     << ",\"gaps\":[";
  const std::set<std::uint32_t> silent(coverage.silent_subtree_fns.begin(),
                                       coverage.silent_subtree_fns.end());
  std::size_t listed = 0;
  bool first = true;
  auto emit_gap = [&](std::uint32_t fn_index) {
    if (listed >= options.max_list) return;
    if (!first) os << ",";
    first = false;
    ++listed;
    const FunctionRecord& fn = inventory.functions[fn_index];
    os << "{\"name\":\"";
    json_escape(os, fn.name);
    os << "\",\"addr\":\"" << hex(fn.addr) << "\",\"reachable_from_instrumented\":"
       << (silent.count(fn_index) > 0 ? "true" : "false") << "}";
  };
  for (const std::uint32_t i : coverage.silent_subtree_fns) emit_gap(i);
  for (const std::uint32_t i : coverage.uninstrumented_fns) {
    if (silent.count(i) == 0) emit_gap(i);
  }
  os << "]}";

  if (overhead != nullptr) {
    os << ",\"overhead\":{\"from_trace\":"
       << (overhead->from_trace ? "true" : "false")
       << ",\"total_probe_events\":" << overhead->total_probes
       << ",\"unattributed_events\":" << overhead->unattributed_events
       << ",\"ranked\":[";
    const std::size_t n = std::min(options.max_list, overhead->ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      const OverheadEntry& entry = overhead->ranked[i];
      const FunctionRecord& fn = inventory.functions[entry.fn];
      if (i > 0) os << ",";
      os << "{\"name\":\"";
      json_escape(os, fn.name);
      os << "\",\"addr\":\"" << hex(fn.addr) << "\",\"calls\":" << entry.calls
         << ",\"predicted_probe_events\":" << entry.predicted_probes
         << ",\"share\":" << std::setprecision(6) << entry.share
         << ",\"static_callers\":" << fn.static_callers
         << ",\"static_callees\":" << fn.static_callees << "}";
    }
    os << "]}";
  }

  os << ",\"instrumented_functions\":[";
  std::size_t emitted = 0;
  for (const FunctionRecord& fn : inventory.functions) {
    if (!fn.instrumented) continue;
    if (emitted >= options.max_list) break;
    if (emitted > 0) os << ",";
    ++emitted;
    json_function(os, fn);
  }
  os << "]}";
  return os.str();
}

void write_human(std::ostream& out, const Inventory& inventory,
                 const CoverageReport& coverage, const OverheadReport* overhead,
                 const ReportOptions& options) {
  out << "== instrumentation audit: " << inventory.binary_path << " ==\n";
  out << "ELF type: " << elf_type_name(inventory.elf_type)
      << ", hooks linked: " << (inventory.hooks_linked ? "yes" : "no") << "\n";
  out << "functions: " << inventory.functions.size() << " ("
      << coverage.instrumented << " instrumented, " << coverage.uninstrumented
      << " not), call-graph edges: " << inventory.edges.size() << "\n";
  if (coverage.stripped_hook_sites > 0) {
    out << "WARNING: " << coverage.stripped_hook_sites
        << " hook call site(s) outside any known function symbol "
        << "(instrumented code will profile as hex addresses)\n";
  }

  out << "\n-- coverage gaps (" << coverage.silent_subtree_fns.size()
      << " reachable from instrumented code) --\n";
  const std::set<std::uint32_t> silent(coverage.silent_subtree_fns.begin(),
                                       coverage.silent_subtree_fns.end());
  std::size_t listed = 0;
  for (const std::uint32_t i : coverage.silent_subtree_fns) {
    if (listed >= options.max_list) break;
    ++listed;
    const FunctionRecord& fn = inventory.functions[i];
    out << "  silent  " << hex(fn.addr) << "  " << symtab::demangle(fn.name)
        << "\n";
  }
  for (const std::uint32_t i : coverage.uninstrumented_fns) {
    if (silent.count(i) > 0) continue;
    if (listed >= options.max_list) break;
    ++listed;
    const FunctionRecord& fn = inventory.functions[i];
    out << "  no-hook " << hex(fn.addr) << "  " << symtab::demangle(fn.name)
        << "\n";
  }
  if (coverage.uninstrumented_fns.size() > listed) {
    out << "  (" << coverage.uninstrumented_fns.size() - listed
        << " more suppressed)\n";
  }

  if (overhead != nullptr) {
    out << "\n-- probe overhead ranking ("
        << (overhead->from_trace ? "observed calls from trace"
                                 : "static fan-in estimate")
        << ", " << overhead->total_probes << " predicted probe events) --\n";
    const std::size_t n = std::min(options.max_list, overhead->ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      const OverheadEntry& entry = overhead->ranked[i];
      const FunctionRecord& fn = inventory.functions[entry.fn];
      out << "  " << std::setw(3) << static_cast<int>(entry.share * 100.0 + 0.5)
          << "%  " << entry.calls << (overhead->from_trace ? " calls" : " callers")
          << "  " << symtab::demangle(fn.name) << "\n";
    }
    if (overhead->unattributed_events > 0) {
      out << "  WARNING: " << overhead->unattributed_events
          << " trace event(s) at addresses this binary does not cover\n";
    }
  }
}

}  // namespace tempest::audit
