#include "audit/filter.hpp"

#include <sstream>

#include "audit/audit.hpp"

namespace tempest::audit {

FilterFile suggest_filter(const Inventory& inventory,
                          const OverheadReport& overhead, std::size_t top_n) {
  FilterFile filter;
  for (const OverheadEntry& entry : overhead.ranked) {
    if (filter.rules.size() >= top_n) break;
    const FunctionRecord& fn = inventory.functions[entry.fn];
    if (fn.name == "main") continue;
    std::ostringstream reason;
    reason << entry.calls << (overhead.from_trace ? " calls" : " static callers")
           << ", " << static_cast<int>(entry.share * 100.0 + 0.5)
           << "% of predicted probe events";
    filter.rules.push_back({fn.name, reason.str()});
  }
  return filter;
}

}  // namespace tempest::audit
