file(REMOVE_RECURSE
  "CMakeFiles/basic_blocks.dir/basic_blocks.cpp.o"
  "CMakeFiles/basic_blocks.dir/basic_blocks.cpp.o.d"
  "basic_blocks"
  "basic_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
