# Empty dependencies file for basic_blocks.
# This may be replaced when dependencies are built.
