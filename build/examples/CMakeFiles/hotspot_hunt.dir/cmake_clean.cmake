file(REMOVE_RECURSE
  "CMakeFiles/hotspot_hunt.dir/hotspot_hunt.cpp.o"
  "CMakeFiles/hotspot_hunt.dir/hotspot_hunt.cpp.o.d"
  "hotspot_hunt"
  "hotspot_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
