file(REMOVE_RECURSE
  "CMakeFiles/thermal_optimization.dir/thermal_optimization.cpp.o"
  "CMakeFiles/thermal_optimization.dir/thermal_optimization.cpp.o.d"
  "thermal_optimization"
  "thermal_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
