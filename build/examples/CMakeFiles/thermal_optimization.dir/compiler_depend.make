# Empty compiler generated dependencies file for thermal_optimization.
# This may be replaced when dependencies are built.
