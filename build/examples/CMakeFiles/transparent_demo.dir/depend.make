# Empty dependencies file for transparent_demo.
# This may be replaced when dependencies are built.
