file(REMOVE_RECURSE
  "CMakeFiles/transparent_demo.dir/transparent_demo.cpp.o"
  "CMakeFiles/transparent_demo.dir/transparent_demo.cpp.o.d"
  "transparent_demo"
  "transparent_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparent_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
