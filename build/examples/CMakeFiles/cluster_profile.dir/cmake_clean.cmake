file(REMOVE_RECURSE
  "CMakeFiles/cluster_profile.dir/cluster_profile.cpp.o"
  "CMakeFiles/cluster_profile.dir/cluster_profile.cpp.o.d"
  "cluster_profile"
  "cluster_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
