# Empty dependencies file for cluster_profile.
# This may be replaced when dependencies are built.
