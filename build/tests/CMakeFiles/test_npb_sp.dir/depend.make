# Empty dependencies file for test_npb_sp.
# This may be replaced when dependencies are built.
