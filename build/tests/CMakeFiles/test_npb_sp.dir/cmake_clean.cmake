file(REMOVE_RECURSE
  "CMakeFiles/test_npb_sp.dir/test_npb_sp.cpp.o"
  "CMakeFiles/test_npb_sp.dir/test_npb_sp.cpp.o.d"
  "test_npb_sp"
  "test_npb_sp.pdb"
  "test_npb_sp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
