file(REMOVE_RECURSE
  "CMakeFiles/test_report_gnuplot.dir/test_report_gnuplot.cpp.o"
  "CMakeFiles/test_report_gnuplot.dir/test_report_gnuplot.cpp.o.d"
  "test_report_gnuplot"
  "test_report_gnuplot.pdb"
  "test_report_gnuplot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_gnuplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
