# Empty compiler generated dependencies file for test_report_gnuplot.
# This may be replaced when dependencies are built.
