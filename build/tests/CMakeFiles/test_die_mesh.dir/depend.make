# Empty dependencies file for test_die_mesh.
# This may be replaced when dependencies are built.
