file(REMOVE_RECURSE
  "CMakeFiles/test_die_mesh.dir/test_die_mesh.cpp.o"
  "CMakeFiles/test_die_mesh.dir/test_die_mesh.cpp.o.d"
  "test_die_mesh"
  "test_die_mesh.pdb"
  "test_die_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_die_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
