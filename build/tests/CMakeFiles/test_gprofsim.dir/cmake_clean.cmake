file(REMOVE_RECURSE
  "CMakeFiles/test_gprofsim.dir/test_gprofsim.cpp.o"
  "CMakeFiles/test_gprofsim.dir/test_gprofsim.cpp.o.d"
  "test_gprofsim"
  "test_gprofsim.pdb"
  "test_gprofsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gprofsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
