# Empty compiler generated dependencies file for test_gprofsim.
# This may be replaced when dependencies are built.
