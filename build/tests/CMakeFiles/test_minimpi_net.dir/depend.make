# Empty dependencies file for test_minimpi_net.
# This may be replaced when dependencies are built.
