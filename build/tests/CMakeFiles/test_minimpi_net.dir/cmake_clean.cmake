file(REMOVE_RECURSE
  "CMakeFiles/test_minimpi_net.dir/test_minimpi_net.cpp.o"
  "CMakeFiles/test_minimpi_net.dir/test_minimpi_net.cpp.o.d"
  "test_minimpi_net"
  "test_minimpi_net.pdb"
  "test_minimpi_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimpi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
