# Empty compiler generated dependencies file for test_simnode.
# This may be replaced when dependencies are built.
