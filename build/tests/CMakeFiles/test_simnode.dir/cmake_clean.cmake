file(REMOVE_RECURSE
  "CMakeFiles/test_simnode.dir/test_simnode.cpp.o"
  "CMakeFiles/test_simnode.dir/test_simnode.cpp.o.d"
  "test_simnode"
  "test_simnode.pdb"
  "test_simnode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
