file(REMOVE_RECURSE
  "CMakeFiles/test_npb_is.dir/test_npb_is.cpp.o"
  "CMakeFiles/test_npb_is.dir/test_npb_is.cpp.o.d"
  "test_npb_is"
  "test_npb_is.pdb"
  "test_npb_is[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
