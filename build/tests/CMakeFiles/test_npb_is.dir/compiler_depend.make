# Empty compiler generated dependencies file for test_npb_is.
# This may be replaced when dependencies are built.
