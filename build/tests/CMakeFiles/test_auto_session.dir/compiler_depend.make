# Empty compiler generated dependencies file for test_auto_session.
# This may be replaced when dependencies are built.
