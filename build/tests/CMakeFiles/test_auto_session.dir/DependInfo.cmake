
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_auto_session.cpp" "tests/CMakeFiles/test_auto_session.dir/test_auto_session.cpp.o" "gcc" "tests/CMakeFiles/test_auto_session.dir/test_auto_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tempest_auto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnode/CMakeFiles/tempest_simnode.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tempest_report.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tempest_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
