file(REMOVE_RECURSE
  "CMakeFiles/test_auto_session.dir/test_auto_session.cpp.o"
  "CMakeFiles/test_auto_session.dir/test_auto_session.cpp.o.d"
  "test_auto_session"
  "test_auto_session.pdb"
  "test_auto_session[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
