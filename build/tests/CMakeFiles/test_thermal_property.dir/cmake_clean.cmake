file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_property.dir/test_thermal_property.cpp.o"
  "CMakeFiles/test_thermal_property.dir/test_thermal_property.cpp.o.d"
  "test_thermal_property"
  "test_thermal_property.pdb"
  "test_thermal_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
