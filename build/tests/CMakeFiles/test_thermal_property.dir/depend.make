# Empty dependencies file for test_thermal_property.
# This may be replaced when dependencies are built.
