# Empty dependencies file for test_npb_more.
# This may be replaced when dependencies are built.
