file(REMOVE_RECURSE
  "CMakeFiles/test_npb_more.dir/test_npb_more.cpp.o"
  "CMakeFiles/test_npb_more.dir/test_npb_more.cpp.o.d"
  "test_npb_more"
  "test_npb_more.pdb"
  "test_npb_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npb_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
