# Empty compiler generated dependencies file for test_parser_property.
# This may be replaced when dependencies are built.
