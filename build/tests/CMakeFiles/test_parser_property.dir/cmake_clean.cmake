file(REMOVE_RECURSE
  "CMakeFiles/test_parser_property.dir/test_parser_property.cpp.o"
  "CMakeFiles/test_parser_property.dir/test_parser_property.cpp.o.d"
  "test_parser_property"
  "test_parser_property.pdb"
  "test_parser_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
