file(REMOVE_RECURSE
  "CMakeFiles/tempest_micro.dir/micro.cpp.o"
  "CMakeFiles/tempest_micro.dir/micro.cpp.o.d"
  "libtempest_micro.a"
  "libtempest_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
