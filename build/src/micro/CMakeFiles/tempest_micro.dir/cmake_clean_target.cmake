file(REMOVE_RECURSE
  "libtempest_micro.a"
)
