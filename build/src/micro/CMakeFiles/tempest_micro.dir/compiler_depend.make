# Empty compiler generated dependencies file for tempest_micro.
# This may be replaced when dependencies are built.
