file(REMOVE_RECURSE
  "libtempest_parser.a"
)
