file(REMOVE_RECURSE
  "CMakeFiles/tempest_parser.dir/parse.cpp.o"
  "CMakeFiles/tempest_parser.dir/parse.cpp.o.d"
  "CMakeFiles/tempest_parser.dir/profile.cpp.o"
  "CMakeFiles/tempest_parser.dir/profile.cpp.o.d"
  "CMakeFiles/tempest_parser.dir/timeline.cpp.o"
  "CMakeFiles/tempest_parser.dir/timeline.cpp.o.d"
  "libtempest_parser.a"
  "libtempest_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
