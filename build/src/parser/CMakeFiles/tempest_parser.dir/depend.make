# Empty dependencies file for tempest_parser.
# This may be replaced when dependencies are built.
