
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/comm.cpp" "src/minimpi/CMakeFiles/minimpi.dir/comm.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/comm.cpp.o.d"
  "/root/repo/src/minimpi/runtime.cpp" "src/minimpi/CMakeFiles/minimpi.dir/runtime.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/runtime.cpp.o.d"
  "/root/repo/src/minimpi/world.cpp" "src/minimpi/CMakeFiles/minimpi.dir/world.cpp.o" "gcc" "src/minimpi/CMakeFiles/minimpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simnode/CMakeFiles/tempest_simnode.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
