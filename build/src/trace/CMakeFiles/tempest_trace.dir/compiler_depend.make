# Empty compiler generated dependencies file for tempest_trace.
# This may be replaced when dependencies are built.
