file(REMOVE_RECURSE
  "libtempest_trace.a"
)
