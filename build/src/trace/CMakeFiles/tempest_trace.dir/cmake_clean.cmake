file(REMOVE_RECURSE
  "CMakeFiles/tempest_trace.dir/align.cpp.o"
  "CMakeFiles/tempest_trace.dir/align.cpp.o.d"
  "CMakeFiles/tempest_trace.dir/reader.cpp.o"
  "CMakeFiles/tempest_trace.dir/reader.cpp.o.d"
  "CMakeFiles/tempest_trace.dir/trace.cpp.o"
  "CMakeFiles/tempest_trace.dir/trace.cpp.o.d"
  "CMakeFiles/tempest_trace.dir/writer.cpp.o"
  "CMakeFiles/tempest_trace.dir/writer.cpp.o.d"
  "libtempest_trace.a"
  "libtempest_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
