file(REMOVE_RECURSE
  "../../tools/tempest_parse"
  "../../tools/tempest_parse.pdb"
  "CMakeFiles/tempest_parse.dir/tempest_parse.cpp.o"
  "CMakeFiles/tempest_parse.dir/tempest_parse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
