# Empty dependencies file for tempest_parse.
# This may be replaced when dependencies are built.
