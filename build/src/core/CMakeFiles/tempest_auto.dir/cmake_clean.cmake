file(REMOVE_RECURSE
  "CMakeFiles/tempest_auto.dir/auto_session.cpp.o"
  "CMakeFiles/tempest_auto.dir/auto_session.cpp.o.d"
  "libtempest_auto.a"
  "libtempest_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
