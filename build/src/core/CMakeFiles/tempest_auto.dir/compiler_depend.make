# Empty compiler generated dependencies file for tempest_auto.
# This may be replaced when dependencies are built.
