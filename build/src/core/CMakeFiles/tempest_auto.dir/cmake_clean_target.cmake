file(REMOVE_RECURSE
  "libtempest_auto.a"
)
