# Empty compiler generated dependencies file for tempest_hooks.
# This may be replaced when dependencies are built.
