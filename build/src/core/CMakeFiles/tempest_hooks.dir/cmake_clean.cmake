file(REMOVE_RECURSE
  "CMakeFiles/tempest_hooks.dir/hooks.cpp.o"
  "CMakeFiles/tempest_hooks.dir/hooks.cpp.o.d"
  "libtempest_hooks.a"
  "libtempest_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
