file(REMOVE_RECURSE
  "libtempest_hooks.a"
)
