# Empty compiler generated dependencies file for tempest_perblk.
# This may be replaced when dependencies are built.
