file(REMOVE_RECURSE
  "libtempest_perblk.a"
)
