file(REMOVE_RECURSE
  "CMakeFiles/tempest_perblk.dir/perblk.cpp.o"
  "CMakeFiles/tempest_perblk.dir/perblk.cpp.o.d"
  "libtempest_perblk.a"
  "libtempest_perblk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_perblk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
