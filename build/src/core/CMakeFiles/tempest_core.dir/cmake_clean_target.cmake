file(REMOVE_RECURSE
  "libtempest_core.a"
)
