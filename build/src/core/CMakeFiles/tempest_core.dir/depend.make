# Empty dependencies file for tempest_core.
# This may be replaced when dependencies are built.
