
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/tempest_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/api.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/tempest_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/config.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/tempest_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/session.cpp.o.d"
  "/root/repo/src/core/tempd.cpp" "src/core/CMakeFiles/tempest_core.dir/tempd.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/tempd.cpp.o.d"
  "/root/repo/src/core/thread_buffer.cpp" "src/core/CMakeFiles/tempest_core.dir/thread_buffer.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/thread_buffer.cpp.o.d"
  "/root/repo/src/core/workbench.cpp" "src/core/CMakeFiles/tempest_core.dir/workbench.cpp.o" "gcc" "src/core/CMakeFiles/tempest_core.dir/workbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/simnode/CMakeFiles/tempest_simnode.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
