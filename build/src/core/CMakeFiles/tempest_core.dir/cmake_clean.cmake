file(REMOVE_RECURSE
  "CMakeFiles/tempest_core.dir/api.cpp.o"
  "CMakeFiles/tempest_core.dir/api.cpp.o.d"
  "CMakeFiles/tempest_core.dir/config.cpp.o"
  "CMakeFiles/tempest_core.dir/config.cpp.o.d"
  "CMakeFiles/tempest_core.dir/session.cpp.o"
  "CMakeFiles/tempest_core.dir/session.cpp.o.d"
  "CMakeFiles/tempest_core.dir/tempd.cpp.o"
  "CMakeFiles/tempest_core.dir/tempd.cpp.o.d"
  "CMakeFiles/tempest_core.dir/thread_buffer.cpp.o"
  "CMakeFiles/tempest_core.dir/thread_buffer.cpp.o.d"
  "CMakeFiles/tempest_core.dir/workbench.cpp.o"
  "CMakeFiles/tempest_core.dir/workbench.cpp.o.d"
  "libtempest_core.a"
  "libtempest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
