file(REMOVE_RECURSE
  "libtempest_common.a"
)
