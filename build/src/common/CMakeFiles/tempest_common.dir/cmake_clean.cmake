file(REMOVE_RECURSE
  "CMakeFiles/tempest_common.dir/affinity.cpp.o"
  "CMakeFiles/tempest_common.dir/affinity.cpp.o.d"
  "CMakeFiles/tempest_common.dir/env.cpp.o"
  "CMakeFiles/tempest_common.dir/env.cpp.o.d"
  "CMakeFiles/tempest_common.dir/stats.cpp.o"
  "CMakeFiles/tempest_common.dir/stats.cpp.o.d"
  "CMakeFiles/tempest_common.dir/tsc.cpp.o"
  "CMakeFiles/tempest_common.dir/tsc.cpp.o.d"
  "CMakeFiles/tempest_common.dir/units.cpp.o"
  "CMakeFiles/tempest_common.dir/units.cpp.o.d"
  "libtempest_common.a"
  "libtempest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
