# Empty compiler generated dependencies file for tempest_common.
# This may be replaced when dependencies are built.
