file(REMOVE_RECURSE
  "CMakeFiles/npb.dir/blocks5.cpp.o"
  "CMakeFiles/npb.dir/blocks5.cpp.o.d"
  "CMakeFiles/npb.dir/bt.cpp.o"
  "CMakeFiles/npb.dir/bt.cpp.o.d"
  "CMakeFiles/npb.dir/cg.cpp.o"
  "CMakeFiles/npb.dir/cg.cpp.o.d"
  "CMakeFiles/npb.dir/ep.cpp.o"
  "CMakeFiles/npb.dir/ep.cpp.o.d"
  "CMakeFiles/npb.dir/ft.cpp.o"
  "CMakeFiles/npb.dir/ft.cpp.o.d"
  "CMakeFiles/npb.dir/is.cpp.o"
  "CMakeFiles/npb.dir/is.cpp.o.d"
  "CMakeFiles/npb.dir/mg.cpp.o"
  "CMakeFiles/npb.dir/mg.cpp.o.d"
  "CMakeFiles/npb.dir/nas_rng.cpp.o"
  "CMakeFiles/npb.dir/nas_rng.cpp.o.d"
  "CMakeFiles/npb.dir/sp.cpp.o"
  "CMakeFiles/npb.dir/sp.cpp.o.d"
  "CMakeFiles/npb.dir/support.cpp.o"
  "CMakeFiles/npb.dir/support.cpp.o.d"
  "libnpb.a"
  "libnpb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
