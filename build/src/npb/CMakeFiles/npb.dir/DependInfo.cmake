
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/blocks5.cpp" "src/npb/CMakeFiles/npb.dir/blocks5.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/blocks5.cpp.o.d"
  "/root/repo/src/npb/bt.cpp" "src/npb/CMakeFiles/npb.dir/bt.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/bt.cpp.o.d"
  "/root/repo/src/npb/cg.cpp" "src/npb/CMakeFiles/npb.dir/cg.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/cg.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/npb/CMakeFiles/npb.dir/ep.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/ep.cpp.o.d"
  "/root/repo/src/npb/ft.cpp" "src/npb/CMakeFiles/npb.dir/ft.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/ft.cpp.o.d"
  "/root/repo/src/npb/is.cpp" "src/npb/CMakeFiles/npb.dir/is.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/is.cpp.o.d"
  "/root/repo/src/npb/mg.cpp" "src/npb/CMakeFiles/npb.dir/mg.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/mg.cpp.o.d"
  "/root/repo/src/npb/nas_rng.cpp" "src/npb/CMakeFiles/npb.dir/nas_rng.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/nas_rng.cpp.o.d"
  "/root/repo/src/npb/sp.cpp" "src/npb/CMakeFiles/npb.dir/sp.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/sp.cpp.o.d"
  "/root/repo/src/npb/support.cpp" "src/npb/CMakeFiles/npb.dir/support.cpp.o" "gcc" "src/npb/CMakeFiles/npb.dir/support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  "/root/repo/build/src/simnode/CMakeFiles/tempest_simnode.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
