# Empty compiler generated dependencies file for npb.
# This may be replaced when dependencies are built.
