file(REMOVE_RECURSE
  "libnpb.a"
)
