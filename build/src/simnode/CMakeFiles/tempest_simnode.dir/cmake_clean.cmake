file(REMOVE_RECURSE
  "CMakeFiles/tempest_simnode.dir/activity.cpp.o"
  "CMakeFiles/tempest_simnode.dir/activity.cpp.o.d"
  "CMakeFiles/tempest_simnode.dir/cluster.cpp.o"
  "CMakeFiles/tempest_simnode.dir/cluster.cpp.o.d"
  "CMakeFiles/tempest_simnode.dir/layouts.cpp.o"
  "CMakeFiles/tempest_simnode.dir/layouts.cpp.o.d"
  "CMakeFiles/tempest_simnode.dir/node.cpp.o"
  "CMakeFiles/tempest_simnode.dir/node.cpp.o.d"
  "libtempest_simnode.a"
  "libtempest_simnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_simnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
