# Empty dependencies file for tempest_simnode.
# This may be replaced when dependencies are built.
