file(REMOVE_RECURSE
  "libtempest_simnode.a"
)
