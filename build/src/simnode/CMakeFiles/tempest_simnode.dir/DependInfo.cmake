
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnode/activity.cpp" "src/simnode/CMakeFiles/tempest_simnode.dir/activity.cpp.o" "gcc" "src/simnode/CMakeFiles/tempest_simnode.dir/activity.cpp.o.d"
  "/root/repo/src/simnode/cluster.cpp" "src/simnode/CMakeFiles/tempest_simnode.dir/cluster.cpp.o" "gcc" "src/simnode/CMakeFiles/tempest_simnode.dir/cluster.cpp.o.d"
  "/root/repo/src/simnode/layouts.cpp" "src/simnode/CMakeFiles/tempest_simnode.dir/layouts.cpp.o" "gcc" "src/simnode/CMakeFiles/tempest_simnode.dir/layouts.cpp.o.d"
  "/root/repo/src/simnode/node.cpp" "src/simnode/CMakeFiles/tempest_simnode.dir/node.cpp.o" "gcc" "src/simnode/CMakeFiles/tempest_simnode.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
