file(REMOVE_RECURSE
  "libtempest_sensors.a"
)
