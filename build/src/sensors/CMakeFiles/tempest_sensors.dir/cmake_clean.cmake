file(REMOVE_RECURSE
  "CMakeFiles/tempest_sensors.dir/hwmon.cpp.o"
  "CMakeFiles/tempest_sensors.dir/hwmon.cpp.o.d"
  "CMakeFiles/tempest_sensors.dir/replay.cpp.o"
  "CMakeFiles/tempest_sensors.dir/replay.cpp.o.d"
  "CMakeFiles/tempest_sensors.dir/sim_backend.cpp.o"
  "CMakeFiles/tempest_sensors.dir/sim_backend.cpp.o.d"
  "libtempest_sensors.a"
  "libtempest_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
