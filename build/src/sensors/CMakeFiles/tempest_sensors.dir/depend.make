# Empty dependencies file for tempest_sensors.
# This may be replaced when dependencies are built.
