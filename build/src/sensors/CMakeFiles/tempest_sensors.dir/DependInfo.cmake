
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/hwmon.cpp" "src/sensors/CMakeFiles/tempest_sensors.dir/hwmon.cpp.o" "gcc" "src/sensors/CMakeFiles/tempest_sensors.dir/hwmon.cpp.o.d"
  "/root/repo/src/sensors/replay.cpp" "src/sensors/CMakeFiles/tempest_sensors.dir/replay.cpp.o" "gcc" "src/sensors/CMakeFiles/tempest_sensors.dir/replay.cpp.o.d"
  "/root/repo/src/sensors/sim_backend.cpp" "src/sensors/CMakeFiles/tempest_sensors.dir/sim_backend.cpp.o" "gcc" "src/sensors/CMakeFiles/tempest_sensors.dir/sim_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
