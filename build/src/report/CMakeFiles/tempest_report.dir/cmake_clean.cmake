file(REMOVE_RECURSE
  "CMakeFiles/tempest_report.dir/ascii_plot.cpp.o"
  "CMakeFiles/tempest_report.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/tempest_report.dir/gnuplot.cpp.o"
  "CMakeFiles/tempest_report.dir/gnuplot.cpp.o.d"
  "CMakeFiles/tempest_report.dir/json.cpp.o"
  "CMakeFiles/tempest_report.dir/json.cpp.o.d"
  "CMakeFiles/tempest_report.dir/series.cpp.o"
  "CMakeFiles/tempest_report.dir/series.cpp.o.d"
  "CMakeFiles/tempest_report.dir/stdout_format.cpp.o"
  "CMakeFiles/tempest_report.dir/stdout_format.cpp.o.d"
  "libtempest_report.a"
  "libtempest_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
