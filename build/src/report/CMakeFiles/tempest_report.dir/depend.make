# Empty dependencies file for tempest_report.
# This may be replaced when dependencies are built.
