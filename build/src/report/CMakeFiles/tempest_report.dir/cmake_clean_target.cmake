file(REMOVE_RECURSE
  "libtempest_report.a"
)
