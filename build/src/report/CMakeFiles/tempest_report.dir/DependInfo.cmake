
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/ascii_plot.cpp" "src/report/CMakeFiles/tempest_report.dir/ascii_plot.cpp.o" "gcc" "src/report/CMakeFiles/tempest_report.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/report/gnuplot.cpp" "src/report/CMakeFiles/tempest_report.dir/gnuplot.cpp.o" "gcc" "src/report/CMakeFiles/tempest_report.dir/gnuplot.cpp.o.d"
  "/root/repo/src/report/json.cpp" "src/report/CMakeFiles/tempest_report.dir/json.cpp.o" "gcc" "src/report/CMakeFiles/tempest_report.dir/json.cpp.o.d"
  "/root/repo/src/report/series.cpp" "src/report/CMakeFiles/tempest_report.dir/series.cpp.o" "gcc" "src/report/CMakeFiles/tempest_report.dir/series.cpp.o.d"
  "/root/repo/src/report/stdout_format.cpp" "src/report/CMakeFiles/tempest_report.dir/stdout_format.cpp.o" "gcc" "src/report/CMakeFiles/tempest_report.dir/stdout_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/tempest_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
