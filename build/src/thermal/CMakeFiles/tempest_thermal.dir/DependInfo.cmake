
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/cpu_package.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/cpu_package.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/cpu_package.cpp.o.d"
  "/root/repo/src/thermal/die_mesh.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/die_mesh.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/die_mesh.cpp.o.d"
  "/root/repo/src/thermal/dvfs.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/dvfs.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/dvfs.cpp.o.d"
  "/root/repo/src/thermal/fan.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/fan.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/fan.cpp.o.d"
  "/root/repo/src/thermal/power.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/power.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/power.cpp.o.d"
  "/root/repo/src/thermal/rc_network.cpp" "src/thermal/CMakeFiles/tempest_thermal.dir/rc_network.cpp.o" "gcc" "src/thermal/CMakeFiles/tempest_thermal.dir/rc_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
