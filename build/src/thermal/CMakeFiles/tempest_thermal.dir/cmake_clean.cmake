file(REMOVE_RECURSE
  "CMakeFiles/tempest_thermal.dir/cpu_package.cpp.o"
  "CMakeFiles/tempest_thermal.dir/cpu_package.cpp.o.d"
  "CMakeFiles/tempest_thermal.dir/die_mesh.cpp.o"
  "CMakeFiles/tempest_thermal.dir/die_mesh.cpp.o.d"
  "CMakeFiles/tempest_thermal.dir/dvfs.cpp.o"
  "CMakeFiles/tempest_thermal.dir/dvfs.cpp.o.d"
  "CMakeFiles/tempest_thermal.dir/fan.cpp.o"
  "CMakeFiles/tempest_thermal.dir/fan.cpp.o.d"
  "CMakeFiles/tempest_thermal.dir/power.cpp.o"
  "CMakeFiles/tempest_thermal.dir/power.cpp.o.d"
  "CMakeFiles/tempest_thermal.dir/rc_network.cpp.o"
  "CMakeFiles/tempest_thermal.dir/rc_network.cpp.o.d"
  "libtempest_thermal.a"
  "libtempest_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
