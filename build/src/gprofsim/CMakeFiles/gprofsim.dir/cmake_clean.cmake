file(REMOVE_RECURSE
  "CMakeFiles/gprofsim.dir/flat_profiler.cpp.o"
  "CMakeFiles/gprofsim.dir/flat_profiler.cpp.o.d"
  "libgprofsim.a"
  "libgprofsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gprofsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
