# Empty compiler generated dependencies file for gprofsim.
# This may be replaced when dependencies are built.
