file(REMOVE_RECURSE
  "libgprofsim.a"
)
