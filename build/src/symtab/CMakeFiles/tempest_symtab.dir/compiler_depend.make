# Empty compiler generated dependencies file for tempest_symtab.
# This may be replaced when dependencies are built.
