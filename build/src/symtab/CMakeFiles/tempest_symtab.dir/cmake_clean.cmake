file(REMOVE_RECURSE
  "CMakeFiles/tempest_symtab.dir/elf.cpp.o"
  "CMakeFiles/tempest_symtab.dir/elf.cpp.o.d"
  "CMakeFiles/tempest_symtab.dir/resolver.cpp.o"
  "CMakeFiles/tempest_symtab.dir/resolver.cpp.o.d"
  "libtempest_symtab.a"
  "libtempest_symtab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempest_symtab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
