file(REMOVE_RECURSE
  "libtempest_symtab.a"
)
