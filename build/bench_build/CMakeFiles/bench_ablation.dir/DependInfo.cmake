
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench_build/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench_build/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tempest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tempest_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/tempest_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempest_perblk.dir/DependInfo.cmake"
  "/root/repo/build/src/micro/CMakeFiles/tempest_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/npb.dir/DependInfo.cmake"
  "/root/repo/build/src/gprofsim/CMakeFiles/gprofsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempest_hooks.dir/DependInfo.cmake"
  "/root/repo/build/src/simnode/CMakeFiles/tempest_simnode.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/tempest_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/tempest_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tempest_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/symtab/CMakeFiles/tempest_symtab.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tempest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
