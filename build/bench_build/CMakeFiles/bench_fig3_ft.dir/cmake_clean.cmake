file(REMOVE_RECURSE
  "../bench/bench_fig3_ft"
  "../bench/bench_fig3_ft.pdb"
  "CMakeFiles/bench_fig3_ft.dir/bench_fig3_ft.cpp.o"
  "CMakeFiles/bench_fig3_ft.dir/bench_fig3_ft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
