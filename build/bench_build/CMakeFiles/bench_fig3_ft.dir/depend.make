# Empty dependencies file for bench_fig3_ft.
# This may be replaced when dependencies are built.
