file(REMOVE_RECURSE
  "../bench/bench_heavyweight"
  "../bench/bench_heavyweight.pdb"
  "CMakeFiles/bench_heavyweight.dir/bench_heavyweight.cpp.o"
  "CMakeFiles/bench_heavyweight.dir/bench_heavyweight.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heavyweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
