file(REMOVE_RECURSE
  "../bench/bench_thermal_opt"
  "../bench/bench_thermal_opt.pdb"
  "CMakeFiles/bench_thermal_opt.dir/bench_thermal_opt.cpp.o"
  "CMakeFiles/bench_thermal_opt.dir/bench_thermal_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thermal_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
