# Empty compiler generated dependencies file for bench_thermal_opt.
# This may be replaced when dependencies are built.
