file(REMOVE_RECURSE
  "../bench/bench_fig2_microD"
  "../bench/bench_fig2_microD.pdb"
  "CMakeFiles/bench_fig2_microD.dir/bench_fig2_microD.cpp.o"
  "CMakeFiles/bench_fig2_microD.dir/bench_fig2_microD.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_microD.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
