# Empty dependencies file for bench_fig2_microD.
# This may be replaced when dependencies are built.
