# Empty dependencies file for bench_sensors.
# This may be replaced when dependencies are built.
