file(REMOVE_RECURSE
  "../bench/bench_sensors"
  "../bench/bench_sensors.pdb"
  "CMakeFiles/bench_sensors.dir/bench_sensors.cpp.o"
  "CMakeFiles/bench_sensors.dir/bench_sensors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
