file(REMOVE_RECURSE
  "../bench/bench_table1_micro"
  "../bench/bench_table1_micro.pdb"
  "CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cpp.o"
  "CMakeFiles/bench_table1_micro.dir/bench_table1_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
