file(REMOVE_RECURSE
  "../bench/bench_table2_ft"
  "../bench/bench_table2_ft.pdb"
  "CMakeFiles/bench_table2_ft.dir/bench_table2_ft.cpp.o"
  "CMakeFiles/bench_table2_ft.dir/bench_table2_ft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
