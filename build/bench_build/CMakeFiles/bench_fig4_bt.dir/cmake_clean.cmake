file(REMOVE_RECURSE
  "../bench/bench_fig4_bt"
  "../bench/bench_fig4_bt.pdb"
  "CMakeFiles/bench_fig4_bt.dir/bench_fig4_bt.cpp.o"
  "CMakeFiles/bench_fig4_bt.dir/bench_fig4_bt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
