file(REMOVE_RECURSE
  "../bench/bench_table3_bt"
  "../bench/bench_table3_bt.pdb"
  "CMakeFiles/bench_table3_bt.dir/bench_table3_bt.cpp.o"
  "CMakeFiles/bench_table3_bt.dir/bench_table3_bt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
