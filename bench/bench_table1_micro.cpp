// Table 1: the five correctness micro-benchmarks (A..E).
//
// Runs each interleaving/recursion variant through the transparent
// instrumentation path and prints the traced function inventory with
// call counts and inclusive times, checking the structural expectations
// the paper's Table 1 encodes (one function, multiple, interleaving,
// recursion with interleaving).
#include "bench_util.hpp"
#include "micro/micro.hpp"

namespace {

using bench_util::shape_check;
using tempest::core::Session;
using tempest::core::Workbench;

struct Variant {
  const char* name;
  void (*fn)(const micro::MicroParams&);
  const char* description;
};

const tempest::parser::FunctionProfile* find(
    const tempest::parser::RunProfile& profile, const std::string& substring) {
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      if (fn.name.find(substring) != std::string::npos) return &fn;
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  bench_util::banner(
      "Table 1 reproduction: micro-benchmarks A-E (tracing correctness)");

  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  node_config.package.time_scale = 25.0;
  tempest::simnode::SimNode node(node_config);
  auto& session = Session::instance();
  session.clear_nodes();
  const auto node_id = session.register_sim_node(&node);
  Workbench bench(&node, node_id);

  const Variant variants[] = {
      {"A", &micro::run_micro_a, "main alone"},
      {"B", &micro::run_micro_b, "one function"},
      {"C", &micro::run_micro_c, "multiple functions"},
      {"D", &micro::run_micro_d, "multiple functions with interleaving"},
      {"E", &micro::run_micro_e, "multiple functions with recursion and interleaving"},
  };

  for (const auto& variant : variants) {
    std::cout << "\n-- micro " << variant.name << ": " << variant.description
              << " --\n";
    bench_util::start_session(/*hz=*/20.0);
    bench.attach();
    variant.fn(micro::MicroParams{&bench, 0.01});
    bench.detach();
    const auto profile = bench_util::stop_and_parse();

    for (const auto& fn : profile.nodes[0].functions) {
      std::printf("  %-60s calls=%-4llu total=%.4fs%s\n", fn.name.c_str(),
                  static_cast<unsigned long long>(fn.calls), fn.total_time_s,
                  fn.significant ? "" : "  [not significant]");
    }

    switch (variant.name[0]) {
      case 'A':
        shape_check("A: no helper functions traced", find(profile, "foo") == nullptr &&
                                                         find(profile, "work_") == nullptr);
        break;
      case 'B':
        shape_check("B: exactly the one worker traced",
                    find(profile, "work_small") != nullptr &&
                        find(profile, "work_medium") == nullptr);
        break;
      case 'C': {
        const auto* s = find(profile, "work_small");
        const auto* m = find(profile, "work_medium");
        shape_check("C: multiple functions traced, medium > small",
                    s != nullptr && m != nullptr &&
                        m->total_time_s > s->total_time_s);
        break;
      }
      case 'D': {
        const auto* f1 = find(profile, "foo1");
        const auto* f2 = find(profile, "foo2");
        shape_check("D: foo1 called once, foo2 twice (nested + direct)",
                    f1 != nullptr && f2 != nullptr && f1->calls == 1 &&
                        f2->calls == 2);
        shape_check("D: foo1 inclusive time dominates",
                    f1 != nullptr && f2 != nullptr &&
                        f1->total_time_s > f2->total_time_s);
        break;
      }
      case 'E': {
        const auto* rec = find(profile, "rec_fn");
        const auto* driver = find(profile, "run_micro_e");
        shape_check("E: recursion counted per call but not double-timed",
                    rec != nullptr && driver != nullptr && rec->calls == 6 &&
                        rec->total_time_s <= driver->total_time_s * 1.001);
        break;
      }
      default:
        break;
    }
  }
  session.clear_nodes();
  return 0;
}
