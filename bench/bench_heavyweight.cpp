// The light / middle / heavy trade-off, quantified (paper §1-§2).
//
// The paper's motivation: heavy-weight thermal simulators (HotSpot,
// Mercury) give per-structure detail but are "orders of magnitude
// slower than runtime sensor data", while light-weight polling gives
// speed without code correlation. This bench measures all three tiers
// on one power trace:
//   light  - read one simulated sensor (what a polling tool sees)
//   middle - Tempest's compact per-core package model (tempd's cost)
//   heavy  - the HotSpot-style die mesh at increasing resolution
// and shows what the heavy tier buys (intra-die hot-spot localisation)
// and what it costs (state and time per integration step).
#include "bench_util.hpp"
#include "common/tsc.hpp"
#include "thermal/cpu_package.hpp"
#include "thermal/die_mesh.hpp"

namespace {

using namespace tempest::thermal;

double time_per_step(const std::function<void()>& step, int reps) {
  const std::uint64_t t0 = tempest::rdtsc();
  for (int i = 0; i < reps; ++i) step();
  return tempest::tsc_to_seconds(tempest::rdtsc() - t0) / reps;
}

}  // namespace

int main() {
  bench_util::banner(
      "Light vs middle vs heavy thermal modelling: cost and detail");

  // Middle: the compact package Tempest's tempd integrates per tick.
  CpuPackage pkg{PackageParams{}};
  pkg.settle_at({0.5, 0.5});
  const double middle_step =
      time_per_step([&] { pkg.advance(0.25, {0.7, 0.3}); }, 2000);

  // Light: a sensor read against the already-integrated state.
  const double light_step = time_per_step([&] {
    volatile double t = pkg.die_temp(0);
    (void)t;
  }, 200000);

  std::printf("\n%-26s %12s %10s %s\n", "tier", "step cost", "state", "detail");
  std::printf("%-26s %9.0f ns %10s %s\n", "light (sensor poll)", light_step * 1e9,
              "1", "one number, no code correlation");
  std::printf("%-26s %9.0f ns %10zu %s\n", "middle (Tempest compact)",
              middle_step * 1e9, pkg.network().node_count(),
              "per-core die + package, runs with the app");

  double heavy8_step = 0.0;
  double detail_range = 0.0;
  for (int res : {8, 16, 32}) {
    DieMeshParams mp;
    mp.width = mp.height = res;
    mp.floorplan = default_floorplan(res, res);
    DieMesh mesh(mp);
    mesh.set_unit_power("core0.FPU", 10.0);
    mesh.set_unit_power("core0.ALU", 4.0);
    mesh.set_unit_power("L2", 2.0);
    mesh.settle();
    const double step =
        time_per_step([&] { mesh.advance(0.25); }, res >= 32 ? 20 : 200);
    std::printf("%-26s %9.0f ns %10zu hot spot at (%d,%d), die spread %.1f C\n",
                ("heavy (mesh " + std::to_string(res) + "x" + std::to_string(res) + ")").c_str(),
                step * 1e9, mesh.state_size(), mesh.hottest_xy().first,
                mesh.hottest_xy().second, mesh.hottest_cell() - mesh.coolest_cell());
    if (res == 8) {
      heavy8_step = step;
      detail_range = mesh.hottest_cell() - mesh.coolest_cell();
    }
  }

  std::printf("\n");
  bench_util::shape_check(
      "middle-weight step is orders of magnitude cheaper than a full run "
      "of the heavy model (paper's speed argument)",
      middle_step < heavy8_step);
  bench_util::shape_check(
      "heavy model resolves intra-die detail the compact model cannot "
      "(several degrees across one die)",
      detail_range > 2.0);
  bench_util::shape_check(
      "light polling is cheapest of all (paper's light-weight tier)",
      light_step < middle_step);
  std::printf(
      "\nTempest's positioning reproduced: the compact model is cheap enough\n"
      "to integrate inside tempd at 4 Hz alongside the application, while\n"
      "per-structure detail requires mesh state that grows quadratically\n"
      "and belongs offline — \"detail at the expense of speed\".\n");
  return 0;
}
