// Collector daemon ingest throughput and memory bound.
//
//   bench_collectd [--sessions N] [--pairs P] [--reps R] [--out PATH]
//                  [--allow-debug]
//
// Spins up an in-process Collector on a Unix-domain socket, then
// streams N concurrent synthetic sessions (default 48, the fleet gate
// is >= 32) of 2*P function events each through CollectClient — the
// exact recording-side stop() sequence: HELLO, HEARTBEAT, META, EVENTS,
// SAMPLES, BYE. Reports the aggregate fold rate (events/s from first
// send to the last session folded, best of R reps) and gates peak RSS:
// the collector folds incrementally through AnalysisPipeline, so
// process memory growth must stay well below the total bytes streamed
// (no full-trace buffering). Results land in BENCH_collectd.json;
// SHAPE CHECK lines and the exit code assert the claims.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_provenance.hpp"
#include "collectd/client.hpp"
#include "collectd/collector.hpp"
#include "common/cli.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using namespace tempest;
namespace collectd = tempest::collectd;

void shape_check(const std::string& claim, bool ok) {
  std::cout << "SHAPE CHECK [" << (ok ? "ok" : "MISMATCH") << "] " << claim
            << "\n";
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One synthetic sealed session, shared read-only by every sender so
/// the bench's own buffers stay ~one session, not N — the RSS gate
/// then measures collector-side state, not the load generator.
trace::Trace session_trace(std::size_t pairs) {
  trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "fleet_bench";
  t.nodes = {{0, "bench_host"}};
  t.sensors = {{0, 0, "cpu", 0.0}};
  t.threads = {{0, 0, 0}};
  const std::uint64_t kA = trace::kSyntheticAddrBase + 1;
  const std::uint64_t kB = trace::kSyntheticAddrBase + 2;
  t.synthetic_symbols = {{kA, "bench_hot"}, {kB, "bench_warm"}};
  t.fn_events.reserve(pairs * 2);
  for (std::size_t p = 0; p < pairs; ++p) {
    const std::uint64_t at = 1000 + p * 1000;
    const std::uint64_t fn = (p % 2 == 0) ? kA : kB;
    t.fn_events.push_back({at, fn, 0, 0, trace::FnEventKind::kEnter});
    t.fn_events.push_back({at + 400, fn, 0, 0, trace::FnEventKind::kExit});
  }
  for (std::size_t s = 0; s < pairs / 16 + 1; ++s) {
    t.temp_samples.push_back({1000 + s * 16000, 42.0 + s * 0.01, 0, 0});
  }
  t.run_stats.present = true;
  t.run_stats.events_recorded = t.fn_events.size();
  t.run_stats.calls_observed = t.fn_events.size();
  t.run_stats.tempd_samples = t.temp_samples.size();
  t.run_stats.threads_registered = 1;
  t.run_stats.wall_seconds = 0.5;
  return t;
}

/// Streams the shared trace as one session; returns false if any send
/// failed (a dead client would silently undercount the fold).
bool stream_one(const std::string& uds, const trace::Trace& t,
                std::uint64_t pid) {
  collectd::CollectClient client;
  if (!client.connect("uds:" + uds, 10.0).is_ok()) return false;
  client.send_hello(pid, t.executable);
  client.send_heartbeat(
      "{\"t\":0.1,\"schema_version\":1,\"seq\":1,\"events_recorded\":1}");
  client.send_meta(t);
  client.send_fn_events(t.fn_events.data(), t.fn_events.size());
  client.send_temp_samples(t.temp_samples.data(), t.temp_samples.size());
  client.send_bye(t.fn_events.size(), t.temp_samples.size());
  const bool ok = client.alive();
  client.close();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 48;
  std::size_t pairs = 200'000;
  int reps = 3;
  std::string out_path = "BENCH_collectd.json";
  bool allow_debug = false;

  cli::ArgParser args(
      "[--sessions N] [--pairs P] [--reps R] [--out PATH] [--allow-debug]");
  args.add_value("--sessions", [&](const std::string& v) {
    return cli::parse_size(v, &sessions);
  });
  args.add_value("--pairs", [&](const std::string& v) {
    return cli::parse_size(v, &pairs);
  });
  args.add_value("--reps", [&](const std::string& v) {
    std::size_t r = 0;
    auto st = cli::parse_size(v, &r);
    if (st.is_ok()) reps = static_cast<int>(r == 0 ? 1 : r);
    return st;
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return Status::ok();
  });
  args.add_flag("--allow-debug", [&] { allow_debug = true; });
  const auto parsed = args.parse(argc, argv);
  if (!parsed.is_ok() || args.help_requested()) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (!bench_prov::check_build("bench_collectd", allow_debug)) return 2;

  // The hammer would log one warn per backpressure pause; not news here.
  telemetry::Logger::instance().set_threshold(telemetry::LogLevel::kError);

  const trace::Trace t = session_trace(pairs);
  const std::uint64_t events_per_session = t.fn_events.size();
  const std::uint64_t total_events =
      events_per_session * static_cast<std::uint64_t>(sessions);

  telemetry::metrics().reset();
  const std::int64_t rss_before_kb = telemetry::read_peak_rss_kb();

  double best_wall = 1e300;
  std::uint64_t folded = 0, aborted = 0, send_failures = 0;
  for (int r = 0; r < reps; ++r) {
    collectd::CollectorOptions options;
    options.ingest_uds =
        "/tmp/tempest_bench_" + std::to_string(::getpid()) + ".sock";
    collectd::Collector collector(options);
    const Status started = collector.start();
    if (!started.is_ok()) {
      std::cerr << "error: " << started.message() << "\n";
      return 2;
    }

    const double t0 = now_s();
    std::vector<std::thread> senders;
    std::atomic<std::uint64_t> failed{0};
    senders.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      senders.emplace_back([&, i] {
        if (!stream_one(options.ingest_uds, t, 1000 + i)) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& s : senders) s.join();
    // Fold completion, not just send completion: the shards may still
    // be draining queued frames after the last sender exits.
    const double deadline = now_s() + 120.0;
    while (now_s() < deadline) {
      const auto fleet = collector.fleet();
      if (fleet.sessions_folded + fleet.sessions_aborted >= sessions) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const double wall = now_s() - t0;
    const auto fleet = collector.fleet();
    folded = fleet.sessions_folded;
    aborted = fleet.sessions_aborted;
    send_failures += failed.load(std::memory_order_relaxed);
    collector.stop();
    if (folded == sessions) best_wall = std::min(best_wall, wall);
  }

  const std::int64_t rss_after_kb = telemetry::read_peak_rss_kb();
  const std::int64_t rss_delta_kb = rss_after_kb - rss_before_kb;
  const std::uint64_t stream_bytes = telemetry::metrics().snapshot().counter(
      telemetry::Counter::kStreamBytesSent);
  const double events_per_s =
      best_wall < 1e300 ? static_cast<double>(total_events) / best_wall : 0.0;

  std::printf("sessions             %zu concurrent\n", sessions);
  std::printf("events/session       %llu\n",
              static_cast<unsigned long long>(events_per_session));
  std::printf("folded / aborted     %llu / %llu (last rep)\n",
              static_cast<unsigned long long>(folded),
              static_cast<unsigned long long>(aborted));
  std::printf("best wall            %8.3f s\n",
              best_wall < 1e300 ? best_wall : -1.0);
  std::printf("aggregate ingest     %8.2f Mevents/s\n", events_per_s / 1e6);
  std::printf("bytes streamed       %8.1f MiB (all reps)\n",
              static_cast<double>(stream_bytes) / (1 << 20));
  std::printf("peak RSS growth      %8.1f MiB\n",
              static_cast<double>(rss_delta_kb) / 1024.0);

  // The memory claim: the collector never buffers raw traces. Live
  // per-session state is the analysis fold itself — timeline intervals
  // are O(calls), inherent to sample attribution, and this synthetic
  // workload is its worst case (alternating functions, nothing
  // coalesces) — plus bounded shard queues and parse buffers. So peak
  // RSS growth must stay under HALF the bytes streamed across all reps
  // (with a fixed 256 MiB floor for small runs): cumulative buffering
  // across reps, or raw-trace buffering within one, lands well above.
  const double rss_budget_bytes =
      std::max(256.0 * (1 << 20), 0.5 * static_cast<double>(stream_bytes));
  const bool fleet_ok = sessions >= 32 && folded == sessions &&
                        send_failures == 0;
  const bool rss_ok =
      static_cast<double>(rss_delta_kb) * 1024.0 < rss_budget_bytes;
  shape_check("collector folds >= 32 concurrent sessions without loss",
              fleet_ok);
  shape_check("peak RSS growth stays under half the streamed volume",
              rss_ok);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"build_type\": \"" << bench_prov::kBuildType << "\",\n"
      << "  \"sessions\": " << sessions << ",\n"
      << "  \"event_pairs\": " << pairs << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"events_per_session\": " << events_per_session << ",\n"
      << "  \"total_events\": " << total_events << ",\n"
      << "  \"sessions_folded\": " << folded << ",\n"
      << "  \"sessions_aborted\": " << aborted << ",\n"
      << "  \"best_wall_s\": " << (best_wall < 1e300 ? best_wall : -1.0)
      << ",\n"
      << "  \"aggregate_events_per_s\": " << events_per_s << ",\n"
      << "  \"stream_bytes_all_reps\": " << stream_bytes << ",\n"
      << "  \"peak_rss_before_kb\": " << rss_before_kb << ",\n"
      << "  \"peak_rss_after_kb\": " << rss_after_kb << ",\n"
      << "  \"peak_rss_delta_kb\": " << rss_delta_kb << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return (fleet_ok && rss_ok) ? 0 : 1;
}
