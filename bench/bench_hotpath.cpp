// Hot-path microbenchmarks (google-benchmark).
//
// The instrumentation cost budget behind the paper's <7% overhead
// claim: one rdtsc read, one TLS lookup, one 32-byte append per event.
// These quantify each stage plus the end-to-end enter/exit pair, the
// explicit-region path, and the thermal model's advance step (tempd's
// per-tick cost).
#include <benchmark/benchmark.h>

#include "common/stats.hpp"
#include "common/tsc.hpp"
#include "core/api.hpp"
#include "core/session.hpp"
#include "core/thread_buffer.hpp"
#include "simnode/cluster.hpp"
#include "thermal/cpu_package.hpp"

namespace {

void BM_Rdtsc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tempest::rdtsc());
  }
}
BENCHMARK(BM_Rdtsc);

void BM_EventBufferPush(benchmark::State& state) {
  tempest::core::EventBuffer buffer;
  tempest::trace::FnEvent event{123456, 0xdead, 0, 0, tempest::trace::FnEventKind::kEnter};
  for (auto _ : state) {
    buffer.push(event);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventBufferPush);

void BM_RecordEnterExit_Inactive(benchmark::State& state) {
  // The cost a linked-but-idle Tempest adds to an instrumented binary.
  auto& session = tempest::core::Session::instance();
  for (auto _ : state) {
    session.record_enter(0x1234);
    session.record_exit(0x1234);
  }
}
BENCHMARK(BM_RecordEnterExit_Inactive);

void BM_RecordEnterExit_Active(benchmark::State& state) {
  auto& session = tempest::core::Session::instance();
  auto config = tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(config);
  session.clear_nodes();
  session.register_sim_node(&node);
  tempest::core::SessionConfig sc;
  sc.sample_hz = 4.0;
  sc.bind_affinity = false;
  (void)session.start(sc);
  for (auto _ : state) {
    session.record_enter(0x1234);
    session.record_exit(0x1234);
  }
  (void)session.stop();
  session.clear_nodes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_RecordEnterExit_Active);

void BM_ScopedRegion_Active(benchmark::State& state) {
  auto& session = tempest::core::Session::instance();
  auto config = tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(config);
  session.clear_nodes();
  session.register_sim_node(&node);
  tempest::core::SessionConfig sc;
  sc.sample_hz = 4.0;
  sc.bind_affinity = false;
  (void)session.start(sc);
  for (auto _ : state) {
    TEMPEST_SCOPE("hotpath_region");
    benchmark::ClobberMemory();
  }
  (void)session.stop();
  session.clear_nodes();
}
BENCHMARK(BM_ScopedRegion_Active);

void BM_ThermalAdvance(benchmark::State& state) {
  // One tempd tick's worth of model integration (250 ms of thermal time).
  tempest::thermal::CpuPackage pkg{tempest::thermal::PackageParams{}};
  pkg.settle_at({0.5, 0.5});
  const std::vector<double> utilization{0.7, 0.3};
  for (auto _ : state) {
    pkg.advance(0.25, utilization);
  }
}
BENCHMARK(BM_ThermalAdvance);

void BM_SampleSetSummarize(benchmark::State& state) {
  // Parser-side cost: full 7-statistic summary of a 4 Hz x 60 s series.
  tempest::SampleSet set;
  for (int i = 0; i < 240; ++i) set.add(100.0 + (i % 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.summarize());
  }
}
BENCHMARK(BM_SampleSetSummarize);

}  // namespace

BENCHMARK_MAIN();
