// Ablations of Tempest's design decisions (DESIGN.md §4).
//
//  1. §3.3 short-lived functions: per-cell kernel instrumentation cost
//     on BT ("Tempest also will incur additional overhead when
//     profiling applications which invoke functions with very short
//     life spans repeatedly").
//  2. Sampling rate: overhead and profile fidelity at 1..64 Hz — why
//     4 Hz is the paper's operating point.
//  3. Buckets vs timeline: the gprof design cannot distinguish an
//     early-hot from a late-hot function; Tempest's timeline can —
//     the reason the authors abandoned the gprof approach.
//  4. §3.3 clock skew: parsing a skewed multi-node trace with clock
//     alignment disabled corrupts cross-node correlation; the
//     ClockSync fit repairs it.
//  5. §4.1 methodology: auto fan regulation is a thermal feedback that
//     suppresses the very excursions Tempest profiles — why the paper
//     pins the fan at a constant high speed.
#include "bench_util.hpp"
#include "gprofsim/flat_profiler.hpp"
#include "micro/micro.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "trace/align.hpp"

namespace {

volatile std::uint64_t g_sink = 0;

double time_bt(bool kernel_events) {
  const std::uint64_t t0 = tempest::rdtsc();
  minimpi::run(2, [&](minimpi::Comm& comm) {
    (void)npb::bt_run(comm, npb::BtConfig{16, 16, 16, 8, 0.01, kernel_events});
  });
  return tempest::tsc_to_seconds(tempest::rdtsc() - t0);
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

int main() {
  bench_util::banner(
      "Ablations: short functions, sampling rate, buckets, clock skew, fan");

  auto& session = tempest::core::Session::instance();
  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  node_config.package.time_scale = 30.0;  // visible dynamics in short runs
  tempest::simnode::SimNode node(node_config);
  session.clear_nodes();
  session.register_sim_node(&node);

  // ---- 1. short-lived function overhead (the paper's §3.3 caveat) -----
  std::cout << "\n[1] per-cell kernel instrumentation on BT (active session):\n";
  tempest::core::SessionConfig sc;
  sc.sample_hz = 4.0;
  sc.bind_affinity = false;
  (void)session.start(sc);
  const double coarse = median3(time_bt(false), time_bt(false), time_bt(false));
  const double fine = median3(time_bt(true), time_bt(true), time_bt(true));
  (void)session.stop();
  std::printf("  function-level events: %.4f s\n  per-cell kernel events: %.4f s\n"
              "  short-function overhead: +%.0f%%\n",
              coarse, fine, 100.0 * (fine - coarse) / coarse);
  bench_util::shape_check(
      "short-lived functions invoked repeatedly cost measurable extra overhead",
      fine > coarse * 1.02);

  // Also the raw micro-F stressor: a ~2 ns function, instrumented.
  {
    const std::uint64_t calls = 2'000'000;
    micro::MicroParams params{nullptr, 1.0};
    const std::uint64_t t0 = tempest::rdtsc();
    g_sink = micro::run_micro_f(params, calls);
    const double base_s = tempest::tsc_to_seconds(tempest::rdtsc() - t0);
    (void)session.start(sc);
    const std::uint64_t t1 = tempest::rdtsc();
    g_sink = micro::run_micro_f(params, calls);
    const double traced_s = tempest::tsc_to_seconds(tempest::rdtsc() - t1);
    (void)session.stop();
    std::printf("  micro-F (2M calls of a ~2 ns function): %.4f s -> %.4f s (%.0fx)\n",
                base_s, traced_s, traced_s / base_s);
    bench_util::shape_check("the degenerate case is much worse (needs the planned fix)",
                            traced_s > 2.0 * base_s);
  }

  // ---- 2. sampling-rate fidelity sweep --------------------------------
  std::cout << "\n[2] sampling rate vs thermal-profile fidelity (micro D):\n";
  tempest::core::Workbench bench(&node, 0);
  std::printf("  %6s %9s %14s %12s\n", "Hz", "samples", "foo1 samples", "significant");
  bool four_hz_ok = false, one_hz_starved = false;
  for (double hz : {1.0, 4.0, 16.0, 64.0}) {
    tempest::core::SessionConfig rc;
    rc.sample_hz = hz;
    rc.bind_affinity = false;
    (void)session.start(rc);
    bench.attach();
    micro::run_micro_d(micro::MicroParams{&bench, 0.03});  // ~1.9 s run
    bench.detach();
    (void)session.stop();
    auto parsed = tempest::parser::parse_trace(session.take_trace());
    if (!parsed.is_ok()) continue;
    const tempest::parser::FunctionProfile* foo1 = nullptr;
    for (const auto& fn : parsed.value().nodes[0].functions) {
      if (fn.name.find("foo1") != std::string::npos) foo1 = &fn;
    }
    const std::size_t samples = foo1 && !foo1->sensors.empty()
                                    ? foo1->sensors.front().sample_count
                                    : 0;
    std::printf("  %6.0f %9llu %14zu %12s\n", hz,
                static_cast<unsigned long long>(session.tempd_stats().samples),
                samples, (foo1 && foo1->significant) ? "yes" : "no");
    if (hz == 4.0 && foo1 != nullptr) four_hz_ok = foo1->significant;
    if (hz == 1.0 && foo1 != nullptr) one_hz_starved = samples < 4;
  }
  bench_util::shape_check("4 Hz yields significant stats on second-scale functions",
                          four_hz_ok);
  bench_util::shape_check("1 Hz starves the same function of samples", one_hz_starved);

  // ---- 3. buckets vs timeline ------------------------------------------
  std::cout << "\n[3] bucket design cannot place a function in time:\n";
  // Two equal-length phases: early_phase while the die is cool, then a
  // long burn, then late_phase while it is hot. Their bucket totals are
  // identical; only the timeline separates their thermal profiles.
  (void)session.start(sc);
  bench.attach();
  {
    tempest::ScopedRegion region("early_phase");
    bench.burn(0.4);
  }
  {
    tempest::ScopedRegion region("heat_up");
    bench.burn(2.0);
  }
  {
    tempest::ScopedRegion region("late_phase");
    bench.burn(0.4);
  }
  bench.detach();
  (void)session.stop();
  auto parsed = tempest::parser::parse_trace(session.take_trace());
  if (parsed.is_ok()) {
    const auto* early = parsed.value().find(0, "early_phase");
    const auto* late = parsed.value().find(0, "late_phase");
    if (early != nullptr && late != nullptr && !early->sensors.empty() &&
        !late->sensors.empty()) {
      std::printf("  early_phase: %.3f s at avg %.1f F\n", early->total_time_s,
                  early->sensors.front().stats.avg);
      std::printf("  late_phase:  %.3f s at avg %.1f F\n", late->total_time_s,
                  late->sensors.front().stats.avg);
      bench_util::shape_check(
          "equal bucket totals (within 20%), as gprof would report",
          std::abs(early->total_time_s - late->total_time_s) <
              0.2 * early->total_time_s);
      bench_util::shape_check(
          "timeline separates them thermally: late runs much hotter",
          late->sensors.front().stats.avg > early->sensors.front().stats.avg + 4.0);
    }
  }

  // ---- 4. clock-skew alignment ------------------------------------------
  std::cout << "\n[4] cross-node clock skew: aligned vs raw parse:\n";
  {
    auto cc = bench_util::paper_cluster(4, 25.0);
    cc.max_tsc_offset_s = 0.5;  // gross skew: half a second between nodes
    cc.max_tsc_drift_ppm = 200.0;
    tempest::simnode::Cluster cluster(cc);
    bench_util::register_cluster(cluster);
    bench_util::start_session(16.0);
    minimpi::RunOptions options;
    options.cluster = &cluster;
    minimpi::run(4, [&](minimpi::Comm& comm) {
      for (int i = 0; i < 3; ++i) {
        tempest::ScopedRegion region("sync_region");
        tempest::core::Workbench wb(options.cluster ? &options.cluster->node(
                                                          static_cast<std::size_t>(
                                                              comm.rank()))
                                                    : nullptr,
                                    static_cast<std::uint16_t>(comm.rank()));
        wb.burn(0.05);
        comm.barrier();
      }
    }, options);
    (void)session.stop();
    tempest::trace::Trace raw = session.take_trace();
    tempest::trace::Trace skewed = raw;

    tempest::parser::ParseOptions no_align;
    no_align.align_clocks = false;
    auto parsed_raw = tempest::parser::parse_trace(std::move(skewed), no_align);
    auto parsed_aligned = tempest::parser::parse_trace(std::move(raw));

    // With alignment, the barrier-synchronised regions start within a
    // few ms of each other across nodes; without it the apparent spread
    // is the injected offset (hundreds of ms).
    auto span_spread = [](const tempest::parser::RunProfile& p) {
      (void)p;
      return 0.0;  // spans come from the series extractor below
    };
    (void)span_spread;
    const double raw_duration = parsed_raw.is_ok() ? parsed_raw.value().duration_s : 0;
    const double aligned_duration =
        parsed_aligned.is_ok() ? parsed_aligned.value().duration_s : 0;
    std::printf("  apparent run duration: raw %.3f s vs aligned %.3f s\n",
                raw_duration, aligned_duration);
    bench_util::shape_check(
        "raw (unaligned) trace inflates the apparent duration by the skew",
        raw_duration > aligned_duration + 0.2);
  }

  // ---- 5. the paper's methodology: why the fan is pinned ---------------
  // §4.1: "we disabled DVFS and auto fan speed regulation to circumvent
  // all thermal feedback effects". With the feedback on, the fan spins
  // up exactly when the workload heats the die, compressing the thermal
  // signal Tempest is trying to observe.
  std::cout << "\n[5] auto fan regulation vs pinned fan (same burn):\n";
  {
    auto pinned_config =
        tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
    pinned_config.package.time_scale = 40.0;
    auto auto_config = pinned_config;
    // Aggressive regulation: responds from just below the idle sink
    // temperature with a strong gain, like a BIOS 'quiet until hot,
    // then full blast' curve.
    auto_config.package.fan.auto_target_c = 30.0;
    auto_config.package.fan.auto_gain_rpm_per_k = 1500.0;
    // The regulator only adds airflow above the pinned baseline; BIOS
    // curves that also slow the fan at idle would *amplify* the swing.
    auto_config.package.fan.min_rpm = 3000.0;

    tempest::simnode::SimNode pinned(pinned_config);
    tempest::simnode::SimNode regulated(auto_config);
    regulated.package().fan().set_auto(true);

    auto peak_of = [&](tempest::simnode::SimNode& node) {
      session.clear_nodes();
      const auto id = session.register_sim_node(&node);
      bench_util::start_session(16.0);
      tempest::core::Workbench wb(&node, id);
      wb.attach();
      {
        tempest::ScopedRegion region("fan_ablation_burn");
        wb.burn(3.0);  // long enough for the regulator to fully engage
      }
      wb.detach();
      (void)session.stop();
      auto run = tempest::parser::parse_trace(session.take_trace());
      double hi = -1e300;
      if (run.is_ok()) {
        for (const auto& n : run.value().nodes) {
          for (const auto& fn : n.functions) {
            for (const auto& sp : fn.sensors) {
              if (sp.sensor_id != 0) continue;  // CPU diode
              hi = std::max(hi, sp.stats.max);
            }
          }
        }
      }
      return hi;
    };

    const double pinned_peak = peak_of(pinned);
    const double regulated_peak = peak_of(regulated);
    std::printf("  pinned fan:    CPU peak %.1f F over the run\n", pinned_peak);
    std::printf("  auto fan:      CPU peak %.1f F (feedback caps the excursion), "
                "fan at %.0f rpm\n",
                regulated_peak, regulated.package().fan().rpm());
    bench_util::shape_check(
        "auto fan regulation suppresses the thermal excursion Tempest wants "
        "to observe (the reason the paper pins the fan)",
        regulated_peak < pinned_peak - 1.0);
    bench_util::shape_check("the regulated node's fan actually spun up",
                            regulated.package().fan().rpm() >
                                pinned.package().fan().rpm() + 200.0);
  }

  session.clear_nodes();
  return 0;
}
