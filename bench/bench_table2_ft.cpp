// Table 2: partial Tempest functional profile of the FT benchmark,
// NP=4, printed for one node in the paper's standard-output format:
// per function, per sensor, Min/Avg/Max/Sdv/Var/Med/Mod in Fahrenheit
// with the function's total inclusive time.
#include "bench_util.hpp"
#include "minimpi/runtime.hpp"
#include "npb/ft.hpp"

int main() {
  bench_util::banner(
      "Table 2 reproduction: partial FT functional profile (NP=4, one node)");

  auto cc = bench_util::paper_cluster(4, /*time_scale=*/30.0);
  tempest::simnode::Cluster cluster(cc);
  bench_util::register_cluster(cluster);
  bench_util::start_session(/*hz=*/4.0);

  npb::FtConfig config{64, 64, 64, 140};
  npb::FtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  minimpi::run(4, [&](minimpi::Comm& comm) { result = npb::ft_run(comm, config); },
               options);

  const auto profile = bench_util::stop_and_parse();

  // The paper prints a subset of functions for one node.
  const auto& node = profile.nodes.front();
  std::cout << "Node " << node.node_id + 1 << " (" << node.hostname << "), run "
            << node.duration_s << " s\n\n";
  std::size_t printed = 0;
  for (const auto& fn : node.functions) {
    if (fn.name == "ft_run") continue;  // the paper lists the phase functions
    tempest::report::print_function(std::cout, fn, profile.unit);
    std::cout << "\n";
    if (++printed == 6) break;
  }

  // Shape checks: the Table 2 signatures.
  const auto* transpose = profile.find(node.node_id, "transpose");
  const auto* evolve = profile.find(node.node_id, "evolve");
  const auto* cffts1 = profile.find(node.node_id, "cffts1");
  bench_util::shape_check("transpose / evolve / cffts* all present with thermal stats",
                          transpose != nullptr && evolve != nullptr &&
                              cffts1 != nullptr && !transpose->sensors.empty());

  // Quantised sensors yield flat rows (Sdv = Var = 0) on the board
  // sensors, exactly like sensor1/sensor3/sensor6 in the paper's table.
  bool any_flat = false, any_varying = false;
  for (const auto& fn : node.functions) {
    for (const auto& sp : fn.sensors) {
      if (sp.sample_count < 4) continue;
      if (sp.stats.sdv == 0.0 && sp.stats.min == sp.stats.max) any_flat = true;
      if (sp.stats.sdv > 0.0) any_varying = true;
    }
  }
  bench_util::shape_check("some sensors flat (Sdv=Var=0), some varying", any_flat && any_varying);

  // Every reported temperature sits on the 1 C quantisation ladder: in
  // Fahrenheit, min/max values are multiples of 1.8 offset by 32.
  bool on_ladder = true;
  for (const auto& fn : node.functions) {
    for (const auto& sp : fn.sensors) {
      const double celsius = (sp.stats.min - 32.0) / 1.8;
      on_ladder &= std::abs(celsius - std::round(celsius)) < 1e-6;
    }
  }
  bench_util::shape_check("temperatures land on the 1.8 F (1 C) ladder of Tables 2/3",
                          on_ladder);

  bench_util::shape_check("six sensors per Opteron node, as printed in the paper",
                          !node.functions.empty() &&
                              node.functions.front().sensors.size() == 6);

  tempest::core::Session::instance().clear_nodes();
  return 0;
}
