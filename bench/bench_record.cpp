// Admission hot-path cost: rejecting a call must be much cheaper than
// recording it, or filtering would not buy the overhead back.
//
//   bench_record [--calls N] [--reps R] [--out PATH] [--allow-debug]
//
// Measures (best of R reps, single thread, flight-recorder ring so
// memory stays flat):
//   * the accepted path — enter/exit through filter probe + timestamp +
//     buffer push,
//   * the rejected path — the same pair landing in the suppression set,
//   * the null-plan baseline — no filter or throttle configured (what
//     every pre-admission caller pays),
//   * the inactive path — hooks with no session running.
//
// The regression gate is the tentpole's contract: a rejected call costs
// <= 25% of an accepted one. tempest-audit's --filter-out suggestions
// assume suppression is nearly free; this is where that assumption is
// continuously measured (BENCH_record.json, SHAPE CHECK + exit code).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_provenance.hpp"
#include "common/cli.hpp"
#include "common/filter_file.hpp"
#include "core/session.hpp"
#include "simnode/cluster.hpp"
#include "telemetry/log.hpp"

namespace {

using tempest::core::Session;
using tempest::core::SessionConfig;

void shape_check(const std::string& claim, bool ok) {
  std::cout << "SHAPE CHECK [" << (ok ? "ok" : "MISMATCH") << "] " << claim
            << "\n";
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per hook call (not per pair), best of `reps` runs of `calls`
/// enter/exit pairs against `addr`.
double pair_ns_per_call(Session& session, std::uint64_t addr,
                        std::size_t calls, int reps) {
  const std::size_t pairs = calls / 2;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < pairs; ++i) {
      session.record_enter(addr);
      session.record_exit(addr);
    }
    const double dt = now_s() - t0;
    best = std::min(best, dt * 1e9 / static_cast<double>(pairs * 2));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t calls = 20'000'000;
  int reps = 5;
  bool allow_debug = false;
  std::string out_path = "BENCH_record.json";

  tempest::cli::ArgParser args(
      "[--calls N] [--reps R] [--out PATH] [--allow-debug]");
  args.add_value("--calls", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &calls);
  });
  args.add_value("--reps", [&](const std::string& v) {
    std::size_t r = 0;
    auto st = tempest::cli::parse_size(v, &r);
    if (st.is_ok()) reps = static_cast<int>(r == 0 ? 1 : r);
    return st;
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return tempest::Status::ok();
  });
  args.add_flag("--allow-debug", [&] { allow_debug = true; });
  const auto parsed = args.parse(argc, argv);
  if (!parsed.is_ok() || args.help_requested()) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (!bench_prov::check_build("bench_record", allow_debug)) return 2;

  // The ring recycles chunks mid-measurement by design; the session
  // logs each posture change once — noise at bench cadence.
  tempest::telemetry::Logger::instance().set_threshold(
      tempest::telemetry::LogLevel::kError);

  auto& session = Session::instance();
  session.clear_nodes();
  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(node_config);
  session.register_sim_node(&node);

  // Inactive baseline needs no session at all.
  const double inactive_ns = pair_ns_per_call(session, 0x1234, calls, reps);

  // Null-plan baseline: active session, no admission configured.
  SessionConfig base;
  base.sample_hz = 4.0;
  base.bind_affinity = false;
  base.auto_report = false;
  base.ring_events = 1;  // flight recorder: memory stays at ~2 chunks
  if (!session.start(base)) {
    std::cerr << "bench_record: session start failed\n";
    return 2;
  }
  const std::uint64_t plain = session.synthetic_addr("bench_record_plain");
  const double baseline_ns = pair_ns_per_call(session, plain, calls, reps);
  (void)session.stop();

  // Admission run: one suppressed region, one admitted.
  const std::string filter_path = out_path + ".filter";
  tempest::common::FilterFile ff;
  ff.rules.push_back({"bench_record_rejected", "bench suppression target"});
  if (!tempest::common::write_filter_file(filter_path, ff).is_ok()) {
    std::cerr << "bench_record: cannot write " << filter_path << "\n";
    return 2;
  }
  SessionConfig admitted = base;
  admitted.filter_path = filter_path;
  if (!session.start(admitted)) {
    std::cerr << "bench_record: filtered session start failed\n";
    return 2;
  }
  const std::uint64_t hot = session.synthetic_addr("bench_record_accepted");
  const std::uint64_t cold = session.synthetic_addr("bench_record_rejected");
  const double accepted_ns = pair_ns_per_call(session, hot, calls, reps);
  const double rejected_ns = pair_ns_per_call(session, cold, calls, reps);
  (void)session.stop();
  session.clear_nodes();
  std::remove(filter_path.c_str());

  const double ratio = accepted_ns > 0.0 ? rejected_ns / accepted_ns : 1e300;
  const double probe_tax_ns = accepted_ns - baseline_ns;

  std::printf("hook pair, inactive   %8.2f ns/call\n", inactive_ns);
  std::printf("hook pair, no plan    %8.2f ns/call\n", baseline_ns);
  std::printf("hook pair, accepted   %8.2f ns/call  (filter probe tax %+.2f ns)\n",
              accepted_ns, probe_tax_ns);
  std::printf("hook pair, rejected   %8.2f ns/call  (%.1f%% of accepted)\n",
              rejected_ns, 100.0 * ratio);

  const bool gate = ratio <= 0.25;
  shape_check("rejected call costs <= 25% of an accepted call", gate);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"build_type\": \"" << bench_prov::kBuildType << "\",\n"
      << "  \"calls\": " << calls << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"inactive_ns_per_call\": " << inactive_ns << ",\n"
      << "  \"baseline_ns_per_call\": " << baseline_ns << ",\n"
      << "  \"accepted_ns_per_call\": " << accepted_ns << ",\n"
      << "  \"rejected_ns_per_call\": " << rejected_ns << ",\n"
      << "  \"rejected_over_accepted\": " << ratio << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return gate ? 0 : 1;
}
