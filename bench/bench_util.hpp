// Shared scaffolding for the per-experiment reproduction benches.
//
// Each bench binary reproduces one table or figure from the paper (see
// DESIGN.md's per-experiment index): it builds a simulated cluster,
// runs the workload under a Tempest session, parses the trace, and
// prints the same rows/series the paper reports, followed by SHAPE
// CHECK lines that assert the qualitative claims (who is hotter, where
// the jump is, what the overhead bound is).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/api.hpp"
#include "core/session.hpp"
#include "core/workbench.hpp"
#include "parser/parse.hpp"
#include "report/ascii_plot.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"
#include "trace/align.hpp"

namespace bench_util {

inline void banner(const std::string& title) {
  std::cout << "\n==========================================================\n"
            << title << "\n"
            << "==========================================================\n";
}

inline void shape_check(const std::string& claim, bool ok) {
  std::cout << "SHAPE CHECK [" << (ok ? "ok" : "MISMATCH") << "] " << claim << "\n";
}

/// Default experiment cluster: the paper's 4-node Opteron machine with
/// realistic node-to-node spread and cross-node TSC skew.
inline tempest::simnode::ClusterConfig paper_cluster(std::size_t nodes = 4,
                                                     double time_scale = 25.0) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = nodes;
  cc.kind = tempest::simnode::NodeKind::kOpteron;
  cc.seed = 42;
  cc.heterogeneity = 1.0;
  cc.time_scale = time_scale;
  cc.max_tsc_offset_s = 0.005;
  cc.max_tsc_drift_ppm = 40.0;
  return cc;
}

/// Register every cluster node with the (cleared) global session.
inline void register_cluster(tempest::simnode::Cluster& cluster) {
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    session.register_sim_node(&cluster.node(n));
  }
}

/// Start a session at the paper's 4 Hz unless the run is short enough
/// to need denser sampling.
inline void start_session(double hz = 4.0) {
  tempest::core::SessionConfig config;
  config.sample_hz = hz;
  config.bind_affinity = false;  // bench containers restrict CPU masks
  auto status = tempest::core::Session::instance().start(config);
  if (!status) {
    std::cerr << "session start failed: " << status.message() << "\n";
    std::exit(1);
  }
}

/// Stop, parse and return the profile (exits on parse failure).
inline tempest::parser::RunProfile stop_and_parse(
    tempest::trace::Trace* raw_trace_out = nullptr) {
  auto& session = tempest::core::Session::instance();
  (void)session.stop();
  tempest::trace::Trace trace = session.take_trace();
  if (raw_trace_out != nullptr) *raw_trace_out = trace;
  auto parsed = tempest::parser::parse_trace(std::move(trace));
  if (!parsed.is_ok()) {
    std::cerr << "parse failed: " << parsed.message() << "\n";
    std::exit(1);
  }
  return std::move(parsed).value();
}

/// Max temperature seen by a node's given sensor across the series.
inline double series_max(const tempest::report::ThermalSeries& series,
                         std::uint16_t node_id, const std::string& sensor) {
  double best = -1e300;
  for (const auto& s : series.sensors) {
    if (s.node_id != node_id || s.sensor_name != sensor) continue;
    for (const auto& p : s.points) best = std::max(best, p.temp);
  }
  return best;
}

}  // namespace bench_util
