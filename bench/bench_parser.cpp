// Analysis fast-path benchmarks (google-benchmark): seed pipeline vs
// the optimised one, stage by stage and end-to-end.
//
// Stages (fast / seed):
//   write    bulk packed v2 sections   / per-field v1 stream calls
//   read     chunked section unpack    / per-field v1 stream calls
//   sort     k-way merge of runs       / global stable_sort
//   timeline flat-hash + worker pool   / std::map pair keys
//   profile  merge-join attribution    / per-function sample scan
//
// End-to-end covers sort -> write -> read -> sort -> timeline -> profile
// on the same synthetic trace (8 threads, 4 nodes, 64 functions,
// samples ~= events/100), at 1e5..1e7 events. The seed implementations
// live in parser/reference.cpp and are never optimised, so the ratio
// reported here is the PR's headline speedup. CI smoke runs only the
// /100000 variants; the committed BENCH_parser.json holds a full run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_provenance.hpp"

#include "parser/profile.hpp"
#include "parser/reference.hpp"
#include "parser/timeline.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using tempest::parser::ProfileBuilder;
using tempest::parser::ProfileOptions;
using tempest::parser::TimelineDiagnostics;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kNodes = 4;
constexpr std::size_t kFuncs = 64;
constexpr std::uint64_t kFuncBase = 0x400000;

/// Deterministic RNG so every benchmark run sees the same trace.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// Build an unsorted trace the way a real run produces one: per-thread
/// time-ordered event runs concatenated into fn_events (with run
/// metadata), plus per-node sample blocks. Cached per size — generation
/// costs more than some of the benchmarks it feeds.
const tempest::trace::Trace& base_trace(std::size_t n_events) {
  static std::map<std::size_t, tempest::trace::Trace> cache;
  const auto it = cache.find(n_events);
  if (it != cache.end()) return it->second;

  tempest::trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "bench_parser_synthetic";
  for (std::size_t n = 0; n < kNodes; ++n) {
    t.nodes.push_back({static_cast<std::uint16_t>(n), "node" + std::to_string(n)});
    for (std::uint16_t s = 0; s < 2; ++s) {
      t.sensors.push_back({static_cast<std::uint16_t>(n), s,
                           "Core " + std::to_string(s), 1.0});
    }
  }
  for (std::size_t th = 0; th < kThreads; ++th) {
    t.threads.push_back({static_cast<std::uint32_t>(th),
                         static_cast<std::uint16_t>(th % kNodes),
                         static_cast<std::uint16_t>(th)});
  }

  Lcg rng{0x7e57ULL + n_events};
  const std::size_t per_thread = n_events / kThreads;
  t.fn_events.reserve(per_thread * kThreads);
  std::uint64_t max_tsc = 0;
  for (std::size_t th = 0; th < kThreads; ++th) {
    const std::size_t begin = t.fn_events.size();
    const auto tid = static_cast<std::uint32_t>(th);
    const auto node = static_cast<std::uint16_t>(th % kNodes);
    std::uint64_t tsc = 1000 + th * 7;
    std::vector<std::uint64_t> stack;
    for (std::size_t i = 0; i < per_thread; ++i) {
      tsc += rng.next() % 50 + 1;
      // Random call-tree walk, depth-capped; leftovers are force-closed
      // by the timeline pass, as in an interrupted real run.
      if (stack.empty() || (stack.size() < 8 && rng.next() % 2 == 0)) {
        const std::uint64_t addr = kFuncBase + (rng.next() % kFuncs) * 0x40;
        stack.push_back(addr);
        t.fn_events.push_back({tsc, addr, tid, node,
                               tempest::trace::FnEventKind::kEnter});
      } else {
        t.fn_events.push_back({tsc, stack.back(), tid, node,
                               tempest::trace::FnEventKind::kExit});
        stack.pop_back();
      }
    }
    max_tsc = std::max(max_tsc, tsc);
    t.fn_event_runs.push_back({begin, t.fn_events.size() - begin});
  }

  const std::size_t n_samples = std::max<std::size_t>(n_events / 100, 16);
  const std::size_t per_node = n_samples / kNodes;
  t.temp_samples.reserve(per_node * kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::uint64_t step = std::max<std::uint64_t>(max_tsc / (per_node + 1), 1);
    for (std::size_t i = 0; i < per_node; ++i) {
      t.temp_samples.push_back({1000 + (i + 1) * step,
                                60.0 + static_cast<double>(rng.next() % 200) / 10.0,
                                static_cast<std::uint16_t>(n),
                                static_cast<std::uint16_t>(rng.next() % 2)});
    }
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint64_t at = (i + 1) * (max_tsc / 9);
      t.clock_syncs.push_back({at, at + n * 3, static_cast<std::uint16_t>(n)});
    }
  }
  return cache.emplace(n_events, std::move(t)).first->second;
}

/// Same trace, already globally sorted (input for write/timeline/profile).
const tempest::trace::Trace& sorted_trace(std::size_t n_events) {
  static std::map<std::size_t, tempest::trace::Trace> cache;
  const auto it = cache.find(n_events);
  if (it != cache.end()) return it->second;
  tempest::trace::Trace t = base_trace(n_events);
  t.sort_by_time();
  return cache.emplace(n_events, std::move(t)).first->second;
}

std::vector<std::pair<std::uint64_t, std::string>> func_names() {
  std::vector<std::pair<std::uint64_t, std::string>> names;
  names.reserve(kFuncs);
  for (std::size_t i = 0; i < kFuncs; ++i) {
    names.emplace_back(kFuncBase + i * 0x40, "fn" + std::to_string(i));
  }
  return names;
}

void set_events_rate(benchmark::State& state) {
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// --- Sort -----------------------------------------------------------------

void BM_Sort_Fast(benchmark::State& state) {
  const auto& base = base_trace(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();  // the fresh unsorted copy is not the sort
    tempest::trace::Trace t = base;
    state.ResumeTiming();
    t.sort_by_time();
    benchmark::DoNotOptimize(t.fn_events.data());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Sort_Fast)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Sort_Seed(benchmark::State& state) {
  const auto& base = base_trace(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    tempest::trace::Trace t = base;
    state.ResumeTiming();
    tempest::parser::reference::sort_by_time_seed(&t);
    benchmark::DoNotOptimize(t.fn_events.data());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Sort_Seed)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Write ----------------------------------------------------------------
// Through real files (the production API): stringstreams would charge
// both sides a buffer-regrowth tax that has nothing to do with the
// serialisation format. The file lives on tmpfs when available so the
// numbers measure the serialisation stack (packing, stream layer,
// syscalls) rather than the host's disk writeback throttling, which
// varies by multiples between runs and drowns the signal at 10^7
// events; both pipelines use the same medium either way.

const char* bench_path() {
  static const char* path = [] {
    const char* shm = "/dev/shm/tempest_bench_parser_trace.bin";
    std::ofstream probe(shm, std::ios::binary | std::ios::trunc);
    if (probe.good()) {
      probe.close();
      std::remove(shm);
      return shm;
    }
    return "/tmp/tempest_bench_parser_trace.bin";
  }();
  return path;
}

void BM_Write_Fast(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tempest::trace::write_trace_file(bench_path(), t).is_ok());
  }
  set_events_rate(state);
  std::remove(bench_path());
}
BENCHMARK(BM_Write_Fast)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Write_Seed(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  for (auto _ : state) {
    std::ofstream out(bench_path(), std::ios::binary | std::ios::trunc);
    benchmark::DoNotOptimize(
        tempest::parser::reference::write_trace_seed(out, t).is_ok());
  }
  set_events_rate(state);
  std::remove(bench_path());
}
BENCHMARK(BM_Write_Seed)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Read -----------------------------------------------------------------

void BM_Read_Fast(benchmark::State& state) {
  (void)tempest::trace::write_trace_file(bench_path(), sorted_trace(state.range(0)))
      .is_ok();
  for (auto _ : state) {
    auto result = tempest::trace::read_trace_file(bench_path());
    benchmark::DoNotOptimize(result.is_ok());
  }
  set_events_rate(state);
  std::remove(bench_path());
}
BENCHMARK(BM_Read_Fast)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Read_Seed(benchmark::State& state) {
  {
    std::ofstream out(bench_path(), std::ios::binary | std::ios::trunc);
    (void)tempest::parser::reference::write_trace_seed(out, sorted_trace(state.range(0)))
        .is_ok();
  }
  for (auto _ : state) {
    std::ifstream in(bench_path(), std::ios::binary);
    auto result = tempest::parser::reference::read_trace_seed(in);
    benchmark::DoNotOptimize(result.is_ok());
  }
  set_events_rate(state);
  std::remove(bench_path());
}
BENCHMARK(BM_Read_Seed)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Timeline -------------------------------------------------------------

void BM_Timeline_Fast(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  for (auto _ : state) {
    TimelineDiagnostics diag;
    auto timeline = tempest::parser::build_timeline(t, &diag);
    benchmark::DoNotOptimize(timeline.size());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Timeline_Fast)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Timeline_Seed(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  for (auto _ : state) {
    TimelineDiagnostics diag;
    auto timeline = tempest::parser::reference::build_timeline_seed(t, &diag);
    benchmark::DoNotOptimize(timeline.size());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Timeline_Seed)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Profile --------------------------------------------------------------

void BM_Profile_Fast(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  TimelineDiagnostics diag;
  const auto timeline = tempest::parser::build_timeline(t, &diag);
  const auto names = func_names();
  const ProfileOptions options;
  for (auto _ : state) {
    auto profile = ProfileBuilder(t, options).build(timeline, names, diag);
    benchmark::DoNotOptimize(profile.nodes.size());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Profile_Fast)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Profile_Seed(benchmark::State& state) {
  const auto& t = sorted_trace(state.range(0));
  TimelineDiagnostics diag;
  const auto timeline = tempest::parser::reference::build_timeline_seed(t, &diag);
  const auto names = func_names();
  const ProfileOptions options;
  for (auto _ : state) {
    auto profile = tempest::parser::reference::build_profile_seed(
        t, timeline, names, diag, options);
    benchmark::DoNotOptimize(profile.nodes.size());
  }
  set_events_rate(state);
}
BENCHMARK(BM_Profile_Seed)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- End to end -----------------------------------------------------------
// Full analysis round trip from a raw (unsorted, per-thread-runs) trace:
// producer sort -> serialise -> deserialise -> parser sort -> timeline
// -> profile. This is the ISSUE's headline number; the 1e7 variants run
// one iteration each to keep the suite's wall time bounded.

template <bool kSeed>
void end_to_end(benchmark::State& state) {
  const auto& base = base_trace(state.range(0));
  const auto names = func_names();
  const ProfileOptions options;
  for (auto _ : state) {
    state.PauseTiming();  // materialising the input is not the pipeline
    tempest::trace::Trace t = base;
    state.ResumeTiming();
    TimelineDiagnostics diag;
    tempest::parser::RunProfile profile;
    if constexpr (kSeed) {
      tempest::parser::reference::sort_by_time_seed(&t);
      {
        std::ofstream out(bench_path(), std::ios::binary | std::ios::trunc);
        (void)tempest::parser::reference::write_trace_seed(out, t).is_ok();
      }
      std::ifstream in(bench_path(), std::ios::binary);
      auto rt = tempest::parser::reference::read_trace_seed(in);
      tempest::trace::Trace loaded = std::move(rt).value();
      tempest::parser::reference::sort_by_time_seed(&loaded);
      const auto timeline =
          tempest::parser::reference::build_timeline_seed(loaded, &diag);
      profile = tempest::parser::reference::build_profile_seed(
          loaded, timeline, names, diag, options);
    } else {
      t.sort_by_time();
      (void)tempest::trace::write_trace_file(bench_path(), t).is_ok();
      auto rt = tempest::trace::read_trace_file(bench_path());
      tempest::trace::Trace loaded = std::move(rt).value();
      loaded.sort_by_time();
      const auto timeline = tempest::parser::build_timeline(loaded, &diag);
      profile = ProfileBuilder(loaded, options).build(timeline, names, diag);
    }
    benchmark::DoNotOptimize(profile.nodes.size());
  }
  set_events_rate(state);
  std::remove(bench_path());
}

void BM_EndToEnd_Fast(benchmark::State& state) { end_to_end<false>(state); }
BENCHMARK(BM_EndToEnd_Fast)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_Fast)
    ->Arg(10000000)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEnd_Seed(benchmark::State& state) { end_to_end<true>(state); }
BENCHMARK(BM_EndToEnd_Seed)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEnd_Seed)
    ->Arg(10000000)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN with a provenance gate in front: google-benchmark
// already stamps library_build_type into its JSON context, but that
// reports the *benchmark library's* build, not ours — refuse to measure
// an unoptimised tempest build unless --allow-debug is passed.
int main(int argc, char** argv) {
  bool allow_debug = false;
  int out_argc = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--allow-debug") {
      allow_debug = true;
      continue;
    }
    argv[out_argc++] = argv[i];
  }
  argc = out_argc;
  if (!bench_prov::check_build("bench_parser", allow_debug)) return 2;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
