// Differential-profiling throughput and ranking-correctness gates.
//
//   bench_diff [--functions F] [--nodes N] [--reps R] [--out PATH]
//              [--allow-debug]
//
// Synthesizes two fleet-scale RunProfiles (F functions spread over N
// nodes, realistic per-activation moments), seeds one function with a
// 20% regression, and measures diff_runs over R reps (best wall).
// Gates: the seeded function must rank first among regressions with
// confidence >= 0.95, a self-diff must produce zero significant
// deltas, and alignment throughput must hold >= 250k function pairs/s
// (the diff is one map-merge pass — fleet-sized profiles must stay
// interactive). Results land in BENCH_diff.json; SHAPE CHECK lines and
// the exit code assert the claims.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_provenance.hpp"
#include "common/cli.hpp"
#include "diff/diff.hpp"

namespace {

using namespace tempest;

void shape_check(const std::string& claim, bool ok) {
  std::cout << "SHAPE CHECK [" << (ok ? "ok" : "MISMATCH") << "] " << claim
            << "\n";
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic fleet-scale profile: F functions over N nodes with
/// varied calls/means/variances. `slow_fn` (when >= 0) runs 20% slower
/// — the seeded regression the ranking gate looks for.
diff::RunSummary synth_profile(std::size_t functions, std::size_t nodes,
                               std::ptrdiff_t slow_fn, const char* label) {
  diff::RunSummary run;
  run.source = label;
  run.profile.nodes.resize(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    run.profile.nodes[n].node_id = static_cast<std::uint16_t>(n);
    run.profile.nodes[n].hostname = "bench" + std::to_string(n);
  }
  for (std::size_t f = 0; f < functions; ++f) {
    const std::size_t n = f % nodes;
    parser::FunctionProfile fn;
    fn.addr = 0x400000 + f * 0x40;
    fn.name = "fn_" + std::to_string(f);
    // Varied but deterministic shape: activation counts 8..1031, means
    // around a few hundred microseconds with ~5% relative spread.
    fn.time.count = 8 + (f * 37) % 1024;
    fn.time.mean_s = 1e-4 * (1.0 + static_cast<double>(f % 97) / 10.0);
    if (slow_fn >= 0 && f == static_cast<std::size_t>(slow_fn)) {
      fn.time.mean_s *= 1.2;
    }
    const double sdv = fn.time.mean_s * 0.05;
    fn.time.sdv_s = sdv;
    fn.time.var_s2 = sdv * sdv;
    fn.calls = fn.time.count;
    fn.total_time_s = fn.time.mean_s * static_cast<double>(fn.time.count);
    run.profile.nodes[n].functions.push_back(std::move(fn));
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t functions = 100'000;
  std::size_t nodes = 16;
  int reps = 5;
  std::string out_path = "BENCH_diff.json";
  bool allow_debug = false;

  cli::ArgParser args(
      "[--functions F] [--nodes N] [--reps R] [--out PATH] [--allow-debug]");
  args.add_value("--functions", [&](const std::string& v) {
    return cli::parse_size(v, &functions);
  });
  args.add_value("--nodes", [&](const std::string& v) {
    auto st = cli::parse_size(v, &nodes);
    if (st.is_ok() && nodes == 0) return Status::error("--nodes must be > 0");
    return st;
  });
  args.add_value("--reps", [&](const std::string& v) {
    std::size_t r = 0;
    auto st = cli::parse_size(v, &r);
    if (st.is_ok()) reps = static_cast<int>(r == 0 ? 1 : r);
    return st;
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return Status::ok();
  });
  args.add_flag("--allow-debug", [&] { allow_debug = true; });
  const auto parsed = args.parse(argc, argv);
  if (!parsed.is_ok() || args.help_requested()) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }
  if (!bench_prov::check_build("bench_diff", allow_debug)) return 2;

  // Seed the regression into a mid-table function so ranking has to
  // beat both hotter and colder neighbours on evidence, not position.
  const std::ptrdiff_t slow_fn = static_cast<std::ptrdiff_t>(functions / 3);
  const diff::RunSummary base =
      synth_profile(functions, nodes, -1, "baseline");
  const diff::RunSummary cur =
      synth_profile(functions, nodes, slow_fn, "current");

  diff::DiffResult result;
  double best_wall = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    result = diff::diff_runs(base, cur, {});
    best_wall = std::min(best_wall, now_s() - t0);
  }
  const double fns_per_s =
      best_wall > 0.0 ? static_cast<double>(functions) / best_wall : 0.0;

  const double self_t0 = now_s();
  const diff::DiffResult self = diff::diff_runs(base, base, {});
  const double self_wall = now_s() - self_t0;

  const std::string slow_key = "fn_" + std::to_string(slow_fn);
  const bool ranked_first = !result.regressions.empty() &&
                            result.regressions.front().key == slow_key &&
                            result.regressions.front().confidence >= 0.95;
  const bool self_clean =
      self.regressions.empty() && self.improvements.empty();
  const bool fast_enough = fns_per_s >= 250'000.0;

  std::printf("functions            %zu over %zu nodes\n", functions, nodes);
  std::printf("best diff wall       %8.4f s\n", best_wall);
  std::printf("alignment rate       %8.2f Mfn/s\n", fns_per_s / 1e6);
  std::printf("self-diff wall       %8.4f s\n", self_wall);
  std::printf("regressions found    %zu (top: %s conf %.4f)\n",
              result.regressions.size(),
              result.regressions.empty() ? "-"
                                         : result.regressions.front().key.c_str(),
              result.regressions.empty() ? 0.0
                                         : result.regressions.front().confidence);

  shape_check("seeded 20% regression ranks first at confidence >= 0.95",
              ranked_first);
  shape_check("self-diff yields zero significant deltas", self_clean);
  shape_check("alignment holds >= 250k function pairs/s", fast_enough);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"build_type\": \"" << bench_prov::kBuildType << "\",\n"
      << "  \"functions\": " << functions << ",\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"best_wall_s\": " << best_wall << ",\n"
      << "  \"functions_per_s\": " << fns_per_s << ",\n"
      << "  \"self_diff_wall_s\": " << self_wall << ",\n"
      << "  \"regressions\": " << result.regressions.size() << ",\n"
      << "  \"seeded_ranked_first\": " << (ranked_first ? "true" : "false")
      << ",\n"
      << "  \"self_diff_clean\": " << (self_clean ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  return (ranked_first && self_clean && fast_enough) ? 0 : 1;
}
