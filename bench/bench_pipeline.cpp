// Streaming-vs-batch analysis bench: throughput and peak RSS.
//
// The streaming pipeline's claim is a memory bound, and ru_maxrss is a
// process-wide high-water mark — once the batch path has loaded a 1e7
// event trace, the driver process can never "unsee" those pages. So
// this harness is a self-exec driver, not a google-benchmark suite:
// for each {mode x size} the driver forks and execs itself in child
// mode, measures wall time around wait4(), and reads the child's peak
// RSS from its rusage. Each measurement sees exactly one analysis.
//
//   batch   read_trace_file -> align_clocks -> AnalysisPipeline fold
//   stream  ChunkedTraceSource -> ClockAlignStage -> OrderCheckStage
//           -> AnalysisSink
//
// Both children emit the text profile to a scratch file; the driver
// byte-compares batch vs stream per size, so the numbers below are for
// provably identical outputs. Results go to BENCH_pipeline.json; the
// committed copy holds a full 1e5..1e7 run and CI smoke re-runs the
// 1e5 point (--max-events 100000).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_provenance.hpp"
#include "common/cli.hpp"
#include "pipeline/analysis.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "trace/align.hpp"
#include "trace/reader.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using tempest::Status;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kNodes = 4;
constexpr std::size_t kFuncs = 64;
constexpr std::uint64_t kFuncBase = 0x400000;

/// Deterministic RNG so every run benches the same trace.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// Synthetic run in bench_parser's shape (8 threads, 4 nodes, 64
/// functions, samples ~= events/100), pre-sorted with identity clock
/// syncs: the batch child still pays the full align+sort and the
/// streaming child still runs the sync pre-pass and rewrite, but both
/// see records already in global time order, as a coherent single run
/// records them.
tempest::trace::Trace make_trace(std::size_t n_events) {
  tempest::trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "bench_pipeline_synthetic";
  for (std::size_t n = 0; n < kNodes; ++n) {
    t.nodes.push_back({static_cast<std::uint16_t>(n), "node" + std::to_string(n)});
    for (std::uint16_t s = 0; s < 2; ++s) {
      t.sensors.push_back({static_cast<std::uint16_t>(n), s,
                           "Core " + std::to_string(s), 1.0});
    }
  }
  for (std::size_t th = 0; th < kThreads; ++th) {
    t.threads.push_back({static_cast<std::uint32_t>(th),
                         static_cast<std::uint16_t>(th % kNodes),
                         static_cast<std::uint16_t>(th)});
  }

  Lcg rng{0xb37cULL + n_events};
  const std::size_t per_thread = n_events / kThreads;
  t.fn_events.reserve(per_thread * kThreads);
  std::uint64_t max_tsc = 0;
  for (std::size_t th = 0; th < kThreads; ++th) {
    const std::size_t begin = t.fn_events.size();
    const auto tid = static_cast<std::uint32_t>(th);
    const auto node = static_cast<std::uint16_t>(th % kNodes);
    std::uint64_t tsc = 1000 + th * 7;
    std::vector<std::uint64_t> stack;
    for (std::size_t i = 0; i < per_thread; ++i) {
      tsc += rng.next() % 50 + 1;
      if (stack.empty() || (stack.size() < 8 && rng.next() % 2 == 0)) {
        const std::uint64_t addr = kFuncBase + (rng.next() % kFuncs) * 0x40;
        stack.push_back(addr);
        t.fn_events.push_back({tsc, addr, tid, node,
                               tempest::trace::FnEventKind::kEnter});
      } else {
        t.fn_events.push_back({tsc, stack.back(), tid, node,
                               tempest::trace::FnEventKind::kExit});
        stack.pop_back();
      }
    }
    max_tsc = std::max(max_tsc, tsc);
    t.fn_event_runs.push_back({begin, t.fn_events.size() - begin});
  }

  const std::size_t n_samples = std::max<std::size_t>(n_events / 100, 16);
  const std::size_t per_node = n_samples / kNodes;
  t.temp_samples.reserve(per_node * kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::uint64_t step =
        std::max<std::uint64_t>(max_tsc / (per_node + 1), 1);
    for (std::size_t i = 0; i < per_node; ++i) {
      t.temp_samples.push_back({1000 + (i + 1) * step,
                                60.0 + static_cast<double>(rng.next() % 200) / 10.0,
                                static_cast<std::uint16_t>(n),
                                static_cast<std::uint16_t>(rng.next() % 2)});
    }
  }
  t.sort_by_time();
  // Identity syncs (node clock == global clock): the fit regression
  // recovers slope 1 / offset 0 exactly, so alignment preserves the
  // sorted order and streaming's OrderCheckStage holds.
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint64_t at = (i + 1) * (max_tsc / 9);
      t.clock_syncs.push_back({at, at, static_cast<std::uint16_t>(n)});
    }
  }
  return t;
}

/// bench_parser's scratch-dir probe: /dev/shm keeps file I/O out of the
/// numbers where available.
std::string bench_path(const std::string& name) {
  static const std::string dir = [] {
    const std::string probe = "/dev/shm/tempest_bench_probe";
    std::ofstream f(probe);
    if (f) {
      f.close();
      std::remove(probe.c_str());
      return std::string("/dev/shm");
    }
    return std::string("/tmp");
  }();
  return dir + "/" + name;
}

// ---------------------------------------------------------------- child

int run_child_batch(const std::string& trace_path, std::ostream& out) {
  auto loaded = tempest::trace::read_trace_file(trace_path);
  if (!loaded.is_ok()) {
    std::cerr << "bench_pipeline: " << loaded.message() << "\n";
    return 1;
  }
  tempest::trace::Trace trace = std::move(loaded).value();
  const Status aligned = tempest::trace::align_clocks(&trace);
  if (!aligned) {
    std::cerr << "bench_pipeline: " << aligned.message() << "\n";
    return 1;
  }
  tempest::pipeline::AnalysisOptions options;
  options.timeline_hint =
      std::min(trace.fn_events.size() / 8 + 16, std::size_t{1} << 16);
  tempest::pipeline::AnalysisPipeline fold(std::move(options));
  fold.set_metadata(trace);
  fold.set_bounds(trace.start_tsc(), trace.end_tsc());
  fold.add_fn_events(trace.fn_events.data(), trace.fn_events.size());
  fold.add_temp_samples(trace.temp_samples.data(), trace.temp_samples.size());
  const tempest::pipeline::AnalysisResult result = fold.finish();
  tempest::pipeline::TextEmitter text(out);
  const Status emitted = text.emit(result);
  if (!emitted) {
    std::cerr << "bench_pipeline: " << emitted.message() << "\n";
    return 1;
  }
  return 0;
}

int run_child_stream(const std::string& trace_path, std::ostream& out) {
  auto opened = tempest::pipeline::ChunkedTraceSource::open(trace_path);
  if (!opened.is_ok()) {
    std::cerr << "bench_pipeline: " << opened.message() << "\n";
    return 1;
  }
  tempest::pipeline::ChunkedTraceSource source = std::move(opened).value();
  auto fits = source.clock_fits();
  if (!fits.is_ok()) {
    std::cerr << "bench_pipeline: " << fits.message() << "\n";
    return 1;
  }
  tempest::pipeline::ClockAlignStage align(std::move(fits).value());
  tempest::pipeline::OrderCheckStage order;
  tempest::pipeline::TextEmitter text(out);
  tempest::pipeline::AnalysisSink sink({}, {&text});
  const Status run = tempest::pipeline::run_pipeline(
      &source, {&align, &order}, {&sink});
  if (!run) {
    std::cerr << "bench_pipeline: " << run.message() << "\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------------------------- driver

struct Measurement {
  std::string mode;
  std::size_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  long max_rss_kib = 0;
};

/// Fork + exec self in child mode; wall time around wait4(), peak RSS
/// from the child's rusage.
bool run_measured(const char* self, const std::string& mode,
                  const std::string& trace_path, const std::string& emit_path,
                  std::size_t events, Measurement* out) {
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("bench_pipeline: fork");
    return false;
  }
  if (pid == 0) {
    std::vector<std::string> args = {self,       "--child", mode,
                                     "--trace",  trace_path, "--emit",
                                     emit_path};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(self, argv.data());
    std::perror("bench_pipeline: execv");
    _exit(127);
  }
  int status = 0;
  struct rusage ru {};
  if (wait4(pid, &status, 0, &ru) < 0) {
    std::perror("bench_pipeline: wait4");
    return false;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "bench_pipeline: child (" << mode << ", " << events
              << " events) failed\n";
    return false;
  }
  out->mode = mode;
  out->events = events;
  out->wall_s = std::chrono::duration<double>(t1 - t0).count();
  out->events_per_s =
      out->wall_s > 0.0 ? static_cast<double>(events) / out->wall_s : 0.0;
  out->max_rss_kib = ru.ru_maxrss;  // Linux reports KiB.
  return true;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_driver(const char* self, std::size_t max_events,
               const std::string& out_path) {
  const std::vector<std::size_t> all_sizes = {100000, 1000000, 10000000};
  std::vector<std::size_t> sizes;
  for (std::size_t s : all_sizes) {
    if (s <= max_events) sizes.push_back(s);
  }
  if (sizes.empty()) {
    std::cerr << "bench_pipeline: --max-events below the smallest size ("
              << all_sizes.front() << ")\n";
    return 2;
  }

  std::vector<Measurement> rows;
  std::vector<std::string> scratch;
  for (std::size_t n : sizes) {
    const std::string trace_path =
        bench_path("bench_pipeline_" + std::to_string(n) + ".trace");
    scratch.push_back(trace_path);
    {
      tempest::trace::Trace t = make_trace(n);
      const Status written = tempest::trace::write_trace_file(trace_path, t);
      if (!written) {
        std::cerr << "bench_pipeline: " << written.message() << "\n";
        return 1;
      }
    }  // Trace freed before any child runs.

    std::string emits[2];
    const char* modes[2] = {"batch", "stream"};
    for (int m = 0; m < 2; ++m) {
      const std::string emit_path = bench_path(
          std::string("bench_pipeline_") + modes[m] + ".txt");
      scratch.push_back(emit_path);
      Measurement row;
      if (!run_measured(self, modes[m], trace_path, emit_path, n, &row)) {
        return 1;
      }
      rows.push_back(row);
      emits[m] = slurp(emit_path);
      std::fprintf(stderr, "%-6s %9zu events  %7.3f s  %12.0f ev/s  %8ld KiB\n",
                   modes[m], n, row.wall_s, row.events_per_s, row.max_rss_kib);
    }
    if (emits[0] != emits[1] || emits[0].empty()) {
      std::cerr << "bench_pipeline: batch and stream outputs differ at " << n
                << " events — refusing to report numbers for divergent paths\n";
      return 1;
    }
  }
  for (const std::string& path : scratch) std::remove(path.c_str());

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "bench_pipeline: cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n  \"benchmark\": \"bench_pipeline\",\n"
       << "  \"build_type\": \"" << bench_prov::kBuildType << "\",\n"
       << "  \"description\": \"streaming vs batch analysis: wall time and "
          "peak RSS per forked child; outputs byte-verified identical\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"events\": %zu, \"wall_s\": %.4f, "
                  "\"events_per_s\": %.0f, \"max_rss_kib\": %ld}%s\n",
                  r.mode.c_str(), r.events, r.wall_s, r.events_per_s,
                  r.max_rss_kib, i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n  \"summary\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Measurement& batch = rows[i * 2];
    const Measurement& stream = rows[i * 2 + 1];
    const double rss_ratio = batch.max_rss_kib > 0
        ? static_cast<double>(stream.max_rss_kib) / batch.max_rss_kib
        : 0.0;
    const double speed_ratio = batch.events_per_s > 0.0
        ? stream.events_per_s / batch.events_per_s
        : 0.0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"events\": %zu, \"stream_rss_over_batch\": %.3f, "
                  "\"stream_speed_over_batch\": %.3f}%s\n",
                  sizes[i], rss_ratio, speed_ratio,
                  i + 1 < sizes.size() ? "," : "");
    json << buf;
  }
  json << "  ]\n}\n";
  std::cerr << "bench_pipeline: wrote " << out_path << "\n";

  // Acceptance gate (full runs only): streaming peak RSS at 1e7 events
  // must stay under half the batch path's.
  if (sizes.back() == all_sizes.back()) {
    const Measurement& batch = rows[rows.size() - 2];
    const Measurement& stream = rows[rows.size() - 1];
    if (stream.max_rss_kib * 2 >= batch.max_rss_kib) {
      std::cerr << "bench_pipeline: FAIL streaming RSS " << stream.max_rss_kib
                << " KiB is not < 50% of batch " << batch.max_rss_kib
                << " KiB at " << sizes.back() << " events\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string child_mode;
  std::string trace_path;
  std::string emit_path;
  std::string out_path = "BENCH_pipeline.json";
  std::size_t max_events = 10000000;

  tempest::cli::ArgParser args(
      "[--max-events N] [--out FILE] [--allow-debug]   (driver)\n"
      "       --child batch|stream --trace FILE --emit FILE");
  args.add_value("--child", [&](const std::string& v) {
    if (v != "batch" && v != "stream") {
      return Status::error("--child must be batch or stream, got '" + v + "'");
    }
    child_mode = v;
    return Status::ok();
  });
  args.add_value("--trace", [&](const std::string& v) {
    trace_path = v;
    return Status::ok();
  });
  args.add_value("--emit", [&](const std::string& v) {
    emit_path = v;
    return Status::ok();
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return Status::ok();
  });
  args.add_value("--max-events", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &max_events);
  });
  bool allow_debug = false;
  args.add_flag("--allow-debug", [&] { allow_debug = true; });
  const Status parsed = args.parse(argc, argv);
  if (!parsed) {
    std::cerr << "bench_pipeline: " << parsed.message() << "\n";
    args.print_usage(std::cerr, "bench_pipeline");
    return 2;
  }
  if (args.help_requested()) {
    args.print_usage(std::cout, "bench_pipeline");
    return 0;
  }

  if (!child_mode.empty()) {
    if (trace_path.empty() || emit_path.empty()) {
      std::cerr << "bench_pipeline: --child needs --trace and --emit\n";
      return 2;
    }
    std::ofstream out(emit_path, std::ios::binary);
    if (!out) {
      std::cerr << "bench_pipeline: cannot write " << emit_path << "\n";
      return 1;
    }
    return child_mode == "batch" ? run_child_batch(trace_path, out)
                                 : run_child_stream(trace_path, out);
  }
  if (!bench_prov::check_build("bench_pipeline", allow_debug)) return 2;
  // Resolve our own binary for the re-exec; argv[0] covers the PATH case.
  static char self_buf[4096];
  const ssize_t len = readlink("/proc/self/exe", self_buf, sizeof(self_buf) - 1);
  const char* self = argv[0];
  if (len > 0) {
    self_buf[len] = '\0';
    self = self_buf;
  }
  return run_driver(self, max_events, out_path);
}
