// Telemetry hot-path cost: is the self-measurement cheap enough to be
// always on?
//
//   bench_telemetry [--events N] [--reps R] [--out PATH]
//
// Measures (best of R reps, single thread — the hot path is per-thread
// by design):
//   * one relaxed counter increment into the calling thread's shard
//     (the budget is <= 20 ns; typical is a few ns),
//   * the same increment with the TEMPEST_TELEMETRY kill switch off,
//   * one histogram observation,
//   * one full snapshot fold (cold path, for scale),
//   * the event-buffer push loop over N events with telemetry live,
//     with telemetry disarmed, and with a 200 Hz heartbeat emitter
//     concurrently snapshotting — the recording-overhead regression
//     gate: heartbeat-on must stay within 10% of heartbeat-off.
//
// Results land in BENCH_telemetry.json; SHAPE CHECK lines assert the
// budget claims the same way the paper-reproduction benches do.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/thread_buffer.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "trace/trace.hpp"

namespace {

using tempest::core::EventBuffer;
using tempest::telemetry::Counter;
using tempest::telemetry::Histogram;

void shape_check(const std::string& claim, bool ok) {
  std::cout << "SHAPE CHECK [" << (ok ? "ok" : "MISMATCH") << "] " << claim
            << "\n";
}

inline void keep(std::uint64_t& v) { asm volatile("" : "+r"(v)); }

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ns per op over `iters` calls of `fn`, best of `reps`.
template <typename Fn>
double best_ns_per_op(std::size_t iters, int reps, Fn fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const double dt = now_s() - t0;
    best = std::min(best, dt * 1e9 / static_cast<double>(iters));
  }
  return best;
}

/// Steady-state push cost over `events` pushes into a capped buffer
/// (dropping mode keeps memory flat at one chunk + scratch, and keeps
/// the chunk-granular telemetry publication in the loop).
double push_ns_per_op(std::size_t events, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    EventBuffer buffer;
    buffer.set_limit(1);  // rounds up to one chunk, then scratch
    const tempest::trace::FnEvent ev{1, 0x1000, 0, 0,
                                     tempest::trace::FnEventKind::kEnter};
    const double t0 = now_s();
    for (std::size_t i = 0; i < events; ++i) buffer.push(ev);
    const double dt = now_s() - t0;
    best = std::min(best, dt * 1e9 / static_cast<double>(events));
  }
  return best;
}

double push_ns_with_heartbeat(std::size_t events, int reps,
                              const std::string& hb_path) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    tempest::telemetry::HeartbeatEmitter hb;
    if (!hb.start(hb_path, 0.005).is_ok()) return -1.0;
    const double cost = push_ns_per_op(events, 1);
    hb.stop();
    best = std::min(best, cost);
  }
  std::remove(hb_path.c_str());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 10'000'000;
  int reps = 5;
  std::string out_path = "BENCH_telemetry.json";

  tempest::cli::ArgParser args("[--events N] [--reps R] [--out PATH]");
  args.add_value("--events", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &events);
  });
  args.add_value("--reps", [&](const std::string& v) {
    std::size_t r = 0;
    auto st = tempest::cli::parse_size(v, &r);
    if (st.is_ok()) reps = static_cast<int>(r == 0 ? 1 : r);
    return st;
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return tempest::Status::ok();
  });
  const auto parsed = args.parse(argc, argv);
  if (!parsed.is_ok() || args.help_requested()) {
    if (!parsed.is_ok()) std::cerr << "error: " << parsed.message() << "\n";
    args.print_usage(std::cerr, argv[0]);
    return 2;
  }

  auto& metrics = tempest::telemetry::metrics();
  metrics.reset();
  // The capped push loops would warn once per rep; that's the loop
  // under test doing its job, not news.
  tempest::telemetry::Logger::instance().set_threshold(
      tempest::telemetry::LogLevel::kError);

  const std::size_t micro_iters = events < 1'000'000 ? events : 1'000'000;
  const double counter_ns = best_ns_per_op(micro_iters, reps, [](std::size_t) {
    tempest::telemetry::count(Counter::kPipelineFnEvents);
  });
  const double observe_ns = best_ns_per_op(micro_iters, reps, [](std::size_t i) {
    tempest::telemetry::observe(Histogram::kStageWallUs,
                                static_cast<double>(i & 1023));
  });
  metrics.set_enabled(false);
  const double disabled_ns = best_ns_per_op(micro_iters, reps, [](std::size_t) {
    tempest::telemetry::count(Counter::kPipelineFnEvents);
  });
  metrics.set_enabled(true);

  double snapshot_us = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    auto snap = metrics.snapshot();
    std::uint64_t sink = snap.counter(Counter::kPipelineFnEvents);
    keep(sink);
    snapshot_us = std::min(snapshot_us, (now_s() - t0) * 1e6);
  }

  metrics.reset();
  const double push_ns = push_ns_per_op(events, reps);
  metrics.set_enabled(false);
  const double push_disarmed_ns = push_ns_per_op(events, reps);
  metrics.set_enabled(true);
  const double push_hb_ns =
      push_ns_with_heartbeat(events, reps, out_path + ".hb.jsonl");

  const double hb_ratio = push_ns > 0.0 ? push_hb_ns / push_ns : 0.0;
  const double arm_ratio =
      push_disarmed_ns > 0.0 ? push_ns / push_disarmed_ns : 0.0;

  std::printf("counter add          %8.2f ns/op\n", counter_ns);
  std::printf("counter add (off)    %8.2f ns/op\n", disabled_ns);
  std::printf("histogram observe    %8.2f ns/op\n", observe_ns);
  std::printf("snapshot fold        %8.2f us\n", snapshot_us);
  std::printf("event push           %8.2f ns/op  (%zu events)\n", push_ns,
              events);
  std::printf("event push (disarmed)%8.2f ns/op  (armed/disarmed %.3fx)\n",
              push_disarmed_ns, arm_ratio);
  std::printf("event push + 200Hz heartbeat %8.2f ns/op  (ratio %.3fx)\n",
              push_hb_ns, hb_ratio);

  shape_check("counter increment within the 20 ns hot-path budget",
              counter_ns <= 20.0);
  shape_check("heartbeat keeps recording overhead regression under 10%",
              push_hb_ns >= 0.0 && hb_ratio < 1.10);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"events\": " << events << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"counter_add_ns\": " << counter_ns << ",\n"
      << "  \"counter_add_disabled_ns\": " << disabled_ns << ",\n"
      << "  \"histogram_observe_ns\": " << observe_ns << ",\n"
      << "  \"snapshot_fold_us\": " << snapshot_us << ",\n"
      << "  \"event_push_ns\": " << push_ns << ",\n"
      << "  \"event_push_disarmed_ns\": " << push_disarmed_ns << ",\n"
      << "  \"event_push_heartbeat_ns\": " << push_hb_ns << ",\n"
      << "  \"heartbeat_overhead_ratio\": " << hb_ratio << ",\n"
      << "  \"armed_overhead_ratio\": " << arm_ratio << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  const bool ok = counter_ns <= 20.0 && (push_hb_ns >= 0.0 && hb_ratio < 1.10);
  return ok ? 0 : 1;
}
