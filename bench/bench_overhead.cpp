// §3.4 verification: profiling overhead and cross-tool agreement.
//
// The paper's claims: "Gprof introduced less than 10% overhead to the
// original code for all codes measured ... Tempest introduced less than
// 7% overhead for the same codes. Repeated measurements were subject to
// variance of about 5%. The results presented are an average sample
// from at least 5 runs." And: "Both tools provided similar results for
// total execution time in the various code functions."
//
// Workloads are work-bound (fixed computation, wall time = cost):
//   micro-G  - transparent -finstrument-functions path, ~10 us functions
//   EP / BT  - NAS-like kernels through the explicit region API
#include <functional>
#include <numeric>

#include "bench_util.hpp"
#include "gprofsim/flat_profiler.hpp"
#include "micro/micro.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"

namespace {

constexpr int kReps = 7;  // paper: "at least 5 runs"
volatile std::uint64_t g_sink = 0;

double time_once(const std::function<void()>& fn) {
  const std::uint64_t t0 = tempest::rdtsc();
  fn();
  return tempest::tsc_to_seconds(tempest::rdtsc() - t0);
}

struct Sample {
  double mean_s = 0.0;
  double spread_pct = 0.0;  ///< (max-min)/mean run-to-run variation
};

Sample time_reps(const std::function<void()>& fn) {
  std::vector<double> times;
  for (int r = 0; r < kReps; ++r) times.push_back(time_once(fn));
  std::sort(times.begin(), times.end());
  Sample s;
  // Median: overhead estimates must survive scheduler outliers in a
  // shared container (the paper controlled this by running bare-metal
  // with minimal services).
  s.mean_s = times[times.size() / 2];
  s.spread_pct = 100.0 * (times.back() - times.front()) / s.mean_s;
  return s;
}

}  // namespace

int main() {
  bench_util::banner(
      "Verification (sec 3.4) reproduction: Tempest vs gprof overhead");

  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  tempest::simnode::SimNode node(node_config);
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  session.register_sim_node(&node);

  struct Workload {
    const char* name;
    std::function<void()> body;
    bool transparent;  ///< goes through -finstrument-functions (gprof too)
  };
  const Workload workloads[] = {
      {"micro-G (instrumented fns)", [] { g_sink = micro::run_micro_g(8000); }, true},
      {"NAS EP (explicit regions)",
       [] {
         minimpi::run(2, [](minimpi::Comm& comm) {
           (void)npb::ep_run(comm, npb::EpConfig{20});
         });
       },
       false},
      // Function/phase-granular BT, the instrumentation level the
      // paper's <7% bound covers; the per-cell kernel-event cost is
      // quantified separately in bench_ablation (the paper's own §3.3
      // caveat about "functions with very short life spans").
      {"NAS BT (function level)",
       [] {
         minimpi::run(2, [](minimpi::Comm& comm) {
           (void)npb::bt_run(comm, npb::BtConfig{24, 24, 24, 12, 0.006, false});
         });
       },
       false},
      {"NAS FT (function level)",
       [] {
         minimpi::run(2, [](minimpi::Comm& comm) {
           (void)npb::ft_run(comm, npb::FtConfig{32, 32, 32, 24});
         });
       },
       false},
  };

  std::printf("\n%-28s %10s %10s %9s %10s %9s %9s\n", "workload", "base(s)",
              "tempest(s)", "ovh%", "gprof(s)", "ovh%", "var%");

  bool tempest_under_7 = true, gprof_under_10 = true, variance_reasonable = true;

  for (const auto& w : workloads) {
    w.body();  // warm-up
    const Sample base = time_reps(w.body);

    // Tempest: session active (tempd at the paper's 4 Hz + event path).
    tempest::core::SessionConfig config;
    config.sample_hz = 4.0;
    config.bind_affinity = false;
    (void)session.start(config);
    const Sample with_tempest = time_reps(w.body);
    (void)session.stop();

    // gprof-style flat profiler (transparent path only).
    Sample with_gprof{0.0, 0.0};
    if (w.transparent) {
      auto& gprof = gprofsim::FlatProfiler::instance();
      gprof.reset();
      gprof.start();
      with_gprof = time_reps(w.body);
      gprof.stop();
    }

    const double tempest_ovh =
        100.0 * (with_tempest.mean_s - base.mean_s) / base.mean_s;
    const double gprof_ovh =
        w.transparent ? 100.0 * (with_gprof.mean_s - base.mean_s) / base.mean_s
                      : 0.0;
    std::printf("%-28s %10.4f %10.4f %8.1f%% ", w.name, base.mean_s,
                with_tempest.mean_s, tempest_ovh);
    if (w.transparent) {
      std::printf("%10.4f %8.1f%% ", with_gprof.mean_s, gprof_ovh);
    } else {
      std::printf("%10s %9s ", "-", "-");
    }
    std::printf("%8.1f%%\n", std::max(base.spread_pct, with_tempest.spread_pct));

    tempest_under_7 &= tempest_ovh < 7.0;
    if (w.transparent) gprof_under_10 &= gprof_ovh < 10.0;
    variance_reasonable &= base.spread_pct < 25.0;
  }

  // Cross-tool agreement on per-function totals (paper: "similar
  // results for total execution time in the various code functions").
  {
    tempest::core::SessionConfig config;
    config.sample_hz = 4.0;
    config.bind_affinity = false;
    (void)session.start(config);
    g_sink = micro::run_micro_g(4000);
    (void)session.stop();
    auto parsed = tempest::parser::parse_trace(session.take_trace());

    auto& gprof = gprofsim::FlatProfiler::instance();
    gprof.reset();
    gprof.start();
    g_sink = micro::run_micro_g(4000);
    gprof.stop();

    double worst_disagreement = 0.0;
    int compared = 0;
    if (parsed.is_ok()) {
      for (const auto& fn : parsed.value().nodes[0].functions) {
        if (fn.name.find("work_chunk") == std::string::npos) continue;
        for (const auto& e : gprof.flat_profile()) {
          if (e.name != fn.name) continue;
          worst_disagreement = std::max(
              worst_disagreement,
              std::abs(fn.total_time_s - e.total_s) / fn.total_time_s);
          ++compared;
        }
      }
    }
    std::printf("\ncross-tool totals: %d functions compared, worst disagreement %.1f%%\n",
                compared, 100.0 * worst_disagreement);
    bench_util::shape_check(
        "Tempest and gprof agree on per-function totals (within run variance)",
        compared >= 3 && worst_disagreement < 0.12);
  }

  bench_util::shape_check("Tempest overhead < 7% on all workloads", tempest_under_7);
  bench_util::shape_check("gprof-style overhead < 10% on instrumented workloads",
                          gprof_under_10);
  bench_util::shape_check("run-to-run variance in the paper's ~5% regime",
                          variance_reasonable);

  session.clear_nodes();
  return 0;
}
