// Figure 3: thermal profile of the NAS FT benchmark, NP=4, per node.
//
// The paper's findings: FT spends ~50% of its time in all-to-all
// communication and was expected to run cool; the thermal profiles show
// no clear system-wide trend — some nodes warm steadily, others sit
// volatile around a lower average — despite regular power behaviour.
#include "bench_util.hpp"
#include "minimpi/runtime.hpp"
#include "npb/ft.hpp"

int main() {
  bench_util::banner("Figure 3 reproduction: FT thermal profile (NP=4)");

  auto cc = bench_util::paper_cluster(4, /*time_scale=*/30.0);
  tempest::simnode::Cluster cluster(cc);
  bench_util::register_cluster(cluster);
  bench_util::start_session(/*hz=*/4.0);

  // FT sized so the run takes several seconds of wall time: the
  // communication/computation duty cycle, not the class size, is what
  // shapes the thermals.
  npb::FtConfig config{64, 64, 64, 180};
  npb::FtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();  // the all-to-all crosses real wires
  minimpi::run(4, [&](minimpi::Comm& comm) { result = npb::ft_run(comm, config); },
               options);

  tempest::trace::Trace raw;
  const auto profile = bench_util::stop_and_parse(&raw);
  (void)tempest::trace::align_clocks(&raw);
  const auto series =
      tempest::report::extract_series(raw, tempest::TempUnit::kFahrenheit);

  std::cout << "FT " << config.nx << "x" << config.ny << "x" << config.nz << ", "
            << config.niter << " iterations, elapsed " << result.elapsed_s
            << " s, final checksum " << result.checksums.back().real() << "+"
            << result.checksums.back().imag() << "i\n\n";

  // The stacked per-node charts of Figure 3 (CPU die sensor).
  tempest::report::PlotOptions plot;
  plot.sensor_filter = "sensor4";  // core 0 diode in the Opteron layout
  plot.height = 9;
  tempest::report::plot_series(std::cout, series, plot);

  // Per-node summary: average and spread of the die sensor.
  std::cout << "Per-node die-sensor summary (F):\n";
  std::vector<double> node_avg(4, 0.0), node_max(4, -1e300), node_min(4, 1e300);
  std::vector<double> node_sdv(4, 0.0);
  for (const auto& s : series.sensors) {
    if (s.sensor_name != "sensor4" || s.node_id >= 4) continue;
    tempest::SampleSet set;
    for (const auto& p : s.points) set.add(p.temp);
    const auto sum = set.summarize();
    node_avg[s.node_id] = sum.avg;
    node_max[s.node_id] = sum.max;
    node_min[s.node_id] = sum.min;
    node_sdv[s.node_id] = sum.sdv;
    std::printf("  node%u: min %.1f avg %.1f max %.1f sdv %.2f\n", s.node_id + 1,
                sum.min, sum.avg, sum.max, sum.sdv);
  }

  // Shape checks against the paper's qualitative Figure 3 claims.
  double spread = 0.0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) spread = std::max(spread, node_avg[a] - node_avg[b]);
  }
  bench_util::shape_check(
      "thermals vary between nodes under the same load (avg spread > 1.5 F)",
      spread > 1.5);

  // Communication-bound: FT's die temperatures stay well below the
  // fully-busy saturation point (~124 F at these package parameters).
  double hottest = *std::max_element(node_max.begin(), node_max.end());
  bench_util::shape_check(
      "FT runs cool: hottest die stays below the compute-bound ceiling",
      hottest < 122.0);

  // "No clear system-wide trends": per-node variability differs — the
  // most volatile node swings more than the calmest (the paper's
  // volatile-around-a-lower-average vs steadily-warming split).
  const double max_sdv = *std::max_element(node_sdv.begin(), node_sdv.end());
  const double min_sdv = *std::min_element(node_sdv.begin(), node_sdv.end());
  bench_util::shape_check("node behaviours differ (volatile vs steady)",
                          max_sdv > 1.08 * min_sdv);

  // Communication fraction: transpose (the all-to-all) is a first-order
  // share of the run, as in "FT spends 50% of its time in all-to-all".
  double transpose_s = 0.0, ft_s = 0.0;
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      if (fn.name == "transpose") transpose_s += fn.total_time_s;
      if (fn.name == "ft_run") ft_s += fn.total_time_s;
    }
  }
  std::printf("\ntranspose/ft_run inclusive time: %.0f%%\n",
              100.0 * transpose_s / ft_s);
  bench_util::shape_check("all-to-all transpose is a major share (> 25%)",
                          transpose_s > 0.25 * ft_s);

  tempest::core::Session::instance().clear_nodes();
  return 0;
}
