// Figure 2: Tempest output for micro-benchmark D.
//
// Part (a): the standard-output profile — main/foo1/foo2 listed by
// inclusive time with per-sensor Min/Avg/Max/Sdv/Var/Med/Mod in
// Fahrenheit; foo2's thermal data flagged not significant (its life is
// shorter than the 4 Hz sampling interval).
// Part (b): the temperature-vs-time profile — foo1's CPU burn heats the
// die steadily; the temperature drops abruptly when foo2's timer wait
// begins. Fan and frequency are pinned throughout (paper methodology).
#include "bench_util.hpp"
#include "micro/micro.hpp"

namespace {

const tempest::parser::FunctionProfile* find(
    const tempest::parser::RunProfile& profile, const std::string& substring) {
  for (const auto& node : profile.nodes) {
    for (const auto& fn : node.functions) {
      if (fn.name.find(substring) != std::string::npos) return &fn;
    }
  }
  return nullptr;
}

}  // namespace

int main() {
  bench_util::banner("Figure 2 reproduction: micro-benchmark D profile");
  std::cout << "(paper: foo1 runs a CPU burn ~60 s heating the die from ~114 F\n"
               " to ~124 F; foo2 exits after a short timer; thermal constants\n"
               " here are time-compressed so the same dynamics fit a short run)\n";

  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  node_config.package.time_scale = 20.0;  // 8 s run ~ 160 thermal seconds
  tempest::simnode::SimNode node(node_config);
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  const auto node_id = session.register_sim_node(&node);
  tempest::core::Workbench bench(&node, node_id);

  bench_util::start_session(/*hz=*/4.0);  // the paper's sampling rate
  bench.attach();
  micro::run_micro_d(micro::MicroParams{&bench, 0.12});  // ~7.5 s wall
  bench.detach();

  tempest::trace::Trace raw;
  const auto profile = bench_util::stop_and_parse(&raw);

  std::cout << "\n--- Part (a): Tempest standard output ---\n\n";
  tempest::report::StdoutOptions options;
  options.max_functions = 6;
  tempest::report::print_profile(std::cout, profile, options);

  std::cout << "--- Part (b): temperature profile ---\n\n";
  (void)tempest::trace::align_clocks(&raw);
  const auto series = tempest::report::extract_series(
      raw, tempest::TempUnit::kFahrenheit, {"micro::(anonymous namespace)::foo1(micro::MicroParams const&)",
                                            "micro::(anonymous namespace)::foo2(micro::MicroParams const&)"});
  tempest::report::PlotOptions plot;
  plot.sensor_filter = "CPU";
  tempest::report::plot_series(std::cout, series, plot);

  // Shape checks against the paper's Figure 2 claims.
  const auto* foo1 = find(profile, "foo1");
  const auto* foo2 = find(profile, "foo2");
  bench_util::shape_check("foo1 accounts for most of total execution time",
                          foo1 != nullptr && foo1->total_time_s >
                                                 0.6 * profile.duration_s);
  bool foo1_heats = false;
  if (foo1 != nullptr && !foo1->sensors.empty()) {
    const auto& cpu = foo1->sensors.front().stats;
    foo1_heats = cpu.max >= cpu.min + 5.0;  // clear heating ramp (F)
  }
  bench_util::shape_check("foo1 heats the CPU (max >> min on the die sensor)",
                          foo1_heats);
  bench_util::shape_check(
      "foo2 is short relative to the sampling interval -> not significant",
      foo2 != nullptr && !foo2->significant);

  // Abrupt drop after the burn: die temperature at the end of the run
  // is below its peak.
  double peak = -1e300, last = -1e300;
  for (const auto& s : series.sensors) {
    if (s.sensor_name != "CPU") continue;
    for (const auto& p : s.points) peak = std::max(peak, p.temp);
    if (!s.points.empty()) last = s.points.back().temp;
  }
  bench_util::shape_check("temperature drops abruptly once foo2's timer runs",
                          peak > -1e300 && last < peak - 1.0);

  session.clear_nodes();
  return 0;
}
