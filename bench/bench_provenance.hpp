// Build-type provenance for benchmark outputs.
//
// Every BENCH_*.json committed to the repo is a performance claim, and
// a claim measured on a -O0 asserts-on build is a lie by omission. The
// bench binaries compile in the CMake build type and (a) refuse to run
// from an unoptimised build unless --allow-debug is passed, (b) stamp
// the build type into the JSON they emit so a stray debug artefact is
// visible in review rather than silently replacing Release numbers.
#pragma once

#include <cstring>
#include <iostream>

namespace bench_prov {

#ifdef TEMPEST_BENCH_BUILD_TYPE
inline constexpr const char* kBuildType = TEMPEST_BENCH_BUILD_TYPE;
#else
inline constexpr const char* kBuildType = "unspecified";
#endif

inline bool optimized_build() {
#ifdef NDEBUG
  return std::strcmp(kBuildType, "Release") == 0 ||
         std::strcmp(kBuildType, "RelWithDebInfo") == 0 ||
         std::strcmp(kBuildType, "MinSizeRel") == 0;
#else
  return false;
#endif
}

/// Gate to call before measuring anything. Returns false (and says
/// why) when this is not an optimised build and the caller did not
/// explicitly opt in with --allow-debug.
inline bool check_build(const char* bench_name, bool allow_debug) {
  if (optimized_build()) return true;
  if (allow_debug) {
    std::cerr << bench_name << ": WARNING: measuring a '" << kBuildType
              << "' build (--allow-debug); numbers are not comparable to "
                 "committed Release results\n";
    return true;
  }
  std::cerr << bench_name << ": refusing to bench a '" << kBuildType
            << "' build — rebuild with -DCMAKE_BUILD_TYPE=Release or pass "
               "--allow-debug to measure anyway\n";
  return false;
}

}  // namespace bench_prov
