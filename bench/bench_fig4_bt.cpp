// Figure 4: thermal profile of the NAS BT benchmark, NP=4, per node.
//
// The paper's findings: BT "performs several tasks followed by a
// synchronization event" about 1.5 s into the run; at the event all
// nodes see a dramatic temperature rise (increased computation), and
// the nodes spread: 1 and 4 jump above 105 F, node 2 stays below, node
// 3 runs above 110 F.
#include "bench_util.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"

int main() {
  bench_util::banner("Figure 4 reproduction: BT thermal profile (NP=4)");

  auto cc = bench_util::paper_cluster(4, /*time_scale=*/35.0);
  tempest::simnode::Cluster cluster(cc);
  bench_util::register_cluster(cluster);
  bench_util::start_session(/*hz=*/4.0);

  // "Several tasks" before the synchronisation event: a setup phase of
  // mostly idle staging (input distribution, mesh setup) for ~1.5 s,
  // then the barrier inside bt_run releases all ranks into the
  // compute-heavy ADI iterations together.
  npb::BtConfig config{32, 32, 32, 26, 0.004, /*kernel_events=*/false};
  npb::BtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  double sync_event_s = 0.0;
  minimpi::run(4, [&](minimpi::Comm& comm) {
    {
      tempest::ScopedRegion setup("setup_phase");
      auto& placement = comm.world().placement(comm.rank());
      // Staggered light staging: short compute bursts between waits.
      for (int burst = 0; burst < 5; ++burst) {
        tempest::core::Workbench bench(placement.node, placement.node_id,
                                       placement.core);
        bench.burn(0.05);
        bench.idle(0.20 + 0.02 * comm.rank());
      }
    }
    if (comm.rank() == 0) sync_event_s = comm.wtime();
    result = bt_run(comm, config);
  }, options);

  tempest::trace::Trace raw;
  const auto profile = bench_util::stop_and_parse(&raw);
  (void)tempest::trace::align_clocks(&raw);
  const auto series =
      tempest::report::extract_series(raw, tempest::TempUnit::kFahrenheit, {"adi"});

  std::cout << "BT " << config.nx << "^3, " << config.niter
            << " iterations, elapsed " << result.elapsed_s
            << " s; synchronization event at ~" << sync_event_s
            << " s; final error " << result.final_error << "\n\n";

  tempest::report::PlotOptions plot;
  plot.sensor_filter = "sensor4";
  plot.height = 9;
  tempest::report::plot_series(std::cout, series, plot);

  // Per-node pre/post-sync averages and maxima of the die sensor.
  std::cout << "Per-node die sensor, before vs after the sync event (F):\n";
  std::vector<double> pre(4, 0.0), post(4, 0.0), peak(4, -1e300);
  for (const auto& s : series.sensors) {
    if (s.sensor_name != "sensor4" || s.node_id >= 4) continue;
    tempest::SampleSet before, after;
    for (const auto& p : s.points) {
      (p.time_s < sync_event_s ? before : after).add(p.temp);
      peak[s.node_id] = std::max(peak[s.node_id], p.temp);
    }
    pre[s.node_id] = before.empty() ? 0.0 : before.summarize().avg;
    post[s.node_id] = after.empty() ? 0.0 : after.summarize().avg;
    std::printf("  node%u: pre-sync avg %.1f   post-sync avg %.1f   peak %.1f\n",
                s.node_id + 1, pre[s.node_id], post[s.node_id], peak[s.node_id]);
  }

  bool all_rise = true;
  for (int n = 0; n < 4; ++n) all_rise &= post[n] > pre[n] + 2.0;
  bench_util::shape_check(
      "at the synchronization event ALL nodes see a dramatic rise", all_rise);

  const double hottest = *std::max_element(peak.begin(), peak.end());
  const double coolest = *std::min_element(peak.begin(), peak.end());
  bench_util::shape_check(
      "some nodes run hotter than others (peak spread > 2 F)",
      hottest > coolest + 2.0);
  bench_util::shape_check("the hottest node exceeds 105 F under BT compute",
                          hottest > 105.0);

  // BT is compute-bound: unlike FT, dies approach the busy ceiling.
  bench_util::shape_check("BT runs hot relative to FT's communication-bound profile",
                          hottest > 112.0);

  tempest::core::Session::instance().clear_nodes();
  return 0;
}
