// §3.4 / §4.1 reproduction: sensor portability and tempd's footprint.
//
// Paper: "we observed as few as 3 sensors on x86 platforms from AMD and
// up to 7 sensors on PowerPC G5 systems"; "we measured the steady-state
// system temperature by running the tempd process without any
// workloads. We observed that tempd had no impact on the system
// temperature, and in fact used less than 1% of CPU time."
#include <thread>

#include "bench_util.hpp"
#include "sensors/hwmon.hpp"

int main() {
  bench_util::banner("Sensor portability & tempd footprint reproduction");

  // --- portability matrix -------------------------------------------------
  struct Platform {
    const char* name;
    tempest::simnode::NodeKind kind;
    std::size_t expected_sensors;
  };
  const Platform platforms[] = {
      {"x86 (basic desktop)", tempest::simnode::NodeKind::kX86Basic, 3},
      {"AMD Opteron cluster node", tempest::simnode::NodeKind::kOpteron, 6},
      {"PowerPC G5 (System X)", tempest::simnode::NodeKind::kPowerPcG5, 7},
  };

  std::printf("\n%-26s %8s  sensors\n", "platform", "count");
  bool counts_ok = true;
  for (const auto& p : platforms) {
    tempest::simnode::SimNode node(tempest::simnode::make_node_config(p.kind));
    const auto sensors = node.sensor_backend().enumerate();
    std::printf("%-26s %8zu  ", p.name, sensors.size());
    for (const auto& s : sensors) std::printf("[%s] ", s.name.c_str());
    std::printf("\n");
    counts_ok &= sensors.size() == p.expected_sensors;
    for (const auto& s : sensors) {
      counts_ok &= node.sensor_backend().read_celsius(s.id).is_ok();
    }
  }
  bench_util::shape_check("3 sensors on x86 ... up to 7 on PowerPC G5, all readable",
                          counts_ok);

  // Real hwmon path: present on actual Linux hardware, absent in most
  // containers — either way the probe itself must behave.
  tempest::sensors::HwmonBackend hwmon;
  std::printf("\nhost hwmon sensors: %zu (%s)\n", hwmon.enumerate().size(),
              hwmon.available() ? "real sensors available - Tempest would use them"
                                : "none in this environment - simulated backend used");

  // --- tempd footprint ----------------------------------------------------
  auto config = tempest::simnode::make_node_config(tempest::simnode::NodeKind::kOpteron);
  tempest::simnode::SimNode node(config);
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  session.register_sim_node(&node);

  const double idle_before = node.package().die_temp(0);
  bench_util::start_session(/*hz=*/4.0);
  const double window_s = 3.0;
  std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
  (void)session.stop();
  const double idle_after = node.package().die_temp(0);

  const auto& stats = session.tempd_stats();
  const double cpu_pct = 100.0 * stats.cpu_seconds / window_s;
  std::printf("\ntempd over %.1f s idle: %llu ticks, %llu samples, %.3f%% CPU\n",
              window_s, static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.samples), cpu_pct);
  std::printf("steady-state die temperature: %.3f C before, %.3f C after\n",
              idle_before, idle_after);

  bench_util::shape_check("tempd uses < 1% CPU", cpu_pct < 1.0);
  bench_util::shape_check("tempd does not perturb the steady-state temperature",
                          std::abs(idle_after - idle_before) < 0.5);
  bench_util::shape_check("tempd sampled ~4 Hz x 6 sensors",
                          stats.samples >= 6 * 10 && stats.read_errors == 0);

  // Sampling-rate sweep: the cost of denser sampling stays negligible,
  // which is why a 4 Hz daemon is viable on production nodes.
  std::printf("\nsampling-rate sweep (3 s idle window each):\n");
  for (double hz : {1.0, 4.0, 16.0, 64.0}) {
    tempest::core::SessionConfig sc;
    sc.sample_hz = hz;
    sc.bind_affinity = false;
    (void)session.start(sc);
    std::this_thread::sleep_for(std::chrono::duration<double>(1.5));
    (void)session.stop();
    const auto& st = session.tempd_stats();
    std::printf("  %5.0f Hz: %6llu samples, %.4f%% CPU\n", hz,
                static_cast<unsigned long long>(st.samples),
                100.0 * st.cpu_seconds / 1.5);
  }

  session.clear_nodes();
  return 0;
}
