// Table 3: partial Tempest functional profile of the BT benchmark,
// NP=4 — the paper prints adi_, matvec_sub and matmul_sub with
// six-sensor statistics. This run keeps the per-cell kernel
// instrumentation ON so those short-lived functions appear with real
// accumulated time (the paper's adi 6.32 s / matvec_sub 4.08 s /
// matmul_sub 3.80 s ordering).
#include "bench_util.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"

int main() {
  bench_util::banner(
      "Table 3 reproduction: partial BT functional profile (NP=4, one node)");

  auto cc = bench_util::paper_cluster(4, /*time_scale=*/30.0);
  tempest::simnode::Cluster cluster(cc);
  bench_util::register_cluster(cluster);
  // Denser than the paper's 4 Hz: the run is time-compressed, and the
  // scattered micro-intervals of the per-cell kernels need enough
  // samples to clear the significance rule as they do over 6+ s runs.
  bench_util::start_session(/*hz=*/16.0);

  npb::BtConfig config{24, 24, 24, 70, 0.005, /*kernel_events=*/true};
  npb::BtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  minimpi::run(4, [&](minimpi::Comm& comm) { result = npb::bt_run(comm, config); },
               options);

  const auto profile = bench_util::stop_and_parse();
  const auto& node = profile.nodes.front();

  std::cout << "Node " << node.node_id + 1 << " (" << node.hostname << "), run "
            << node.duration_s << " s, final error " << result.final_error << "\n\n";

  // The paper's Table 3 rows: adi_, matvec_sub, matmul_sub.
  for (const char* name : {"adi", "matvec_sub", "matmul_sub", "binvcrhs",
                           "x_solve", "z_solve"}) {
    const auto* fn = profile.find(node.node_id, name);
    if (fn != nullptr) {
      tempest::report::print_function(std::cout, *fn, profile.unit);
      std::cout << "\n";
    }
  }

  const auto* adi = profile.find(node.node_id, "adi");
  const auto* matvec = profile.find(node.node_id, "matvec_sub");
  const auto* matmul = profile.find(node.node_id, "matmul_sub");
  const auto* binvcrhs = profile.find(node.node_id, "binvcrhs");
  bench_util::shape_check("adi, matvec_sub, matmul_sub present in the profile",
                          adi != nullptr && matvec != nullptr && matmul != nullptr);
  // The paper's ordering: adi > matvec_sub > matmul_sub (inclusive).
  bench_util::shape_check(
      "adi > matvec_sub inclusive time (adi contains the sweeps)",
      adi != nullptr && matvec != nullptr && adi->total_time_s > matvec->total_time_s);
  // Note vs the paper: its matvec_sub carries ~65% of adi's time; our
  // 5x5 kernels compile to far fewer cycles per call relative to block
  // construction, so the kernels' share is smaller here. The structural
  // claim that survives is: per-cell kernels accumulate measurable
  // inclusive time purely from call volume.
  bench_util::shape_check(
      "matvec_sub + matmul_sub + binvcrhs accumulate > 10% of adi",
      adi != nullptr && matvec != nullptr && matmul != nullptr &&
          binvcrhs != nullptr &&
          (matvec->total_time_s + matmul->total_time_s + binvcrhs->total_time_s) >
              0.1 * adi->total_time_s);
  bench_util::shape_check(
      "kernels called per cell: matvec_sub calls in the hundreds of thousands",
      matvec != nullptr && matvec->calls > 100'000);
  bench_util::shape_check(
      "binvcrhs also visible (forward elimination kernel)", binvcrhs != nullptr);

  // Six sensors with flat + oscillating rows, as in the printed table.
  bool six_sensors = adi != nullptr && adi->sensors.size() == 6;
  bench_util::shape_check("six sensors reported per function", six_sensors);
  bool any_flat = false;
  for (const auto& fn : node.functions) {
    for (const auto& sp : fn.sensors) {
      any_flat |= (sp.stats.sdv == 0.0 && sp.sample_count >= 4);
    }
  }
  bench_util::shape_check("at least one sensor row is flat (Sdv=Var=0.00)", any_flat);

  tempest::core::Session::instance().clear_nodes();
  return 0;
}
