// Interactive-export bench: throughput and peak RSS of the Perfetto and
// speedscope emitters against the streaming-analysis baseline.
//
// The exporters' claim is the same memory bound the analysis pipeline
// makes: a 1e7-event trace exports through bounded batches, with peak
// RSS set by the per-thread stacks and name table, not the event count.
// Same self-exec harness as bench_pipeline (ru_maxrss is a process
// high-water mark, so every measurement forks):
//
//   analyze1    ChunkedTraceSource -> align -> order -> AnalysisSink,
//               single-threaded (the bench_pipeline streaming baseline,
//               re-measured here so the ratios compare like with like)
//   analyzeN    the same composition with the parallel fast path on:
//               worker-pool section decode, read-ahead, sharded fold
//               (N = hardware concurrency)
//   perfetto    the same stream driven through PerfettoExporter
//   speedscope  the same stream driven through SpeedscopeExporter
//
// Children write their output to /dev/null — the bench measures the
// emitters, not tmpfs — and speedscope's per-thread spools go to /tmp.
// Results land in BENCH_export.json. The committed copy holds a full
// 1e5..1e7 run; CI smoke re-runs the 1e5 point (--max-events 100000).
// Gates (see EXPERIMENTS.md for methodology; each prints SKIP with the
// reason when its preconditions do not hold):
//   - peak RSS: each exporter at 1e7 events stays within 1.25x of the
//     analyze1 baseline (full runs only)
//   - multi-core: analyzeN throughput >= 3x analyze1 at the largest
//     size (only on hosts with >= 4 hardware threads)
//   - exporter throughput: each exporter within 2x of analyze1 events/s
//     at sizes >= 1e6 (formatting must not dominate analysis)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_provenance.hpp"
#include "common/cli.hpp"
#include "common/worker_pool.hpp"
#include "export/run.hpp"
#include "pipeline/prefetch.hpp"
#include "pipeline/sinks.hpp"
#include "pipeline/source.hpp"
#include "pipeline/stages.hpp"
#include "trace/trace.hpp"
#include "trace/writer.hpp"

namespace {

using tempest::Status;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kNodes = 4;
constexpr std::size_t kFuncs = 64;
constexpr std::uint64_t kFuncBase = 0x400000;

/// Deterministic RNG so every run benches the same trace.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

/// bench_pipeline's synthetic run shape: 8 threads over 4 nodes, 64
/// functions, samples ~= events/100, pre-sorted with identity clock
/// syncs so streaming's OrderCheckStage holds after alignment.
tempest::trace::Trace make_trace(std::size_t n_events) {
  tempest::trace::Trace t;
  t.tsc_ticks_per_second = 1e9;
  t.executable = "bench_export_synthetic";
  for (std::size_t n = 0; n < kNodes; ++n) {
    t.nodes.push_back({static_cast<std::uint16_t>(n), "node" + std::to_string(n)});
    for (std::uint16_t s = 0; s < 2; ++s) {
      t.sensors.push_back({static_cast<std::uint16_t>(n), s,
                           "Core " + std::to_string(s), 1.0});
    }
  }
  for (std::size_t th = 0; th < kThreads; ++th) {
    t.threads.push_back({static_cast<std::uint32_t>(th),
                         static_cast<std::uint16_t>(th % kNodes),
                         static_cast<std::uint16_t>(th)});
  }

  Lcg rng{0xe4907ULL + n_events};
  const std::size_t per_thread = n_events / kThreads;
  t.fn_events.reserve(per_thread * kThreads);
  std::uint64_t max_tsc = 0;
  for (std::size_t th = 0; th < kThreads; ++th) {
    const std::size_t begin = t.fn_events.size();
    const auto tid = static_cast<std::uint32_t>(th);
    const auto node = static_cast<std::uint16_t>(th % kNodes);
    std::uint64_t tsc = 1000 + th * 7;
    std::vector<std::uint64_t> stack;
    for (std::size_t i = 0; i < per_thread; ++i) {
      tsc += rng.next() % 50 + 1;
      if (stack.empty() || (stack.size() < 8 && rng.next() % 2 == 0)) {
        const std::uint64_t addr = kFuncBase + (rng.next() % kFuncs) * 0x40;
        stack.push_back(addr);
        t.fn_events.push_back({tsc, addr, tid, node,
                               tempest::trace::FnEventKind::kEnter});
      } else {
        t.fn_events.push_back({tsc, stack.back(), tid, node,
                               tempest::trace::FnEventKind::kExit});
        stack.pop_back();
      }
    }
    max_tsc = std::max(max_tsc, tsc);
    t.fn_event_runs.push_back({begin, t.fn_events.size() - begin});
  }

  const std::size_t n_samples = std::max<std::size_t>(n_events / 100, 16);
  const std::size_t per_node = n_samples / kNodes;
  t.temp_samples.reserve(per_node * kNodes);
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::uint64_t step =
        std::max<std::uint64_t>(max_tsc / (per_node + 1), 1);
    for (std::size_t i = 0; i < per_node; ++i) {
      t.temp_samples.push_back({1000 + (i + 1) * step,
                                60.0 + static_cast<double>(rng.next() % 200) / 10.0,
                                static_cast<std::uint16_t>(n),
                                static_cast<std::uint16_t>(rng.next() % 2)});
    }
  }
  t.sort_by_time();
  for (std::size_t n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint64_t at = (i + 1) * (max_tsc / 9);
      t.clock_syncs.push_back({at, at, static_cast<std::uint16_t>(n)});
    }
  }
  return t;
}

std::string bench_path(const std::string& name) {
  static const std::string dir = [] {
    const std::string probe = "/dev/shm/tempest_bench_probe";
    std::ofstream f(probe);
    if (f) {
      f.close();
      std::remove(probe.c_str());
      return std::string("/dev/shm");
    }
    return std::string("/tmp");
  }();
  return dir + "/" + name;
}

// ---------------------------------------------------------------- child

int run_child_analyze(const std::string& trace_path, unsigned threads) {
  auto opened = tempest::pipeline::ChunkedTraceSource::open(trace_path);
  if (!opened.is_ok()) {
    std::cerr << "bench_export: " << opened.message() << "\n";
    return 1;
  }
  // tempest_parse's streaming composition, including the --threads
  // fast path: pool decode on the reader, read-ahead decorator, sharded
  // fold in the sink. threads == 1 is byte-for-byte the serial path.
  std::optional<tempest::WorkerPool> pool;
  tempest::pipeline::ChunkedTraceSource chunked = std::move(opened).value();
  if (threads > 1) {
    pool.emplace(threads);
    chunked.set_decode_pool(&*pool);
  }
  auto fits = chunked.clock_fits();
  if (!fits.is_ok()) {
    std::cerr << "bench_export: " << fits.message() << "\n";
    return 1;
  }
  tempest::pipeline::ClockAlignStage align(std::move(fits).value());
  tempest::pipeline::OrderCheckStage order;
  std::ofstream null_out("/dev/null", std::ios::binary);
  tempest::pipeline::TextEmitter text(null_out);
  tempest::pipeline::AnalysisOptions analysis_options;
  analysis_options.threads = threads;
  tempest::pipeline::AnalysisSink sink(analysis_options, {&text});
  tempest::pipeline::Source* source = &chunked;
  std::optional<tempest::pipeline::PrefetchSource> prefetch;
  if (threads > 1) {
    prefetch.emplace(source);
    source = &*prefetch;
  }
  const Status run = tempest::pipeline::run_pipeline(
      source, {&align, &order}, {&sink});
  if (!run) {
    std::cerr << "bench_export: " << run.message() << "\n";
    return 1;
  }
  return 0;
}

int run_child_export(const std::string& trace_path,
                     tempest::exporter::Format format) {
  std::ofstream null_out("/dev/null", std::ios::binary);
  tempest::exporter::ExportRunOptions options;
  options.format = format;
  options.stream = true;
  options.symbolize = false;  // synthetic addresses have no symbol table
  // Spools always go to /tmp: they hold the bulk of a big speedscope
  // export, and parking them in /dev/shm would hide exactly the memory
  // the spooling design keeps off the heap.
  options.spool_prefix = "/tmp/bench_export." + std::to_string(getpid());
  auto ran = tempest::exporter::run_export({trace_path}, null_out, options);
  if (!ran.is_ok()) {
    std::cerr << "bench_export: " << ran.message() << "\n";
    return 1;
  }
  if (ran.value().stats.events_exported == 0) {
    std::cerr << "bench_export: exported nothing\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------------------------- driver

struct Measurement {
  std::string mode;
  std::size_t events = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  long max_rss_kib = 0;
};

bool run_measured(const char* self, const std::string& mode,
                  const std::string& child, unsigned threads,
                  const std::string& trace_path, std::size_t events,
                  Measurement* out) {
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("bench_export: fork");
    return false;
  }
  if (pid == 0) {
    std::vector<std::string> args = {self,       "--child", child,
                                     "--threads", std::to_string(threads),
                                     "--trace",  trace_path};
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(self, argv.data());
    std::perror("bench_export: execv");
    _exit(127);
  }
  int status = 0;
  struct rusage ru {};
  if (wait4(pid, &status, 0, &ru) < 0) {
    std::perror("bench_export: wait4");
    return false;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "bench_export: child (" << mode << ", " << events
              << " events) failed\n";
    return false;
  }
  out->mode = mode;
  out->events = events;
  out->wall_s = std::chrono::duration<double>(t1 - t0).count();
  out->events_per_s =
      out->wall_s > 0.0 ? static_cast<double>(events) / out->wall_s : 0.0;
  out->max_rss_kib = ru.ru_maxrss;  // Linux reports KiB.
  return true;
}

int run_driver(const char* self, std::size_t max_events,
               const std::string& out_path) {
  const std::vector<std::size_t> all_sizes = {100000, 1000000, 10000000};
  std::vector<std::size_t> sizes;
  for (std::size_t s : all_sizes) {
    if (s <= max_events) sizes.push_back(s);
  }
  if (sizes.empty()) {
    std::cerr << "bench_export: --max-events below the smallest size ("
              << all_sizes.front() << ")\n";
    return 2;
  }

  const unsigned hw = tempest::cli::default_analysis_threads();
  struct Mode {
    const char* name;   ///< row label in the JSON
    const char* child;  ///< --child dispatch
    unsigned threads;
  };
  const Mode modes[4] = {{"analyze1", "analyze", 1},
                         {"analyzeN", "analyze", hw},
                         {"perfetto", "perfetto", 1},
                         {"speedscope", "speedscope", 1}};
  const std::size_t kModes = 4;
  std::vector<Measurement> rows;
  for (std::size_t n : sizes) {
    const std::string trace_path =
        bench_path("bench_export_" + std::to_string(n) + ".trace");
    {
      tempest::trace::Trace t = make_trace(n);
      const Status written = tempest::trace::write_trace_file(trace_path, t);
      if (!written) {
        std::cerr << "bench_export: " << written.message() << "\n";
        return 1;
      }
    }  // Trace freed before any child runs.

    for (const Mode& mode : modes) {
      Measurement row;
      if (!run_measured(self, mode.name, mode.child, mode.threads, trace_path,
                        n, &row)) {
        return 1;
      }
      rows.push_back(row);
      std::fprintf(stderr,
                   "%-10s %9zu events  %7.3f s  %12.0f ev/s  %8ld KiB\n",
                   mode.name, n, row.wall_s, row.events_per_s,
                   row.max_rss_kib);
    }
    std::remove(trace_path.c_str());
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "bench_export: cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n  \"benchmark\": \"bench_export\",\n"
       << "  \"build_type\": \"" << bench_prov::kBuildType << "\",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"description\": \"Perfetto/speedscope emitters vs the "
          "streaming-analysis baseline (analyze1 serial, analyzeN parallel "
          "fast path): wall time and peak RSS per forked child, output to "
          "/dev/null\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"events\": %zu, \"wall_s\": %.4f, "
                  "\"events_per_s\": %.0f, \"max_rss_kib\": %ld}%s\n",
                  r.mode.c_str(), r.events, r.wall_s, r.events_per_s,
                  r.max_rss_kib, i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n  \"summary\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Measurement& analyze1 = rows[i * kModes];
    const Measurement& analyzen = rows[i * kModes + 1];
    const Measurement& perfetto = rows[i * kModes + 2];
    const Measurement& speedscope = rows[i * kModes + 3];
    const auto rss_ratio = [&](const Measurement& m) {
      return analyze1.max_rss_kib > 0
          ? static_cast<double>(m.max_rss_kib) / analyze1.max_rss_kib
          : 0.0;
    };
    const auto speed_ratio = [&](const Measurement& m) {
      return analyze1.events_per_s > 0.0
          ? m.events_per_s / analyze1.events_per_s
          : 0.0;
    };
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"events\": %zu, \"multicore_speedup\": %.3f, "
        "\"perfetto_rss_over_analyze1\": %.3f, "
        "\"speedscope_rss_over_analyze1\": %.3f, "
        "\"perfetto_speed_over_analyze1\": %.3f, "
        "\"speedscope_speed_over_analyze1\": %.3f}%s\n",
        sizes[i], speed_ratio(analyzen), rss_ratio(perfetto),
        rss_ratio(speedscope), speed_ratio(perfetto), speed_ratio(speedscope),
        i + 1 < sizes.size() ? "," : "");
    json << buf;
  }
  json << "  ]\n}\n";
  std::cerr << "bench_export: wrote " << out_path << "\n";

  bool failed = false;
  const std::size_t last = rows.size() - kModes;

  // Gate: each exporter's peak RSS at 1e7 events stays within 1.25x of
  // the analyze1 baseline (full runs only).
  if (sizes.back() == all_sizes.back()) {
    const Measurement& analyze1 = rows[last];
    for (std::size_t m = 2; m <= 3; ++m) {
      const Measurement& exp = rows[last + m];
      if (exp.max_rss_kib * 4 > analyze1.max_rss_kib * 5) {
        std::cerr << "bench_export: FAIL " << exp.mode << " RSS "
                  << exp.max_rss_kib << " KiB exceeds 1.25x analyze1 baseline "
                  << analyze1.max_rss_kib << " KiB at " << sizes.back()
                  << " events\n";
        failed = true;
      }
    }
  } else {
    std::cerr << "bench_export: SKIP RSS gate (run capped below "
              << all_sizes.back() << " events)\n";
  }

  // Gate: the parallel fast path earns its threads — analyzeN at the
  // largest size reaches 3x analyze1 throughput. Meaningless on small
  // hosts (analyzeN degenerates to a couple of workers) and on short
  // runs (fork + setup noise swamps a 10 ms analysis).
  if (sizes.back() < 1000000) {
    std::cerr << "bench_export: SKIP multi-core gate (run capped below "
                 "1000000 events)\n";
  } else if (hw >= 4) {
    const Measurement& analyze1 = rows[last];
    const Measurement& analyzen = rows[last + 1];
    if (analyzen.events_per_s < 3.0 * analyze1.events_per_s) {
      std::cerr << "bench_export: FAIL analyzeN " << analyzen.events_per_s
                << " ev/s is below 3x analyze1 " << analyze1.events_per_s
                << " ev/s at " << sizes.back() << " events (" << hw
                << " hardware threads)\n";
      failed = true;
    }
  } else {
    std::cerr << "bench_export: SKIP multi-core gate (" << hw
              << " hardware thread(s); needs >= 4)\n";
  }

  // Gate: formatting must not dominate analysis — each exporter stays
  // within 2x of analyze1 events/s. Checked at the largest measured
  // size only: the claim is steady-state throughput, and short runs
  // are dominated by spool setup and child start-up noise.
  if (sizes.back() >= 1000000) {
    const Measurement& analyze1 = rows[last];
    for (std::size_t m = 2; m <= 3; ++m) {
      const Measurement& exp = rows[last + m];
      if (exp.events_per_s * 2.0 < analyze1.events_per_s) {
        std::cerr << "bench_export: FAIL " << exp.mode << " "
                  << exp.events_per_s << " ev/s is below half of analyze1 "
                  << analyze1.events_per_s << " ev/s at " << sizes.back()
                  << " events\n";
        failed = true;
      }
    }
  } else {
    std::cerr << "bench_export: SKIP exporter-throughput gate (run capped "
                 "below 1000000 events)\n";
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string child_mode;
  std::string trace_path;
  std::string out_path = "BENCH_export.json";
  std::size_t max_events = 10000000;
  std::size_t threads = 1;
  bool allow_debug = false;

  tempest::cli::ArgParser args(
      "[--max-events N] [--out FILE] [--allow-debug]   (driver)\n"
      "       --child analyze|perfetto|speedscope [--threads N] --trace FILE");
  args.add_value("--child", [&](const std::string& v) {
    if (v != "analyze" && v != "perfetto" && v != "speedscope") {
      return Status::error("--child must be analyze, perfetto, or "
                           "speedscope, got '" + v + "'");
    }
    child_mode = v;
    return Status::ok();
  });
  args.add_value("--trace", [&](const std::string& v) {
    trace_path = v;
    return Status::ok();
  });
  args.add_value("--out", [&](const std::string& v) {
    out_path = v;
    return Status::ok();
  });
  args.add_value("--max-events", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &max_events);
  });
  args.add_value("--threads", [&](const std::string& v) {
    return tempest::cli::parse_size(v, &threads);
  });
  args.add_flag("--allow-debug", [&] { allow_debug = true; });
  const Status parsed = args.parse(argc, argv);
  if (!parsed) {
    std::cerr << "bench_export: " << parsed.message() << "\n";
    args.print_usage(std::cerr, "bench_export");
    return 2;
  }
  if (args.help_requested()) {
    args.print_usage(std::cout, "bench_export");
    return 0;
  }

  if (!child_mode.empty()) {
    if (trace_path.empty()) {
      std::cerr << "bench_export: --child needs --trace\n";
      return 2;
    }
    const unsigned n_threads =
        static_cast<unsigned>(std::max<std::size_t>(threads, 1));
    if (child_mode == "analyze") {
      return run_child_analyze(trace_path, n_threads);
    }
    return run_child_export(trace_path,
                            child_mode == "perfetto"
                                ? tempest::exporter::Format::kPerfetto
                                : tempest::exporter::Format::kSpeedscope);
  }
  if (!bench_prov::check_build("bench_export", allow_debug)) return 2;
  static char self_buf[4096];
  const ssize_t len = readlink("/proc/self/exe", self_buf, sizeof(self_buf) - 1);
  const char* self = argv[0];
  if (len > 0) {
    self_buf[len] = '\0';
    self = self_buf;
  }
  return run_driver(self, max_events, out_path);
}
