// §1 Q4 / §5 reproduction: using Tempest to profile and analyze the
// effect of a thermal optimization on a parallel application.
//
// The optimization is DVFS thermal throttling (hysteresis governor on
// the die temperature). Tempest answers the paper's question 4 — "what
// and where are the performance effects of thermal optimizations?" —
// by profiling the same BT run with the governor off (paper's pinned
// performance mode) and on, and comparing per-function times and
// per-sensor temperatures.
#include "bench_util.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"

namespace {

struct RunOutcome {
  double elapsed_s = 0.0;
  double hottest_f = -1e300;   ///< max die-sensor reading, any node
  double adi_time_s = 0.0;     ///< inclusive adi time on node 1
  std::size_t throttle_events = 0;
};

RunOutcome run_bt(bool throttling) {
  auto cc = bench_util::paper_cluster(4, /*time_scale=*/50.0);
  if (throttling) {
    cc.governor.mode = tempest::thermal::GovernorMode::kThreshold;
    cc.governor.high_water_c = 43.0;
    cc.governor.low_water_c = 40.0;
  }
  tempest::simnode::Cluster cluster(cc);
  bench_util::register_cluster(cluster);
  bench_util::start_session(/*hz=*/8.0);

  npb::BtConfig config{24, 24, 24, 70, 0.005, /*kernel_events=*/false};
  npb::BtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  minimpi::run(4, [&](minimpi::Comm& comm) { result = npb::bt_run(comm, config); },
               options);

  tempest::trace::Trace raw;
  const auto profile = bench_util::stop_and_parse(&raw);
  (void)tempest::trace::align_clocks(&raw);
  const auto series =
      tempest::report::extract_series(raw, tempest::TempUnit::kFahrenheit);

  RunOutcome out;
  out.elapsed_s = result.elapsed_s;
  // sensor4 is the diode of the loaded core (ranks bind to core 0);
  // sensor5 sits on an idle core with a +5 C calibration offset and
  // would mask the governor's effect.
  for (std::uint16_t n = 0; n < 4; ++n) {
    out.hottest_f = std::max(out.hottest_f, bench_util::series_max(series, n, "sensor4"));
  }
  const auto* adi = profile.find(0, "adi");
  if (adi != nullptr) out.adi_time_s = adi->total_time_s;
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    out.throttle_events += cluster.node(n).package().governor().throttle_events();
  }
  tempest::core::Session::instance().clear_nodes();
  return out;
}

}  // namespace

int main() {
  bench_util::banner(
      "Thermal-optimization analysis: BT with DVFS throttling, profiled by Tempest");

  const RunOutcome baseline = run_bt(false);
  const RunOutcome throttled = run_bt(true);

  std::printf("\n%-26s %12s %12s\n", "", "pinned-fmax", "dvfs-throttle");
  std::printf("%-26s %10.2f s %10.2f s\n", "BT elapsed", baseline.elapsed_s,
              throttled.elapsed_s);
  std::printf("%-26s %10.2f s %10.2f s\n", "adi inclusive (node 1)",
              baseline.adi_time_s, throttled.adi_time_s);
  std::printf("%-26s %11.1f F %11.1f F\n", "hottest die reading",
              baseline.hottest_f, throttled.hottest_f);
  std::printf("%-26s %12zu %12zu\n", "throttle events", baseline.throttle_events,
              throttled.throttle_events);
  std::printf("\npeak reduction: %.1f F; slowdown: %.0f%%\n",
              baseline.hottest_f - throttled.hottest_f,
              100.0 * (throttled.elapsed_s - baseline.elapsed_s) / baseline.elapsed_s);

  bench_util::shape_check("throttling engages (governor steps down under load)",
                          throttled.throttle_events > 0 &&
                              baseline.throttle_events == 0);
  bench_util::shape_check("the optimization reduces the peak temperature",
                          throttled.hottest_f < baseline.hottest_f - 1.0);
  bench_util::shape_check(
      "and Tempest localises the cost: the application (and its hot adi "
      "phase) runs measurably longer",
      throttled.elapsed_s > baseline.elapsed_s * 1.03 &&
          throttled.adi_time_s > baseline.adi_time_s * 1.03);
  return 0;
}
