// The paper's zero-annotation workflow, end to end.
//
// This program contains no Tempest calls in its workload: the whole
// file is compiled with -finstrument-functions and linked against
// tempest_hooks + tempest_auto. The session starts before main, tempd
// samples while the code runs, and the profile prints at exit.
//
//   $ ./examples/transparent_demo
//   $ TEMPEST_OUT=/tmp/demo.trace TEMPEST_REPORT=0 ./examples/transparent_demo
//   $ ./tools/tempest_parse --plot /tmp/demo.trace
//
// TEMPEST_DEMO_MATRIX_N overrides the matrix dimension (default 200).
// CI's differential-profiling leg records one run at the default and
// one perturbed run, then checks tempest-diff ranks matrix_mult_pass
// as the top regression.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/auto_session.hpp"

namespace {

// Plain application code — nothing Tempest-specific below.

__attribute__((noinline)) double matrix_mult_pass(std::vector<double>& m, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double cell = 0.0;
      for (int k = 0; k < n; ++k) {
        cell += m[static_cast<std::size_t>(i * n + k)] *
                m[static_cast<std::size_t>(k * n + j)];
      }
      acc += cell;
    }
  }
  return acc;
}

__attribute__((noinline)) double crunch_numbers() {
  int n = 200;
  if (const char* env = std::getenv("TEMPEST_DEMO_MATRIX_N")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 8 && v <= 2048) n = static_cast<int>(v);
  }
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = std::sin(static_cast<double>(i));
  double acc = 0.0;
  for (int pass = 0; pass < 120; ++pass) acc += matrix_mult_pass(m, n);
  return acc;
}

__attribute__((noinline)) void wait_for_input() {
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
}

}  // namespace

int main() {
  std::printf("tempest auto session: %s\n",
              tempest::core::auto_session_active() ? "active" : "inactive");
  wait_for_input();
  const double result = crunch_numbers();
  wait_for_input();
  std::printf("result checksum: %.3e\n", result);
  return 0;  // profile prints from the library destructor
}
