// Validating a thermal-management technique with Tempest (paper §1 Q4,
// §5 future work made concrete).
//
// Scenario: a nightly batch job (BT-like ADI solver) trips thermal
// alarms. The proposed fix is a DVFS throttling governor. Tempest
// quantifies both sides of the trade before deployment: how much cooler
// the hot phase runs, and exactly which functions pay the slowdown.
//
//   $ ./examples/thermal_optimization
#include <iostream>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "parser/parse.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"

namespace {

struct Outcome {
  tempest::parser::RunProfile profile;
  double elapsed_s = 0.0;
  std::size_t throttle_events = 0;
};

Outcome profiled_run(bool governor_on) {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 4;
  cc.kind = tempest::simnode::NodeKind::kOpteron;
  cc.time_scale = 50.0;
  if (governor_on) {
    cc.governor.mode = tempest::thermal::GovernorMode::kThreshold;
    cc.governor.high_water_c = 43.0;
    cc.governor.low_water_c = 40.0;
  }
  tempest::simnode::Cluster cluster(cc);
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    session.register_sim_node(&cluster.node(n));
  }
  tempest::core::SessionConfig config;
  config.sample_hz = 8.0;
  config.bind_affinity = false;
  (void)session.start(config);

  npb::BtResult result;
  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  minimpi::run(4, [&](minimpi::Comm& comm) {
    result = npb::bt_run(comm, npb::BtConfig{24, 24, 24, 60, 0.005, false});
  }, options);
  (void)session.stop();

  Outcome out;
  out.elapsed_s = result.elapsed_s;
  auto parsed = tempest::parser::parse_trace(session.take_trace());
  if (parsed.is_ok()) out.profile = std::move(parsed).value();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    out.throttle_events += cluster.node(n).package().governor().throttle_events();
  }
  session.clear_nodes();
  return out;
}

void print_adi(const Outcome& outcome, const char* label) {
  std::cout << "--- " << label << " (elapsed " << outcome.elapsed_s << " s, "
            << outcome.throttle_events << " throttle events) ---\n";
  const auto* adi = outcome.profile.find(0, "adi");
  if (adi != nullptr) {
    tempest::report::print_function(std::cout, *adi, outcome.profile.unit);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Step 1: baseline profile (DVFS pinned at full speed)\n\n";
  const Outcome baseline = profiled_run(false);
  print_adi(baseline, "baseline");

  std::cout << "Step 2: candidate optimization (hysteresis thermal governor)\n\n";
  const Outcome managed = profiled_run(true);
  print_adi(managed, "with governor");

  const auto* adi_before = baseline.profile.find(0, "adi");
  const auto* adi_after = managed.profile.find(0, "adi");
  if (adi_before != nullptr && adi_after != nullptr &&
      !adi_before->sensors.empty() && !adi_after->sensors.empty()) {
    const auto& before = adi_before->sensors[3].stats;  // core-0 diode
    const auto& after = adi_after->sensors[3].stats;
    std::cout << "Verdict:\n";
    std::printf("  adi max die temp: %.1f F -> %.1f F\n", before.max, after.max);
    std::printf("  adi inclusive time: %.2f s -> %.2f s (%.0f%% slower)\n",
                adi_before->total_time_s, adi_after->total_time_s,
                100.0 * (adi_after->total_time_s / adi_before->total_time_s - 1.0));
    std::cout << "  -> Tempest pinpoints the trade: the governor trims the\n"
                 "     thermal peak of exactly the adi phase while the rest\n"
                 "     of the run is untouched.\n";
  }
  return 0;
}
