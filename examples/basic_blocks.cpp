// Basic-block granularity profiling (the paper's libtempestperblk).
//
// "Tempest also supports measurement at basic block granularity using
// libtempestperblk.so. Basic block measurement is non-transparent and
// requires explicit API calls." This example profiles the blocks
// *inside* one solver function: the block profile shows that only the
// inner stencil loop is hot — detail a function-level profile cannot
// provide.
//
//   $ ./examples/basic_blocks
#include <iostream>

#include "core/api.hpp"
#include "core/perblk.hpp"
#include "core/workbench.hpp"
#include "parser/parse.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::core::Workbench;

void solver_step(Workbench& bench) {
  TEMPEST_FUNCTION();
  {
    TEMPEST_BLOCK("solver_step", "setup");
    bench.idle(0.05);  // gather coefficients ("memory bound")
  }
  {
    TEMPEST_BLOCK("solver_step", "stencil_loop");
    bench.burn(0.6);  // the hot inner loop
  }
  {
    TEMPEST_BLOCK("solver_step", "reduction");
    bench.burn(0.08);
  }
  {
    TEMPEST_BLOCK("solver_step", "write_back");
    bench.idle(0.05);
  }
}

}  // namespace

int main() {
  auto node_config =
      tempest::simnode::make_node_config(tempest::simnode::NodeKind::kX86Basic);
  node_config.package.time_scale = 30.0;
  tempest::simnode::SimNode node(node_config);
  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  const auto node_id = session.register_sim_node(&node);

  tempest::core::SessionConfig config;
  config.sample_hz = 16.0;
  config.bind_affinity = false;
  if (auto status = session.start(config); !status) {
    std::cerr << status.message() << "\n";
    return 1;
  }
  Workbench bench(&node, node_id);
  bench.attach();
  for (int step = 0; step < 4; ++step) solver_step(bench);
  bench.detach();
  (void)session.stop();

  auto parsed = tempest::parser::parse_trace(session.take_trace());
  if (!parsed.is_ok()) {
    std::cerr << parsed.message() << "\n";
    return 1;
  }
  tempest::report::print_profile(std::cout, parsed.value());
  std::cout << "Note the per-block rows (solver_step:stencil_loop etc.): the\n"
               "stencil loop carries both the time and the heat, while setup\n"
               "and write_back stay at the cooler baseline.\n";
  return 0;
}
