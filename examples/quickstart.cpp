// Quickstart: profile a program's thermal behaviour in ~30 lines.
//
// Tempest usage mirrors the paper's workflow: pick a sensor source
// (real hwmon sensors when the host has them, a simulated node
// otherwise), start the session, run your code — transparently
// instrumented or with explicit regions — stop, parse, print.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/api.hpp"
#include "core/workbench.hpp"
#include "parser/parse.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"

int main() {
  using namespace tempest;

  // 1. A node to profile: try the host's real lm-sensors (hwmon) path
  //    first; fall back to a simulated node driven by a thermal model.
  auto& session = core::Session::instance();
  auto node_config = simnode::make_node_config(simnode::NodeKind::kX86Basic);
  node_config.package.time_scale = 25.0;  // compress thermal time for the demo
  simnode::SimNode sim_node(node_config);

  auto hwmon = session.register_hwmon_node();
  std::uint16_t node_id;
  if (hwmon.is_ok()) {
    node_id = hwmon.value();
    std::cout << "using real hwmon sensors\n";
  } else {
    node_id = session.register_sim_node(&sim_node);
    std::cout << "no hwmon sensors here (" << hwmon.message()
              << "); using the simulated node\n";
  }

  // 2. Start profiling (4 Hz sampling, Fahrenheit — the paper's setup).
  core::SessionConfig config = core::SessionConfig::from_env();
  config.bind_affinity = false;
  if (auto status = tempest::start(config); !status) {
    std::cerr << "start failed: " << status.message() << "\n";
    return 1;
  }

  // 3. Run the workload. ScopedRegion names phases explicitly; code
  //    compiled with -finstrument-functions needs no annotations at all.
  core::Workbench bench(&sim_node, node_id);
  bench.attach();
  {
    ScopedRegion region("warmup");
    bench.burn(0.5);
  }
  {
    ScopedRegion region("hot_loop");
    bench.burn(2.0);
  }
  {
    ScopedRegion region("cooldown_io");
    bench.idle(1.0);
  }
  bench.detach();

  // 4. Stop and print the per-function thermal profile.
  (void)tempest::stop();
  auto profile = parser::parse_trace(session.take_trace());
  if (!profile.is_ok()) {
    std::cerr << "parse failed: " << profile.message() << "\n";
    return 1;
  }
  report::print_profile(std::cout, profile.value());

  std::cout << "Try: TEMPEST_HZ=16 TEMPEST_UNIT=C ./examples/quickstart\n";
  return 0;
}
