// Hot-spot hunting in a mixed-phase application (paper §1, Q1/Q2:
// "What parts of my parallel application will benefit from thermal
// management techniques? Where do I start optimizing?").
//
// The app below interleaves I/O-ish waits, a cache-friendly compute
// kernel, a long dense hot loop, and a communication phase across four
// ranks. Tempest's function-level timeline makes the answer obvious:
// only `dense_kernel` both runs long AND runs hot.
//
//   $ ./examples/hotspot_hunt
#include <iostream>

#include "core/api.hpp"
#include "core/workbench.hpp"
#include "minimpi/runtime.hpp"
#include "parser/parse.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"

namespace {

using tempest::ScopedRegion;
using tempest::core::Workbench;

void load_input(Workbench& bench) {
  ScopedRegion region("load_input");
  bench.idle(0.4);  // "disk"
}

void preprocess(Workbench& bench) {
  ScopedRegion region("preprocess");
  bench.burn(0.3);
  bench.idle(0.1);
}

void dense_kernel(Workbench& bench) {
  ScopedRegion region("dense_kernel");
  bench.burn(1.8);  // the hot spot
}

void exchange_halos(minimpi::Comm& comm, Workbench& bench) {
  ScopedRegion region("exchange_halos");
  std::vector<double> halo(32768, 1.0);
  std::vector<double> incoming(32768);
  const int left = (comm.rank() + comm.size() - 1) % comm.size();
  const int right = (comm.rank() + 1) % comm.size();
  for (int round = 0; round < 6; ++round) {
    comm.send_n(right, 7, halo.data(), halo.size());
    comm.recv_n(left, 7, incoming.data(), incoming.size());
    bench.burn(0.02);
  }
}

void write_output(Workbench& bench) {
  ScopedRegion region("write_output");
  bench.idle(0.3);
}

}  // namespace

int main() {
  tempest::simnode::ClusterConfig cc;
  cc.nodes = 4;
  cc.kind = tempest::simnode::NodeKind::kOpteron;
  cc.time_scale = 30.0;
  tempest::simnode::Cluster cluster(cc);

  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    session.register_sim_node(&cluster.node(n));
  }
  tempest::core::SessionConfig config;
  config.sample_hz = 8.0;
  config.bind_affinity = false;
  if (auto status = session.start(config); !status) {
    std::cerr << status.message() << "\n";
    return 1;
  }

  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  minimpi::run(4, [&](minimpi::Comm& comm) {
    auto& placement = comm.world().placement(comm.rank());
    Workbench bench(placement.node, placement.node_id, placement.core);
    load_input(bench);
    preprocess(bench);
    comm.barrier();
    dense_kernel(bench);
    exchange_halos(comm, bench);
    write_output(bench);
  }, options);

  (void)session.stop();
  auto parsed = tempest::parser::parse_trace(session.take_trace());
  if (!parsed.is_ok()) {
    std::cerr << parsed.message() << "\n";
    return 1;
  }

  tempest::report::StdoutOptions opts;
  opts.max_functions = 6;
  tempest::report::print_profile(std::cout, parsed.value(), opts);

  // The answer to "where do I start optimizing?": combine time and heat.
  std::cout << "Where to start (node 1, die sensor):\n";
  for (const auto& fn : parsed.value().nodes.front().functions) {
    for (const auto& sp : fn.sensors) {
      if (sp.sensor_id != 3 || !fn.significant) continue;
      std::printf("  %-16s %6.2f s, avg %6.1f F, max %6.1f F%s\n", fn.name.c_str(),
                  fn.total_time_s, sp.stats.avg, sp.stats.max,
                  fn.name == "dense_kernel" ? "   <-- hot spot" : "");
    }
  }
  return 0;
}
