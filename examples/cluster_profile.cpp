// Cluster thermal profiling: the paper's headline scenario.
//
// Runs a NAS-like parallel benchmark on a simulated 4-node Opteron
// cluster under Tempest and answers the intro's questions: which nodes
// run hot, which functions are the hot spots, and how the thermal
// profile lines up with the code's phases.
//
//   $ ./examples/cluster_profile [ft|bt|cg|mg|ep|is|sp] [nranks] [csv-path]
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/api.hpp"
#include "minimpi/runtime.hpp"
#include "npb/bt.hpp"
#include "npb/cg.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"
#include "npb/sp.hpp"
#include "parser/parse.hpp"
#include "report/ascii_plot.hpp"
#include "report/json.hpp"
#include "report/series.hpp"
#include "report/stdout_format.hpp"
#include "simnode/cluster.hpp"
#include "trace/align.hpp"

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "ft";
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string csv_path = argc > 3 ? argv[3] : "";

  // The paper's four-node cluster, heterogeneity and TSC skew included.
  tempest::simnode::ClusterConfig cc;
  cc.nodes = static_cast<std::size_t>(nranks);
  cc.kind = tempest::simnode::NodeKind::kOpteron;
  cc.time_scale = 30.0;
  cc.max_tsc_offset_s = 0.005;
  cc.max_tsc_drift_ppm = 40.0;
  tempest::simnode::Cluster cluster(cc);

  auto& session = tempest::core::Session::instance();
  session.clear_nodes();
  for (std::size_t n = 0; n < cluster.size(); ++n) {
    session.register_sim_node(&cluster.node(n));
  }
  // from_env so TEMPEST_OUT can persist the 4-node trace for the
  // export tools (the README's multi-rank Perfetto walkthrough).
  auto config = tempest::core::SessionConfig::from_env();
  config.sample_hz = 8.0;
  config.bind_affinity = false;
  if (auto status = session.start(config); !status) {
    std::cerr << "start failed: " << status.message() << "\n";
    return 1;
  }

  minimpi::RunOptions options;
  options.cluster = &cluster;
  options.net = minimpi::gige_network();
  std::string verdict;
  minimpi::run(nranks, [&](minimpi::Comm& comm) {
    using namespace npb;
    if (which == "ft") {
      auto r = ft_run(comm, FtConfig{64, 64, 64, 120});
      if (comm.rank() == 0) verdict = ft_verify(r, FtConfig{64, 64, 64, 120}).detail;
    } else if (which == "bt") {
      auto r = bt_run(comm, BtConfig{24, 24, 24, 40, 0.005, false});
      if (comm.rank() == 0) verdict = "final error " + std::to_string(r.final_error);
    } else if (which == "cg") {
      auto r = cg_run(comm, CgConfig::for_class(ProblemClass::W));
      if (comm.rank() == 0) verdict = "zeta " + std::to_string(r.zeta);
    } else if (which == "mg") {
      auto r = mg_run(comm, MgConfig::for_class(ProblemClass::W));
      if (comm.rank() == 0) {
        verdict = "rnorm " + std::to_string(r.rnorms.back());
      }
    } else if (which == "ep") {
      auto r = ep_run(comm, EpConfig::for_class(ProblemClass::W));
      if (comm.rank() == 0) verdict = "sums " + std::to_string(r.sx);
    } else if (which == "sp") {
      auto r = sp_run(comm, SpConfig::for_class(ProblemClass::A));
      if (comm.rank() == 0) verdict = "final error " + std::to_string(r.final_error);
    } else if (which == "is") {
      auto r = is_run(comm, IsConfig::for_class(ProblemClass::W));
      if (comm.rank() == 0) {
        verdict = std::string("sorted=") + (r.globally_sorted ? "yes" : "NO");
      }
    } else if (comm.rank() == 0) {
      std::cerr << "unknown benchmark '" << which << "'\n";
    }
  }, options);

  (void)session.stop();
  tempest::trace::Trace raw = session.take_trace();
  auto parsed = tempest::parser::parse_trace(raw);
  if (!parsed.is_ok()) {
    std::cerr << "parse failed: " << parsed.message() << "\n";
    return 1;
  }
  const auto& profile = parsed.value();

  std::cout << "benchmark " << which << " NP=" << nranks << " — " << verdict
            << "\n\n";

  // Question 3: are the thermal properties similar across machines?
  (void)tempest::trace::align_clocks(&raw);
  const auto series =
      tempest::report::extract_series(raw, tempest::TempUnit::kFahrenheit);
  tempest::report::PlotOptions plot;
  plot.sensor_filter = "sensor4";
  plot.height = 8;
  tempest::report::plot_series(std::cout, series, plot);

  // Questions 1 & 2: where are the hot spots? Rank functions by a
  // simple heat index: inclusive time weighted by average die excess
  // over the node's coolest reading.
  std::cout << "Hot-spot ranking (node 1):\n";
  const auto& node = profile.nodes.front();
  double cool_floor = 1e300;
  for (const auto& fn : node.functions) {
    for (const auto& sp : fn.sensors) {
      if (sp.sensor_id == 3) cool_floor = std::min(cool_floor, sp.stats.min);
    }
  }
  struct Ranked {
    double index;
    const tempest::parser::FunctionProfile* fn;
    double avg;
  };
  std::vector<Ranked> ranked;
  for (const auto& fn : node.functions) {
    for (const auto& sp : fn.sensors) {
      if (sp.sensor_id != 3 || !fn.significant) continue;
      ranked.push_back({fn.total_time_s * (sp.stats.avg - cool_floor), &fn,
                        sp.stats.avg});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.index > b.index; });
  for (std::size_t i = 0; i < std::min<std::size_t>(6, ranked.size()); ++i) {
    std::printf("  %zu. %-28s %7.3f s at avg %6.1f F (heat index %.2f)\n", i + 1,
                ranked[i].fn->name.c_str(), ranked[i].fn->total_time_s,
                ranked[i].avg, ranked[i].index);
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    tempest::report::write_series_csv(csv, series);
    std::cout << "\nwrote thermal series CSV to " << csv_path << "\n";
  }
  return 0;
}
